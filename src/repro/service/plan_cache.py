"""An LRU cache of prepared plans, with hit/miss metrics.

The cache maps query fingerprints (see :mod:`repro.service.fingerprint`) to
:class:`~repro.engine.session.PreparedPlan` objects.  Because the catalog
version participates in the fingerprint, plans built against stale catalog
contents are never *served* — they simply age out of the LRU order as new
versions push them to the cold end.

All operations are safe to call from multiple threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

#: Default number of prepared plans kept by a :class:`PlanCache`.
DEFAULT_PLAN_CACHE_SIZE = 256


@dataclass
class CacheStats:
    """Counters describing how a cache has been used."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        """The counters as a plain dictionary (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """A thread-safe LRU mapping of fingerprint -> prepared plan."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self._capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        #: Optional callable invoked (outside the cache lock) with the key of
        #: every entry dropped by :meth:`invalidate_entry` — the feedback
        #: loop's drift retirements, i.e. re-plans.  The service layer wires
        #: this into the workload history; exceptions are swallowed so a
        #: broken observer never breaks caching.
        self.on_replan = None

    @property
    def capacity(self) -> int:
        """Maximum number of cached plans."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str):
        """The cached value for ``key`` (freshened to most-recently-used), or None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, value) -> None:
        """Insert ``value`` under ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            self.stats.insertions += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached plan."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped

    def invalidate_entry(self, key: str) -> bool:
        """Drop one cached plan; returns True when the key was present.

        The feedback loop uses this to retire exactly the plan whose
        estimates drifted — every other cached plan stays warm.  A key that
        is absent — never inserted, concurrently evicted by LRU pressure, or
        already retired by another thread — is a no-op returning False, so
        callers may race invalidation against eviction freely.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.stats.invalidations += 1
        hook = self.on_replan
        if hook is not None:
            try:
                hook(key)
            except Exception:  # noqa: BLE001 - observers never break caching
                pass
        return True

    def invalidate_matching(self, predicate) -> int:
        """Drop every cached plan for which ``predicate(value)`` is True.

        Returns how many entries were dropped.  The mutation subsystem uses
        this with "does the prepared plan read a mutated table?" so a commit
        retires exactly the plans it staled; a predicate that raises for an
        entry simply keeps that entry.
        """
        with self._lock:
            stale = []
            for key, value in self._entries.items():
                try:
                    if predicate(value):
                        stale.append(key)
                except Exception:  # noqa: BLE001 - opaque values stay cached
                    continue
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

"""Differential-testing toolkit.

Correctness of the tagged execution model is non-negotiable: every planner —
tagged, traditional or bypass — must return exactly the same rows for the
same query.  This subpackage provides the pieces needed to check that
systematically:

* :mod:`repro.testing.datagen` — seeded random catalogs (star-join schemas
  with skewed foreign keys, NULLs and string/numeric attributes);
* :mod:`repro.testing.querygen` — seeded random disjunctive queries with
  nested AND/OR/NOT structure and deliberately repeated subexpressions (the
  case Section 3.2 "Duplicates" is about);
* :mod:`repro.testing.oracle` — a deliberately naive, row-at-a-time reference
  evaluator that shares no code with the vectorized engine;
* :mod:`repro.testing.differential` — the harness that runs one query under
  every planner and the oracle and reports any disagreement.

The same machinery backs the property-based tests in ``tests/`` and the
``python -m repro fuzz`` CLI command.
"""

from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.differential import DifferentialReport, run_differential, run_fuzz_campaign
from repro.testing.oracle import evaluate_oracle, evaluate_predicate_row
from repro.testing.querygen import RandomQueryConfig, generate_random_query

__all__ = [
    "DifferentialReport",
    "RandomCatalogConfig",
    "RandomQueryConfig",
    "evaluate_oracle",
    "evaluate_predicate_row",
    "generate_random_catalog",
    "generate_random_query",
    "run_differential",
    "run_fuzz_campaign",
]

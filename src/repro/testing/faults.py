"""Fault injection: named crash points for durability testing.

The durable write path (:mod:`repro.mutation.wal`, :mod:`repro.mutation.diskops`,
:mod:`repro.mutation.compact`) calls :func:`fire` at every point where a crash
has a distinct recovery story.  Nothing happens unless the point is *armed*:

* **in process** — ``arm("wal.after_record")`` (or the :func:`armed` context
  manager) makes the next hit raise :class:`InjectedCrash`, which unit tests
  catch before re-opening the dataset;
* **across processes** — setting ``REPRO_FAULT_POINT=wal.after_record`` in a
  subprocess environment makes the hit call ``os._exit`` (no cleanup, no
  ``atexit``, no buffered-file flushing beyond what already reached the OS),
  which is how ``tests/test_crash_recovery.py`` kills real ``repro insert`` /
  ``repro delete`` / ``repro compact`` runs mid-flight.

The points are a stable, documented surface (:data:`FAULT_POINTS`) — the
crash-recovery test matrix enumerates them, so adding a point here without a
matrix entry fails the suite's completeness check.

The seam is deliberately cheap when disarmed: one module-level set lookup.
"""

from __future__ import annotations

import os

#: Environment variable naming the fault point a subprocess should crash at.
FAULT_ENV = "REPRO_FAULT_POINT"

#: Environment variable choosing the crash mode: ``exit`` (default for
#: env-armed points — a hard ``os._exit``) or ``raise``.
FAULT_MODE_ENV = "REPRO_FAULT_MODE"

#: Exit status used by ``os._exit`` crashes (distinctive, assertable).
CRASH_EXIT_CODE = 37

#: Every fault point wired into the durable write path, with the recovery
#: outcome an injected crash there must produce ("pre" = the batch is rolled
#: back to the previous committed state, "post" = the batch survives).
FAULT_POINTS: dict[str, str] = {
    # WAL append: half the first record's bytes are written, then crash —
    # a torn record that recovery must truncate.
    "wal.partial_record": "pre",
    # All op records are written, the commit marker is not — an uncommitted
    # transaction tail that recovery must truncate.
    "wal.after_record": "pre",
    # Every record including the commit marker reached the OS, fsync did
    # not run.  A process kill (unlike a power cut) leaves the page cache
    # intact, so recovery replays the batch.
    "wal.before_fsync": "post",
    # The WAL transaction is durable; a segment directory is half-written.
    "segment.partial_write": "post",
    # The WAL transaction is durable and all data files are written; the
    # rewritten manifest sits in its temp file, the rename never happened.
    "manifest.before_rename": "post",
    # Online compaction: the fold is fully staged in new generation
    # directories but the manifest swap never happened — the old state must
    # remain authoritative.
    "compact.before_swap": "pre",
    # Online compaction: the manifest swap happened but the WAL was never
    # truncated past the fold point — replay must NOT double-apply folded
    # records (the PR-6 regression fix).
    "compact.before_wal_truncate": "post",
}


class InjectedCrash(RuntimeError):
    """Raised by an armed fault point in ``raise`` mode."""


_armed: dict[str, str] = {}


def _env_armed() -> tuple[str | None, str]:
    return os.environ.get(FAULT_ENV) or None, os.environ.get(FAULT_MODE_ENV, "exit")


def arm(point: str, mode: str = "raise") -> None:
    """Arm ``point``; the next :func:`fire` hit crashes with ``mode``."""
    if point not in FAULT_POINTS:
        raise ValueError(f"unknown fault point {point!r}; known: {sorted(FAULT_POINTS)}")
    if mode not in ("raise", "exit"):
        raise ValueError(f"unknown fault mode {mode!r}; use 'raise' or 'exit'")
    _armed[point] = mode


def disarm(point: str | None = None) -> None:
    """Disarm one point, or every armed point when ``point`` is None."""
    if point is None:
        _armed.clear()
    else:
        _armed.pop(point, None)


class armed:
    """Context manager arming ``point`` for the duration of a ``with`` block."""

    def __init__(self, point: str, mode: str = "raise") -> None:
        self.point = point
        self.mode = mode

    def __enter__(self) -> "armed":
        arm(self.point, self.mode)
        return self

    def __exit__(self, *exc_info) -> None:
        disarm(self.point)


def is_armed(point: str) -> bool:
    """True when ``point`` would crash — used by seams that must stage a
    partial effect (e.g. half a WAL record) before crashing."""
    if point in _armed:
        return True
    env_point, _mode = _env_armed()
    return env_point == point


def fire(point: str) -> None:
    """Crash here if ``point`` is armed (in process or via the environment)."""
    mode = _armed.get(point)
    if mode is None:
        env_point, env_mode = _env_armed()
        if env_point != point:
            return
        mode = env_mode
    if mode == "exit":
        os._exit(CRASH_EXIT_CODE)
    raise InjectedCrash(point)

"""Differential execution: every planner must agree with the oracle."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.session import Session
from repro.plan.query import Query
from repro.storage.catalog import Catalog
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.oracle import evaluate_oracle
from repro.testing.querygen import RandomQueryConfig, generate_random_query

#: Planners exercised by default (one per execution model plus the search planners).
DEFAULT_PLANNERS = (
    "tpushdown",
    "tpullup",
    "titerpush",
    "tpushconj",
    "tcombined",
    "texhaustive",
    "bdisj",
    "bpushconj",
    "bypass",
)


@dataclass
class DifferentialReport:
    """The outcome of running one query under several planners and the oracle."""

    query_name: str
    row_count: int
    planner_rows: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        """True when every planner matched the oracle."""
        return not self.mismatches

    def describe(self) -> str:
        """One-line summary."""
        status = "OK" if self.agreed else "MISMATCH " + ", ".join(self.mismatches)
        return f"{self.query_name}: {self.row_count} rows, {status}"


def run_differential(
    catalog: Catalog,
    query: Query,
    planners: tuple[str, ...] = DEFAULT_PLANNERS,
    session: Session | None = None,
) -> DifferentialReport:
    """Execute ``query`` under every planner and compare against the oracle."""
    session = session or Session(catalog)
    expected = evaluate_oracle(catalog, query)
    report = DifferentialReport(query_name=query.name or str(query), row_count=len(expected))

    for planner in planners:
        result = session.execute(query, planner=planner)
        report.planner_rows[planner] = result.row_count
        actual = result.sorted_rows()
        if actual != expected:
            report.mismatches.append(
                f"{planner} returned {len(actual)} rows, oracle returned {len(expected)}"
                if len(actual) != len(expected)
                else f"{planner} returned different rows than the oracle"
            )
    return report


def run_fuzz_campaign(
    num_queries: int = 10,
    seed: int = 0,
    catalog_config: RandomCatalogConfig | None = None,
    planners: tuple[str, ...] = DEFAULT_PLANNERS,
) -> list[DifferentialReport]:
    """Run a small fuzzing campaign: random catalog, random queries, all planners.

    Each query gets its own derived seed so campaigns are reproducible; the
    catalog is shared across the campaign (statistics collection dominates
    otherwise).
    """
    catalog_config = catalog_config or RandomCatalogConfig(seed=seed)
    catalog = generate_random_catalog(catalog_config)
    session = Session(catalog)

    reports = []
    for index in range(num_queries):
        query_config = RandomQueryConfig(seed=seed * 10_000 + index)
        query = generate_random_query(catalog, query_config)
        reports.append(
            run_differential(catalog, query, planners=planners, session=session)
        )
    return reports

"""Seeded random disjunctive queries for differential testing.

Generated queries target the star schema of :mod:`repro.testing.datagen`:
``F`` joined with ``D1 .. Dn`` on ``F.id = Dk.fid``, with a randomly nested
WHERE expression.  Generation is biased toward the situations the paper cares
about:

* predicates from *different* tables mixed inside the same clause (the case
  traditional planners cannot push down);
* clauses sharing common subexpressions — with some probability a previously
  generated base predicate is reused verbatim, exercising the "Duplicates"
  treatment of Section 3.2;
* NOT nodes and both CNF- and DNF-leaning shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expr.ast import BooleanExpr
from repro.expr.builders import and_, between, col, ilike, in_, is_null, lit, not_, or_
from repro.plan.query import JoinCondition, Query
from repro.storage.catalog import Catalog

_CATEGORY_VALUES = ("action", "drama", "comedy", "horror", "romance", "thriller", "weird")
_LIKE_PATTERNS = ("%a%", "%om%", "dr%", "%er", "%ri%")


@dataclass
class RandomQueryConfig:
    """Knobs for :func:`generate_random_query`."""

    seed: int = 0
    max_depth: int = 3
    max_fanout: int = 3
    reuse_probability: float = 0.25
    not_probability: float = 0.1
    null_test_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")


class _PredicateFactory:
    """Builds random base predicates over the star-schema attributes."""

    def __init__(self, aliases: list[str], numeric_attributes: list[str], rng: np.random.Generator,
                 config: RandomQueryConfig) -> None:
        self._aliases = aliases
        self._numeric_attributes = numeric_attributes
        self._rng = rng
        self._config = config
        self._history: list[BooleanExpr] = []

    def base_predicate(self) -> BooleanExpr:
        """A fresh or (with some probability) previously used base predicate."""
        if self._history and self._rng.random() < self._config.reuse_probability:
            return self._history[int(self._rng.integers(len(self._history)))]
        predicate = self._fresh_predicate()
        self._history.append(predicate)
        return predicate

    def _fresh_predicate(self) -> BooleanExpr:
        rng = self._rng
        alias = self._aliases[int(rng.integers(len(self._aliases)))]
        if rng.random() < self._config.null_test_probability:
            attribute = self._numeric_attributes[int(rng.integers(len(self._numeric_attributes)))]
            return is_null(col(alias, attribute), negated=bool(rng.random() < 0.5))

        kind = rng.random()
        if kind < 0.55:
            attribute = self._numeric_attributes[int(rng.integers(len(self._numeric_attributes)))]
            operator = rng.choice(["<", "<=", ">", ">=", "="])
            threshold = round(float(rng.random()), 2)
            column = col(alias, attribute)
            if operator == "<":
                return column < lit(threshold)
            if operator == "<=":
                return column <= lit(threshold)
            if operator == ">":
                return column > lit(threshold)
            if operator == ">=":
                return column >= lit(threshold)
            return column.eq(lit(threshold))
        if kind < 0.7:
            attribute = self._numeric_attributes[int(rng.integers(len(self._numeric_attributes)))]
            low = round(float(rng.uniform(0.0, 0.5)), 2)
            high = round(float(rng.uniform(low, 1.0)), 2)
            return between(col(alias, attribute), low, high)
        if kind < 0.85:
            count = int(rng.integers(1, 4))
            values = list(rng.choice(_CATEGORY_VALUES, size=count, replace=False))
            return in_(col(alias, "category"), [str(value) for value in values])
        pattern = str(rng.choice(_LIKE_PATTERNS))
        return ilike(col(alias, "category"), pattern)


def _random_expression(
    factory: _PredicateFactory,
    rng: np.random.Generator,
    config: RandomQueryConfig,
    depth: int,
    prefer_or: bool,
) -> BooleanExpr:
    """Recursively build a random predicate expression."""
    if depth >= config.max_depth or rng.random() < 0.3:
        predicate = factory.base_predicate()
        if rng.random() < config.not_probability:
            return not_(predicate)
        return predicate

    fanout = int(rng.integers(2, config.max_fanout + 1))
    children = [
        _random_expression(factory, rng, config, depth + 1, not prefer_or)
        for _child in range(fanout)
    ]
    combined = or_(*children) if prefer_or else and_(*children)
    if rng.random() < config.not_probability:
        return not_(combined)
    return combined


def generate_random_query(
    catalog: Catalog, config: RandomQueryConfig | None = None
) -> Query:
    """Generate a random disjunctive query over a star-schema catalog.

    The catalog must contain the tables produced by
    :func:`repro.testing.datagen.generate_random_catalog` (a fact table ``F``
    and dimension tables ``D1`` ..).
    """
    config = config or RandomQueryConfig()
    rng = np.random.default_rng(config.seed)

    dimension_names = sorted(name for name in catalog.table_names if name.startswith("D"))
    if "F" not in catalog or not dimension_names:
        raise ValueError("expected a star-schema catalog with tables F and D1..Dn")

    tables = {"f": "F"}
    joins: list[JoinCondition] = []
    for position, name in enumerate(dimension_names, start=1):
        alias = f"d{position}"
        tables[alias] = name
        joins.append(JoinCondition(col("f", "id"), col(alias, "fid")))

    fact_table = catalog.get("F")
    numeric_attributes = [
        column_name for column_name in fact_table.column_names if column_name.startswith("A")
    ]
    factory = _PredicateFactory(list(tables), numeric_attributes, rng, config)

    prefer_or = bool(rng.random() < 0.5)
    predicate = _random_expression(factory, rng, config, depth=1, prefer_or=prefer_or)

    select = [col("f", "id")] + [col(alias, "id") for alias in tables if alias != "f"]
    return Query(
        tables=tables,
        join_conditions=joins,
        predicate=predicate,
        select=select,
        name=f"fuzz_seed_{config.seed}",
    )

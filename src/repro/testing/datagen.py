"""Seeded random catalogs for differential testing.

The generated schema mirrors the synthetic workload of Section 5.2: a fact
table ``F`` whose ``id`` column is the primary key, and ``num_dimension``
dimension tables ``D1 .. Dn`` whose ``fid`` columns reference it with a
Zipf-skewed distribution.  Every table carries a handful of numeric and
categorical attributes so query generation has predicates to choose from, and
a configurable fraction of attribute values is NULL so three-valued logic is
exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table

#: Categories used for string attributes.
_CATEGORIES = ("action", "drama", "comedy", "horror", "romance", "thriller", "weird")


@dataclass
class RandomCatalogConfig:
    """Knobs for :func:`generate_random_catalog`."""

    seed: int = 0
    num_dimensions: int = 2
    fact_rows: int = 200
    dimension_rows: int = 300
    num_numeric_attributes: int = 3
    null_fraction: float = 0.05
    zipf_shape: float = 1.3

    def __post_init__(self) -> None:
        if self.num_dimensions < 1:
            raise ValueError("num_dimensions must be at least 1")
        if self.fact_rows < 1 or self.dimension_rows < 1:
            raise ValueError("tables must have at least one row")
        if not 0.0 <= self.null_fraction < 1.0:
            raise ValueError("null_fraction must be in [0, 1)")
        if self.num_numeric_attributes < 1:
            raise ValueError("num_numeric_attributes must be at least 1")


def _zipf_keys(rng: np.random.Generator, size: int, max_value: int, shape: float) -> np.ndarray:
    """Foreign keys in [1, max_value] following a (clipped) Zipf distribution."""
    raw = rng.zipf(shape, size=size)
    return np.clip(raw, 1, max_value).astype(np.int64)


def _with_nulls(rng: np.random.Generator, values: list, null_fraction: float) -> list:
    """Replace a random fraction of values with None."""
    if null_fraction <= 0.0:
        return values
    out = list(values)
    mask = rng.random(len(values)) < null_fraction
    for position in np.flatnonzero(mask):
        out[int(position)] = None
    return out


def _attribute_columns(
    rng: np.random.Generator, rows: int, config: RandomCatalogConfig
) -> list[Column]:
    """Numeric attributes A1..An plus a categorical attribute."""
    columns = []
    for index in range(1, config.num_numeric_attributes + 1):
        values = rng.random(rows).round(4).tolist()
        columns.append(Column(f"A{index}", _with_nulls(rng, values, config.null_fraction)))
    categories = rng.choice(_CATEGORIES, size=rows).tolist()
    columns.append(Column("category", _with_nulls(rng, categories, config.null_fraction)))
    return columns


def generate_random_catalog(config: RandomCatalogConfig | None = None) -> Catalog:
    """Generate a random star-schema catalog.

    The fact table is named ``F``; dimension tables are ``D1`` .. ``Dn``.
    Join them with ``F.id = Dk.fid``.
    """
    config = config or RandomCatalogConfig()
    rng = np.random.default_rng(config.seed)

    fact_columns = [Column("id", np.arange(1, config.fact_rows + 1, dtype=np.int64))]
    fact_columns.extend(_attribute_columns(rng, config.fact_rows, config))
    tables = [Table("F", fact_columns)]

    for dimension in range(1, config.num_dimensions + 1):
        rows = config.dimension_rows
        columns = [
            Column("id", np.arange(1, rows + 1, dtype=np.int64)),
            Column("fid", _zipf_keys(rng, rows, config.fact_rows, config.zipf_shape)),
        ]
        columns.extend(_attribute_columns(rng, rows, config))
        tables.append(Table(f"D{dimension}", columns))

    return Catalog(tables)

"""A naive reference evaluator for select-project-join queries.

The oracle deliberately shares *no* code with the engine's vectorized
evaluation path: predicates are evaluated row at a time with a small scalar
interpreter, and joins are computed with plain Python dictionaries.  It is
slow, which does not matter — its only job is to provide an independent
answer for differential testing.
"""

from __future__ import annotations

import re

import numpy as np

from repro.expr.ast import (
    AndExpr,
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotExpr,
    OrExpr,
    ValueExpr,
)
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN, TruthValue
from repro.plan.query import Query
from repro.storage.catalog import Catalog
from repro.storage.table import Table


class OracleError(ValueError):
    """Raised when the oracle is asked to evaluate something it cannot."""


# --------------------------------------------------------------------------- #
# Scalar expression evaluation
# --------------------------------------------------------------------------- #
def _value_of(expr: ValueExpr, row: dict[tuple[str, str], object]) -> object:
    if isinstance(expr, ColumnRef):
        try:
            return row[(expr.alias, expr.column)]
        except KeyError:
            raise OracleError(f"row does not contain column {expr.key()}") from None
    if isinstance(expr, Literal):
        return expr.value
    raise OracleError(f"unsupported value expression {expr!r}")


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise OracleError(f"unsupported comparison operator {op!r}")


def _like_matches(value: object, pattern: str, case_insensitive: bool) -> bool:
    regex_parts = ["^"]
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    regex_parts.append("$")
    flags = re.IGNORECASE if case_insensitive else 0
    return re.search("".join(regex_parts), str(value), flags) is not None


def evaluate_predicate_row(
    expr: BooleanExpr, row: dict[tuple[str, str], object]
) -> TruthValue:
    """Evaluate a boolean expression for one row under SQL three-valued logic.

    ``row`` maps ``(alias, column)`` to a Python value; NULL is ``None``.
    """
    if isinstance(expr, AndExpr):
        result = TRUE
        for child in expr.children():
            value = evaluate_predicate_row(child, row)
            if value is FALSE:
                return FALSE
            if value is UNKNOWN:
                result = UNKNOWN
        return result

    if isinstance(expr, OrExpr):
        result = FALSE
        for child in expr.children():
            value = evaluate_predicate_row(child, row)
            if value is TRUE:
                return TRUE
            if value is UNKNOWN:
                result = UNKNOWN
        return result

    if isinstance(expr, NotExpr):
        value = evaluate_predicate_row(expr.child, row)
        if value is UNKNOWN:
            return UNKNOWN
        return FALSE if value is TRUE else TRUE

    if isinstance(expr, IsNullPredicate):
        operand = _value_of(expr.operand, row)
        matched = operand is None
        if expr.negated:
            matched = not matched
        return TRUE if matched else FALSE

    if isinstance(expr, Comparison):
        left = _value_of(expr.left, row)
        right = _value_of(expr.right, row)
        if left is None or right is None:
            return UNKNOWN
        return TruthValue.from_bool(_compare(expr.op, left, right))

    if isinstance(expr, LikePredicate):
        operand = _value_of(expr.operand, row)
        if operand is None:
            return UNKNOWN
        return TruthValue.from_bool(
            _like_matches(operand, expr.pattern, expr.case_insensitive)
        )

    if isinstance(expr, InPredicate):
        operand = _value_of(expr.operand, row)
        if operand is None:
            return UNKNOWN
        return TruthValue.from_bool(operand in expr.values)

    if isinstance(expr, BetweenPredicate):
        operand = _value_of(expr.operand, row)
        low = _value_of(expr.low, row)
        high = _value_of(expr.high, row)
        if operand is None or low is None or high is None:
            return UNKNOWN
        return TruthValue.from_bool(low <= operand <= high)

    raise OracleError(f"unsupported predicate type {type(expr).__name__}")


# --------------------------------------------------------------------------- #
# Join enumeration
# --------------------------------------------------------------------------- #
def _table_value(table: Table, column: str, position: int) -> object:
    col = table.column(column)
    if col.null_mask[position]:
        return None
    value = col.data[position]
    return value.item() if hasattr(value, "item") else value


def _all_rows(table: Table) -> list[int]:
    # Logically deleted rows (see repro.mutation) are invisible to queries,
    # so the oracle skips them the same way the physical scan does.
    if table.has_deletes():
        return [int(row) for row in np.flatnonzero(~table.delete_mask)]
    return list(range(table.num_rows))


def _join_assignments(query: Query, catalog: Catalog) -> list[dict[str, int]]:
    """Enumerate all alias->row assignments satisfying the join conditions."""
    tables = {alias: catalog.get(name) for alias, name in query.tables.items()}
    aliases = list(query.tables)

    first = aliases[0]
    assignments: list[dict[str, int]] = [{first: row} for row in _all_rows(tables[first])]
    bound = {first}
    remaining_conditions = list(query.join_conditions)

    while remaining_conditions:
        progressed = False
        for condition in list(remaining_conditions):
            condition_aliases = condition.aliases()
            if condition_aliases <= bound:
                # Both sides bound already: filter the current assignments.
                left_ref, right_ref = condition.left, condition.right
                assignments = [
                    assignment
                    for assignment in assignments
                    if _table_value(tables[left_ref.alias], left_ref.column, assignment[left_ref.alias])
                    is not None
                    and _table_value(tables[left_ref.alias], left_ref.column, assignment[left_ref.alias])
                    == _table_value(tables[right_ref.alias], right_ref.column, assignment[right_ref.alias])
                ]
                remaining_conditions.remove(condition)
                progressed = True
                continue
            bound_side = [alias for alias in condition_aliases if alias in bound]
            if not bound_side:
                continue
            bound_alias = bound_side[0]
            new_alias = condition.other_alias(bound_alias)
            bound_ref = condition.side_for(bound_alias)
            new_ref = condition.side_for(new_alias)

            index: dict[object, list[int]] = {}
            new_table = tables[new_alias]
            for row in _all_rows(new_table):
                key = _table_value(new_table, new_ref.column, row)
                if key is None:
                    continue
                index.setdefault(key, []).append(row)

            extended: list[dict[str, int]] = []
            bound_table = tables[bound_alias]
            for assignment in assignments:
                key = _table_value(bound_table, bound_ref.column, assignment[bound_alias])
                if key is None:
                    continue
                for row in index.get(key, ()):  # NULL keys never join
                    new_assignment = dict(assignment)
                    new_assignment[new_alias] = row
                    extended.append(new_assignment)
            assignments = extended
            bound.add(new_alias)
            remaining_conditions.remove(condition)
            progressed = True
        if not progressed:
            raise OracleError("join graph is not connected through the bound aliases")

    # Cross-join any aliases that had no join condition at all.
    for alias in aliases:
        if alias in bound:
            continue
        extended = []
        for assignment in assignments:
            for row in _all_rows(tables[alias]):
                new_assignment = dict(assignment)
                new_assignment[alias] = row
                extended.append(new_assignment)
        assignments = extended
        bound.add(alias)

    return assignments


# --------------------------------------------------------------------------- #
# Full query evaluation
# --------------------------------------------------------------------------- #
def evaluate_oracle(catalog: Catalog, query: Query) -> list[tuple]:
    """Evaluate a select-project-join query the slow, obviously-correct way.

    Returns the output rows sorted with the same key
    :meth:`repro.engine.result.QueryResult.sorted_rows` uses, so the two can
    be compared directly.  Output-shaping clauses (aggregates, DISTINCT,
    ORDER BY, LIMIT) are not supported — differential testing targets the
    part of the pipeline where the execution models actually differ.
    """
    if query.has_output_shaping:
        raise OracleError("the oracle only evaluates plain select-project-join queries")

    tables = {alias: catalog.get(name) for alias, name in query.tables.items()}
    if query.select:
        wanted = [(column.alias, column.column) for column in query.select]
    else:
        wanted = [
            (alias, column_name)
            for alias in sorted(query.tables)
            for column_name in tables[alias].column_names
        ]

    rows: list[tuple] = []
    for assignment in _join_assignments(query, catalog):
        if query.predicate is not None:
            row_values = {
                (alias, column_name): _table_value(tables[alias], column_name, position)
                for alias, position in assignment.items()
                for column_name in tables[alias].column_names
            }
            if evaluate_predicate_row(query.predicate, row_values) is not TRUE:
                continue
        rows.append(
            tuple(
                _table_value(tables[alias], column_name, assignment[alias])
                for alias, column_name in wanted
            )
        )

    return sorted(rows, key=lambda row: tuple(str(value) for value in row))

"""Traditional-execution planners: BDisj and BPushConj (Section 5).

* **BDisj** handles OR-rooted predicate expressions (DNFs): every root clause
  becomes its own conventional query plan with conjunctive pushdown, the
  subqueries run independently, and a final union operator removes the
  duplicate tuples produced by overlapping clauses.  This mirrors both the
  academic treatment of disjunctions and the manual rewrite experts recommend
  for engines without native support.
* **BPushConj** handles AND-rooted predicate expressions (CNFs): root clauses
  whose predicates all reference a single table are pushed to that table; the
  remaining clauses run after all joins in increasing selectivity order.
  This is what PostgreSQL-class systems do.

Both order joins greedily by estimated output cardinality, exactly like the
tagged planners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.planner.base import PlannerContext
from repro.core.planner.joinorder import greedy_join_tree
from repro.core.planner.pushconj import split_conjunctive_pushdown
from repro.expr.ast import AndExpr, BooleanExpr
from repro.plan.logical import FilterNode, PlanNode, ProjectNode, TableScanNode
from repro.plan.query import Query


@dataclass
class TraditionalPlan:
    """One or more conventional subplans, optionally combined by a union."""

    planner_name: str
    subplans: list[PlanNode] = field(default_factory=list)
    needs_union: bool = False

    def describe(self) -> str:
        """One-line summary used by reports."""
        suffix = " + union" if self.needs_union else ""
        return f"{self.planner_name}: {len(self.subplans)} subplan(s){suffix}"


class _TraditionalPlannerBase:
    """Shared helpers for the two traditional planners."""

    name = "traditional"

    def __init__(self, context: PlannerContext) -> None:
        self.context = context

    def _scan(self, alias: str) -> TableScanNode:
        return TableScanNode(alias, self.context.query.tables[alias])

    def _stack(self, node: PlanNode, filters: list[BooleanExpr]) -> PlanNode:
        for predicate in filters:
            node = FilterNode(predicate, node)
        return node

    def _conjunctive_subplan(
        self, query: Query, clause: BooleanExpr | None
    ) -> PlanNode:
        """A conventional plan for ``query`` restricted to one (conjunctive) clause."""
        context = self.context
        if clause is None:
            parts: list[BooleanExpr] = []
        elif isinstance(clause, AndExpr):
            parts = list(clause.children())
        else:
            parts = [clause]

        per_alias: dict[str, list[BooleanExpr]] = {alias: [] for alias in query.aliases}
        remaining: list[BooleanExpr] = []
        for part in parts:
            aliases = part.tables()
            if len(aliases) == 1 and next(iter(aliases)) in per_alias:
                per_alias[next(iter(aliases))].append(part)
            else:
                remaining.append(part)

        leaf_plans: dict[str, PlanNode] = {}
        estimated_rows: dict[str, float] = {}
        for alias in query.aliases:
            pushed = sorted(
                per_alias[alias],
                key=lambda expr: (context.estimates.selectivity(expr), expr.key()),
            )
            leaf_plans[alias] = self._stack(self._scan(alias), list(reversed(pushed)))
            rows = context.estimates.base_rows(alias)
            for predicate in pushed:
                rows *= context.estimates.selectivity(predicate)
            estimated_rows[alias] = rows

        if len(query.aliases) == 1:
            joined: PlanNode = leaf_plans[query.aliases[0]]
        else:
            joined = greedy_join_tree(query, leaf_plans, estimated_rows, context.estimates)

        remaining_sorted = sorted(
            remaining, key=lambda expr: (context.estimates.selectivity(expr), expr.key())
        )
        joined = self._stack(joined, remaining_sorted)
        return ProjectNode(joined, query.select)


class BDisjPlanner(_TraditionalPlannerBase):
    """Per-root-clause execution with a final union (for OR-rooted predicates)."""

    name = "bdisj"

    def plan(self) -> TraditionalPlan:
        """Build one conventional subplan per root clause."""
        context = self.context
        query = context.query
        tree = context.predicate_tree

        if tree is None:
            return TraditionalPlan(self.name, [self._conjunctive_subplan(query, None)])

        if tree.root.is_or:
            clauses = [child.expr for child in tree.root.children]
        else:
            clauses = [tree.expression]

        subplans = [self._conjunctive_subplan(query, clause) for clause in clauses]
        return TraditionalPlan(self.name, subplans, needs_union=len(subplans) > 1)


class BPushConjPlanner(_TraditionalPlannerBase):
    """Conjunctive pushdown only (for AND-rooted predicates)."""

    name = "bpushconj"

    def plan(self) -> TraditionalPlan:
        """Build a single conventional plan with conjunctive pushdown."""
        context = self.context
        query = context.query
        tree = context.predicate_tree

        if tree is None:
            return TraditionalPlan(self.name, [self._conjunctive_subplan(query, None)])

        is_and_root = tree.root.is_and
        per_alias, remaining = split_conjunctive_pushdown(
            tree.expression, query.aliases, is_and_root
        )

        leaf_plans: dict[str, PlanNode] = {}
        estimated_rows: dict[str, float] = {}
        for alias in query.aliases:
            pushed = per_alias[alias]
            leaf_plans[alias] = self._stack(self._scan(alias), pushed)
            rows = context.estimates.base_rows(alias)
            for predicate in pushed:
                rows *= context.estimates.selectivity(predicate)
            estimated_rows[alias] = rows

        if len(query.aliases) == 1:
            joined: PlanNode = leaf_plans[query.aliases[0]]
        else:
            joined = greedy_join_tree(query, leaf_plans, estimated_rows, context.estimates)

        remaining_sorted = sorted(
            remaining, key=lambda expr: (context.estimates.selectivity(expr), expr.key())
        )
        joined = self._stack(joined, remaining_sorted)
        return TraditionalPlan(self.name, [ProjectNode(joined, query.select)])

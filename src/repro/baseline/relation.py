"""Plain (untagged) index relations used by the traditional execution model.

Like Basilisk's intermediate relations, rows are tuples of indices into the
base tables.  Unlike tagged relations there are no slices: filters compact
the index arrays, and every operator processes the whole relation.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.storage.table import Table


class Relation:
    """An untagged index relation."""

    def __init__(
        self,
        tables: Mapping[str, Table],
        indices: Mapping[str, np.ndarray],
    ) -> None:
        self.tables = dict(tables)
        self.indices = {alias: np.asarray(idx, dtype=np.int64) for alias, idx in indices.items()}
        lengths = {idx.shape[0] for idx in self.indices.values()}
        if len(lengths) > 1:
            raise ValueError(f"index arrays have differing lengths: {lengths}")
        self._num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_base_table(cls, alias: str, table: Table) -> "Relation":
        """Relation over every row of a base table."""
        return cls({alias: table}, {alias: np.arange(table.num_rows, dtype=np.int64)})

    @property
    def num_rows(self) -> int:
        """Number of tuples in the relation."""
        return self._num_rows

    @property
    def aliases(self) -> list[str]:
        """Aliases joined into this relation."""
        return list(self.indices)

    def take(self, positions: np.ndarray) -> "Relation":
        """A new relation containing only the rows at ``positions``."""
        return Relation(
            self.tables,
            {alias: idx[positions] for alias, idx in self.indices.items()},
        )

    def row_keys(self) -> np.ndarray:
        """A 2-D array (rows x aliases) identifying each tuple by base indices.

        Used by the union operator to deduplicate tuples across subqueries.
        Columns are ordered by sorted alias name so relations with the same
        alias set produce comparable keys.
        """
        aliases = sorted(self.indices)
        if not aliases:
            return np.empty((0, 0), dtype=np.int64)
        return np.stack([self.indices[alias] for alias in aliases], axis=1)

    def __repr__(self) -> str:
        return f"Relation(aliases={self.aliases}, rows={self.num_rows})"

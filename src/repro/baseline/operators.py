"""Traditional execution operators: scan, filter, hash join, union.

These mirror the tagged operators but work on whole relations: a filter keeps
only the rows whose predicate evaluates to TRUE (compacting the relation), a
join processes every row of both inputs, and BDisj's final union deduplicates
tuples produced by different root-clause subqueries (the redundant work the
paper's Section 5.1 analysis attributes to traditional execution).
"""

from __future__ import annotations

import numpy as np

from repro.baseline.relation import Relation
from repro.engine.metrics import ExecContext
from repro.expr import three_valued as tv
from repro.expr.ast import BooleanExpr
from repro.physical.expressions import evaluate_predicate, read_join_keys
from repro.plan.query import JoinCondition
from repro.storage.table import Table
from repro.utils.join import equi_join_indices


class ScanOperator:
    """Produce a relation over every row of a base table."""

    def __init__(self, alias: str, table: Table) -> None:
        self.alias = alias
        self.table = table

    def execute(self, context: ExecContext) -> Relation:
        """Run the scan."""
        context.metrics.operators_executed += 1
        relation = Relation.from_base_table(self.alias, self.table)
        context.metrics.tuples_materialized += relation.num_rows
        return relation


class FilterOperator:
    """Keep only the rows whose predicate evaluates to TRUE."""

    def __init__(self, predicate: BooleanExpr) -> None:
        self.predicate = predicate

    def execute(self, relation: Relation, context: ExecContext) -> Relation:
        """Run the filter."""
        context.metrics.operators_executed += 1
        if relation.num_rows == 0:
            return relation
        truth = evaluate_predicate(
            self.predicate, relation.tables, relation.indices, context
        )
        context.metrics.predicate_evaluations += 1
        context.metrics.predicate_rows_evaluated += relation.num_rows
        keep = np.flatnonzero(tv.is_true(truth))
        output = relation.take(keep)
        context.metrics.tuples_materialized += output.num_rows
        return output


class HashJoinOperator:
    """Equi-join of two relations."""

    def __init__(self, conditions: list[JoinCondition]) -> None:
        if not conditions:
            raise ValueError("a hash join requires at least one join condition")
        self.conditions = list(conditions)

    def execute(self, left: Relation, right: Relation, context: ExecContext) -> Relation:
        """Run the join."""
        context.metrics.operators_executed += 1
        merged_tables = {**left.tables, **right.tables}
        if left.num_rows == 0 or right.num_rows == 0:
            empty = np.empty(0, dtype=np.int64)
            indices = {alias: empty for alias in list(left.indices) + list(right.indices)}
            return Relation(merged_tables, indices)

        context.metrics.hash_tables_built += 1
        context.metrics.join_build_rows += left.num_rows
        context.metrics.join_probe_rows += right.num_rows

        left_keys, right_keys = read_join_keys(
            self.conditions,
            left.tables,
            left.indices,
            right.tables,
            right.indices,
            context,
        )
        left_match, right_match = equi_join_indices(left_keys, right_keys)

        out_indices: dict[str, np.ndarray] = {}
        for alias in left.indices:
            out_indices[alias] = left.indices[alias][left_match]
        for alias in right.indices:
            out_indices[alias] = right.indices[alias][right_match]

        context.metrics.join_output_rows += int(left_match.size)
        context.metrics.tuples_materialized += int(left_match.size)
        return Relation(merged_tables, out_indices)


class UnionOperator:
    """Union (with duplicate elimination) of relations over the same aliases.

    BDisj appends this operator to combine the outputs of its per-root-clause
    subqueries; deduplication is by the tuple of base-table row indices, which
    is exactly the identity of a joined tuple in an index relation.
    """

    def execute(self, relations: list[Relation], context: ExecContext) -> Relation:
        """Run the union."""
        context.metrics.operators_executed += 1
        relations = [relation for relation in relations if relation.num_rows > 0]
        if not relations:
            raise ValueError("union of zero non-empty relations is undefined")
        alias_sets = {frozenset(relation.indices) for relation in relations}
        if len(alias_sets) != 1:
            raise ValueError(f"union inputs cover different alias sets: {alias_sets}")

        total_input = sum(relation.num_rows for relation in relations)
        context.metrics.union_input_rows += total_input

        stacked = np.concatenate([relation.row_keys() for relation in relations], axis=0)
        _unique, first_positions = np.unique(stacked, axis=0, return_index=True)
        keep = np.sort(first_positions)

        aliases = sorted(relations[0].indices)
        merged_indices = {
            alias: np.concatenate([relation.indices[alias] for relation in relations])
            for alias in aliases
        }
        out_indices = {alias: merged_indices[alias][keep] for alias in aliases}
        merged_tables: dict[str, Table] = {}
        for relation in relations:
            merged_tables.update(relation.tables)

        output = Relation(merged_tables, out_indices)
        context.metrics.union_output_rows += output.num_rows
        context.metrics.tuples_materialized += output.num_rows
        return output

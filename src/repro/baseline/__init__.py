"""Traditional query execution: the comparison baselines.

* :mod:`repro.baseline.relation` — plain (untagged) index relations.
* :mod:`repro.baseline.operators` — scan / filter / hash-join / union
  operators of the traditional model.
* :mod:`repro.baseline.planners` — BDisj and BPushConj (Section 5).
"""

from repro.baseline.operators import (
    FilterOperator,
    HashJoinOperator,
    ScanOperator,
    UnionOperator,
)
from repro.baseline.planners import BDisjPlanner, BPushConjPlanner, TraditionalPlan
from repro.baseline.relation import Relation

__all__ = [
    "BDisjPlanner",
    "BPushConjPlanner",
    "FilterOperator",
    "HashJoinOperator",
    "Relation",
    "ScanOperator",
    "TraditionalPlan",
    "UnionOperator",
]

"""Encoding of (possibly composite, possibly non-integer) join keys.

The join kernel works on non-negative int64 keys.  ``composite_keys`` maps
one or more value columns — of any type — into such keys, assigning equal
tuples equal codes across both inputs.  NULL keys are encoded as ``-1`` so the
kernel drops them, matching SQL equi-join semantics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def _factorize_pair(
    left_values: np.ndarray, right_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Map two value arrays onto shared integer codes.

    Returns ``(left_codes, right_codes, num_codes)``; equal values get equal
    codes regardless of which side they came from.
    """
    combined = np.concatenate([left_values, right_values])
    _unique, inverse = np.unique(combined, return_inverse=True)
    left_codes = inverse[: left_values.size].astype(np.int64)
    right_codes = inverse[left_values.size:].astype(np.int64)
    return left_codes, right_codes, int(_unique.size)


def composite_keys(
    left_columns: Sequence[tuple[np.ndarray, np.ndarray]],
    right_columns: Sequence[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Encode one or more join columns into int64 keys for both sides.

    Args:
        left_columns: per join condition, ``(values, nulls)`` for the left
            input's column.
        right_columns: per join condition, ``(values, nulls)`` for the right
            input's column (same order as ``left_columns``).

    Returns:
        ``(left_keys, right_keys)`` where NULL rows carry key ``-1``.
    """
    if len(left_columns) != len(right_columns):
        raise ValueError("left and right column lists must have the same length")
    if not left_columns:
        raise ValueError("at least one join column is required")

    left_size = left_columns[0][0].shape[0]
    right_size = right_columns[0][0].shape[0]
    left_keys = np.zeros(left_size, dtype=np.int64)
    right_keys = np.zeros(right_size, dtype=np.int64)
    left_nulls = np.zeros(left_size, dtype=np.bool_)
    right_nulls = np.zeros(right_size, dtype=np.bool_)

    for (left_values, left_null_mask), (right_values, right_null_mask) in zip(
        left_columns, right_columns
    ):
        left_codes, right_codes, num_codes = _factorize_pair(
            np.asarray(left_values), np.asarray(right_values)
        )
        stride = max(num_codes, 1)
        left_keys = left_keys * stride + left_codes
        right_keys = right_keys * stride + right_codes
        left_nulls |= np.asarray(left_null_mask, dtype=np.bool_)
        right_nulls |= np.asarray(right_null_mask, dtype=np.bool_)

    left_keys[left_nulls] = -1
    right_keys[right_nulls] = -1
    return left_keys, right_keys

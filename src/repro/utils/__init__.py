"""Shared low-level utilities (vectorized join kernels, key encoding)."""

from repro.utils.join import equi_join_indices
from repro.utils.keys import composite_keys

__all__ = ["composite_keys", "equi_join_indices"]

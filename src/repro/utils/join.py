"""Vectorized equi-join kernel.

Both execution models implement their joins as hash joins (Section 2.5.3 and
Section 4.1).  In Python the equivalent vectorized kernel is sort +
binary-search: sort one side's keys, locate each key of the other side with
``searchsorted``, and expand the matching ranges.  The result — all matching
``(left, right)`` index pairs — is exactly what a hash join produces, with the
same output cardinality, so the work accounting downstream is unaffected.
"""

from __future__ import annotations

import numpy as np


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return index pairs ``(left_idx, right_idx)`` where keys are equal.

    Both inputs must be integer key arrays (use
    :func:`repro.utils.keys.composite_keys` to encode arbitrary columns).
    Negative keys are treated as "never matches" (the encoding for NULL join
    keys, which SQL joins drop).
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if left_keys.size == 0 or right_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_valid = np.flatnonzero(left_keys >= 0)
    right_valid = np.flatnonzero(right_keys >= 0)
    if left_valid.size == 0 or right_valid.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_subset = left_keys[left_valid]
    right_subset = right_keys[right_valid]

    order = np.argsort(left_subset, kind="stable")
    sorted_left = left_subset[order]

    lo = np.searchsorted(sorted_left, right_subset, side="left")
    hi = np.searchsorted(sorted_left, right_subset, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    right_expanded = np.repeat(np.arange(right_subset.size, dtype=np.int64), counts)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within_group = np.arange(total, dtype=np.int64) - offsets
    sorted_positions = np.repeat(lo, counts) + within_group
    left_expanded = order[sorted_positions]

    return left_valid[left_expanded], right_valid[right_expanded]

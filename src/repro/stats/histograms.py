"""Equi-depth histograms for selectivity estimation.

The paper measures base-predicate selectivities by evaluating each predicate
on a sample (Section 4.1), and its Figure 3c discussion notes that a more
accurate cost model would let the TCombined planner pick better plans.  This
module provides the standard alternative real systems use: per-column
equi-depth histograms.  They estimate range and equality predicates without
evaluating the predicate at all, and they expose the estimation error
explicitly so the ablation benchmarks can study cost-model sensitivity.

Histograms only apply to numeric columns and to simple
``column <op> literal`` / ``column BETWEEN a AND b`` predicates; everything
else falls back to the measured estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expr.ast import BetweenPredicate, BooleanExpr, ColumnRef, Comparison, Literal
from repro.plan.query import Query
from repro.stats.selectivity import SelectivityEstimator
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType

#: Default number of buckets per histogram.
DEFAULT_BUCKETS = 32


@dataclass
class HistogramBucket:
    """One equi-depth bucket: half-open value range and its row fraction."""

    low: float
    high: float
    fraction: float
    distinct: int


class EquiDepthHistogram:
    """An equi-depth histogram over one numeric column.

    Buckets hold (approximately) equal numbers of rows, so skewed
    distributions get finer resolution where the data actually is.  NULLs are
    excluded from the buckets and tracked as a separate fraction, mirroring
    how real optimizers store null fractions next to histograms.
    """

    def __init__(self, values: np.ndarray, nulls: np.ndarray, num_buckets: int = DEFAULT_BUCKETS) -> None:
        if num_buckets < 1:
            raise ValueError("a histogram needs at least one bucket")
        total = int(values.shape[0])
        self.total_rows = total
        valid = values[~nulls].astype(np.float64) if total else np.empty(0)
        self.null_fraction = float(nulls.sum()) / total if total else 0.0
        self.buckets: list[HistogramBucket] = []
        if valid.size == 0:
            return

        ordered = np.sort(valid)
        num_buckets = min(num_buckets, ordered.size)
        boundaries = np.quantile(ordered, np.linspace(0.0, 1.0, num_buckets + 1))
        non_null_fraction = 1.0 - self.null_fraction
        for index in range(num_buckets):
            low = float(boundaries[index])
            high = float(boundaries[index + 1])
            if index == num_buckets - 1:
                mask = (ordered >= low) & (ordered <= high)
            else:
                mask = (ordered >= low) & (ordered < high)
            count = int(mask.sum())
            if count == 0:
                continue
            self.buckets.append(
                HistogramBucket(
                    low=low,
                    high=high,
                    fraction=(count / ordered.size) * non_null_fraction,
                    distinct=int(len(np.unique(ordered[mask]))),
                )
            )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_column(cls, column: Column, num_buckets: int = DEFAULT_BUCKETS) -> "EquiDepthHistogram":
        """Build a histogram from a numeric column."""
        if column.ctype not in (ColumnType.INT, ColumnType.FLOAT):
            raise ValueError(
                f"histograms require a numeric column, got {column.ctype.value} for {column.name!r}"
            )
        return cls(column.data, column.null_mask, num_buckets=num_buckets)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def _bucket_overlap(self, bucket: HistogramBucket, low: float, high: float) -> float:
        """Fraction of a bucket's rows falling into [low, high] (uniform within bucket)."""
        if high < bucket.low or low > bucket.high:
            return 0.0
        if bucket.high == bucket.low:
            return 1.0
        overlap_low = max(low, bucket.low)
        overlap_high = min(high, bucket.high)
        return max(overlap_high - overlap_low, 0.0) / (bucket.high - bucket.low)

    def estimate_range(self, low: float, high: float) -> float:
        """Estimated fraction of rows with a value in ``[low, high]``."""
        if not self.buckets or low > high:
            return 0.0
        return float(
            sum(bucket.fraction * self._bucket_overlap(bucket, low, high) for bucket in self.buckets)
        )

    def estimate_comparison(self, op: str, value: float) -> float:
        """Estimated selectivity of ``column <op> value``."""
        if not self.buckets:
            return 0.0
        minimum = self.buckets[0].low
        maximum = self.buckets[-1].high
        if op in ("<", "<="):
            return self.estimate_range(minimum, value)
        if op in (">", ">="):
            return self.estimate_range(value, maximum)
        if op == "=":
            for bucket in self.buckets:
                if bucket.low <= value <= bucket.high:
                    distinct = max(bucket.distinct, 1)
                    return bucket.fraction / distinct
            return 0.0
        if op == "!=":
            return max(0.0, 1.0 - self.null_fraction - self.estimate_comparison("=", value))
        raise ValueError(f"unsupported comparison operator {op!r}")

    def __repr__(self) -> str:
        return (
            f"EquiDepthHistogram(buckets={len(self.buckets)}, rows={self.total_rows}, "
            f"null_fraction={self.null_fraction:.3f})"
        )


class HistogramSelectivityEstimator(SelectivityEstimator):
    """A selectivity estimator that answers simple predicates from histograms.

    ``column <op> literal`` comparisons and ``column BETWEEN a AND b``
    predicates over numeric columns are estimated from per-column equi-depth
    histograms (built lazily, once per column); every other predicate falls
    back to the measured estimator of the base class.
    """

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        sample_size: int = 20_000,
        seed: int = 0,
        num_buckets: int = DEFAULT_BUCKETS,
        sample_provider=None,
    ) -> None:
        super().__init__(
            catalog, query, sample_size=sample_size, seed=seed,
            sample_provider=sample_provider,
        )
        self._num_buckets = num_buckets
        self._histograms: dict[tuple[str, str], EquiDepthHistogram | None] = {}

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _histogram_for(self, alias: str, column_name: str) -> EquiDepthHistogram | None:
        key = (alias, column_name)
        if key in self._histograms:
            return self._histograms[key]
        histogram: EquiDepthHistogram | None = None
        if alias in self._query.tables:
            table = self._catalog.get(self._query.tables[alias])
            if column_name in table:
                column = table.column(column_name)
                if column.ctype in (ColumnType.INT, ColumnType.FLOAT):
                    histogram = EquiDepthHistogram.from_column(column, self._num_buckets)
        self._histograms[key] = histogram
        return histogram

    @staticmethod
    def _column_and_literal(expr: Comparison) -> tuple[ColumnRef, str, float] | None:
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            value = expr.right.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return expr.left, expr.op, float(value)
        if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            value = expr.left.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
                return expr.right, flipped[expr.op], float(value)
        return None

    def _measure_base(self, expr: BooleanExpr) -> float:
        if isinstance(expr, Comparison):
            parts = self._column_and_literal(expr)
            if parts is not None:
                column, op, value = parts
                histogram = self._histogram_for(column.alias, column.column)
                if histogram is not None:
                    return histogram.estimate_comparison(op, value)
        if isinstance(expr, BetweenPredicate) and isinstance(expr.operand, ColumnRef):
            low = expr.low.value if isinstance(expr.low, Literal) else None
            high = expr.high.value if isinstance(expr.high, Literal) else None
            numeric = all(
                isinstance(value, (int, float)) and not isinstance(value, bool)
                for value in (low, high)
            )
            if numeric:
                histogram = self._histogram_for(expr.operand.alias, expr.operand.column)
                if histogram is not None:
                    return histogram.estimate_range(float(low), float(high))
        return super()._measure_base(expr)

"""Cardinality estimation for scans, filters and joins.

Join output sizes use the textbook / PostgreSQL formula

    |L join R|  =  |L| * |R| / max(ndv(L.key), ndv(R.key))

scaled by the fraction of each input surviving earlier filters.  Filter
output sizes multiply the input cardinality by the predicate selectivity
(with independence across predicates).  These estimates feed the planner cost
models of Section 4.1.
"""

from __future__ import annotations

from repro.expr.ast import BooleanExpr
from repro.plan.query import JoinCondition, Query
from repro.stats.selectivity import SelectivityEstimator
from repro.stats.table_stats import TableStats


class CardinalityEstimator:
    """Estimates row counts for plan fragments of one query."""

    def __init__(
        self,
        query: Query,
        table_stats: dict[str, TableStats],
        selectivity: SelectivityEstimator,
    ) -> None:
        self._query = query
        self._table_stats = table_stats
        self._selectivity = selectivity

    # ------------------------------------------------------------------ #
    # Base quantities
    # ------------------------------------------------------------------ #
    def base_rows(self, alias: str) -> float:
        """Number of rows in the base table bound to ``alias``."""
        table_name = self._query.tables[alias]
        return float(self._table_stats[table_name].num_rows)

    def distinct_values(self, alias: str, column: str) -> float:
        """Distinct-value count of ``alias.column``."""
        table_name = self._query.tables[alias]
        return float(self._table_stats[table_name].distinct_count(column))

    def predicate_selectivity(self, expr: BooleanExpr) -> float:
        """Selectivity of an arbitrary predicate expression."""
        return self._selectivity.selectivity(expr)

    # ------------------------------------------------------------------ #
    # Composite estimates
    # ------------------------------------------------------------------ #
    def filtered_rows(self, alias: str, predicates: list[BooleanExpr]) -> float:
        """Rows of ``alias`` surviving the given (conjunctive) predicates."""
        rows = self.base_rows(alias)
        for predicate in predicates:
            rows *= self.predicate_selectivity(predicate)
        return rows

    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        condition: JoinCondition,
    ) -> float:
        """Estimated output size of an equi-join."""
        left_ndv = self.distinct_values(condition.left.alias, condition.left.column)
        right_ndv = self.distinct_values(condition.right.alias, condition.right.column)
        denominator = max(left_ndv, right_ndv, 1.0)
        return left_rows * right_rows / denominator

    def join_rows_multi(
        self,
        left_rows: float,
        right_rows: float,
        conditions: list[JoinCondition],
    ) -> float:
        """Join estimate for multiple equi-conditions (independence across keys)."""
        if not conditions:
            return left_rows * right_rows
        result = left_rows * right_rows
        for condition in conditions:
            left_ndv = self.distinct_values(condition.left.alias, condition.left.column)
            right_ndv = self.distinct_values(condition.right.alias, condition.right.column)
            result /= max(left_ndv, right_ndv, 1.0)
        return result

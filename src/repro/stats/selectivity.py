"""Predicate selectivity estimation.

Following the paper (Section 4.1), base-predicate selectivities are
*measured*: the predicate is evaluated on a sample of its base table and the
observed pass rate is cached.  Selectivities of complex expressions are
combined under the independence assumption:

* ``sel(AND) = product of child selectivities``
* ``sel(OR)  = 1 - product of (1 - child selectivities)``
* ``sel(NOT) = 1 - child selectivity``

Predicates spanning several tables (which cannot be evaluated on a single
base table) fall back to a fixed default selectivity.
"""

from __future__ import annotations

import numpy as np

from repro.expr import three_valued as tv
from repro.expr.ast import (
    AndExpr,
    BooleanExpr,
    LikePredicate,
    NotExpr,
    OrExpr,
)
from repro.expr.eval import RowBatch
from repro.plan.query import Query
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats

#: Selectivity assumed for predicates that cannot be measured.
DEFAULT_SELECTIVITY = 0.33

#: Maximum number of rows sampled per table when measuring selectivities.
DEFAULT_SAMPLE_SIZE = 20_000


def sample_positions(
    num_rows: int, sample_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sorted row positions of a uniform sample of ``num_rows`` rows.

    Tables at or below ``sample_size`` rows are used whole, matching the
    paper's "measure on a sample" approach degrading to exact measurement.
    """
    if num_rows <= sample_size:
        return np.arange(num_rows, dtype=np.int64)
    return np.sort(rng.choice(num_rows, size=sample_size, replace=False)).astype(np.int64)


class SelectivityEstimator:
    """Measures and caches base-predicate selectivities for one query.

    Args:
        catalog: base tables.
        query: the query whose predicates are being estimated (supplies the
            alias -> table mapping).
        sample_size: number of rows (per table) used for measurement.
        seed: RNG seed used to draw the sample.
        sample_provider: optional callable ``(table, sample_size, seed) ->
            positions`` supplying the sampled row positions for a base table.
            The service layer injects a caching provider here so repeated
            queries stop re-drawing (and re-sorting) samples per call; the
            default draws a fresh — but deterministic — sample.
    """

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = 0,
        sample_provider=None,
    ) -> None:
        self._catalog = catalog
        self._query = query
        self._sample_size = sample_size
        self._seed = seed
        self._sample_provider = sample_provider
        self._cache: dict[str, float] = {}
        self._sample_batches: dict[str, RowBatch] = {}
        # Selectivity measurement is a planning activity; it must not pollute
        # the runtime I/O counters, so it gets a private scratch counter.
        self._scratch_io = IOStats()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def selectivity(self, expr: BooleanExpr) -> float:
        """Estimated fraction of rows satisfying ``expr``."""
        key = expr.key()
        if key in self._cache:
            return self._cache[key]
        estimate = self._estimate(expr)
        estimate = min(max(estimate, 0.0), 1.0)
        self._cache[key] = estimate
        return estimate

    def set_selectivity(self, expr: BooleanExpr, value: float) -> None:
        """Override the estimate for an expression (used by tests/ablations)."""
        self._cache[expr.key()] = min(max(value, 0.0), 1.0)

    def seed_selectivity(self, key: str, value: float) -> None:
        """Pin the estimate for an expression *key* (feedback overrides).

        Seeded values participate in the cache-first recursion of
        :meth:`selectivity`, so pinning a sub-expression affects every
        AND/OR/NOT combination that contains it.
        """
        self._cache[key] = min(max(value, 0.0), 1.0)

    def reset_estimates(self) -> None:
        """Forget every cached and pinned estimate (samples are kept)."""
        self._cache.clear()

    def cost_factor(self, expr: BooleanExpr) -> float:
        """Relative per-row evaluation cost of a predicate (``F_P``).

        Pattern-matching predicates (LIKE / ILIKE) are an order of magnitude
        more expensive per row than comparisons, matching the role regex
        predicates play in the paper's TPullup/TIterPush discussion.
        """
        if isinstance(expr, LikePredicate):
            return 10.0
        if expr.is_base_predicate():
            return 1.0
        children = expr.children()
        return sum(self.cost_factor(child) for child in children) or 1.0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _estimate(self, expr: BooleanExpr) -> float:
        if isinstance(expr, AndExpr):
            product = 1.0
            for child in expr.children():
                product *= self.selectivity(child)
            return product
        if isinstance(expr, OrExpr):
            product = 1.0
            for child in expr.children():
                product *= 1.0 - self.selectivity(child)
            return 1.0 - product
        if isinstance(expr, NotExpr):
            return 1.0 - self.selectivity(expr.child)
        return self._measure_base(expr)

    def _measure_base(self, expr: BooleanExpr) -> float:
        aliases = expr.tables()
        if len(aliases) != 1:
            return DEFAULT_SELECTIVITY
        alias = next(iter(aliases))
        if alias not in self._query.tables:
            return DEFAULT_SELECTIVITY
        batch = self._sample_batch(alias)
        if batch.num_rows == 0:
            return DEFAULT_SELECTIVITY
        truth = expr.evaluate(batch)
        return float(tv.is_true(truth).sum()) / batch.num_rows

    def _sample_batch(self, alias: str) -> RowBatch:
        if alias in self._sample_batches:
            return self._sample_batches[alias]
        table = self._catalog.get(self._query.tables[alias])
        if self._sample_provider is not None:
            positions = self._sample_provider(table, self._sample_size, self._seed)
        else:
            # One fresh generator per table: the sample drawn for a table is
            # a function of (table, sample_size, seed) only, independent of
            # the order predicates are measured in — which is also exactly
            # what a caching sample provider returns, keeping cached and
            # uncached planning identical.
            positions = sample_positions(
                table.num_rows, self._sample_size, np.random.default_rng(self._seed)
            )
        batch = RowBatch({alias: table}, {alias: positions}, iostats=self._scratch_io)
        self._sample_batches[alias] = batch
        return batch

"""Statistics: table statistics, predicate selectivities, join cardinalities.

The paper's cost models (Section 4.1) need cardinality estimates for tagged
relations and relational slices.  Predicate selectivities are *measured* on a
sample of the base data and combined under the independence assumption; join
cardinalities use the PostgreSQL-style distinct-value formula.
"""

from repro.stats.cardinality import CardinalityEstimator
from repro.stats.selectivity import SelectivityEstimator
from repro.stats.table_stats import ColumnStats, TableStats, collect_table_stats

__all__ = [
    "CardinalityEstimator",
    "ColumnStats",
    "SelectivityEstimator",
    "TableStats",
    "collect_table_stats",
]

"""Per-table and per-column statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.catalog import Catalog
from repro.storage.table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column."""

    name: str
    num_rows: int
    distinct_count: int
    null_count: int
    min_value: object | None
    max_value: object | None

    @property
    def null_fraction(self) -> float:
        """Fraction of rows that are NULL."""
        if self.num_rows == 0:
            return 0.0
        return self.null_count / self.num_rows


@dataclass
class TableStats:
    """Summary statistics of one table."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: Rows per simulated disk page (drives page-count cost estimates).
    page_size: int = 1024

    @property
    def num_pages(self) -> int:
        """Simulated pages per column of the table."""
        if self.num_rows == 0:
            return 0
        return -(-self.num_rows // max(self.page_size, 1))

    def column(self, name: str) -> ColumnStats:
        """Statistics for a column; raises KeyError if not collected."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no statistics for column {name!r} of table {self.table_name!r}"
            ) from None

    def distinct_count(self, column_name: str) -> int:
        """Distinct-value count, defaulting to the row count when unknown."""
        if column_name in self.columns:
            return max(1, self.columns[column_name].distinct_count)
        return max(1, self.num_rows)


def collect_table_stats(table: Table) -> TableStats:
    """Compute statistics for every column of a table."""
    stats = TableStats(
        table_name=table.name, num_rows=table.num_rows, page_size=table.page_size
    )
    for column in table.columns():
        bounds = column.min_max()
        min_value, max_value = (None, None) if bounds is None else bounds
        stats.columns[column.name] = ColumnStats(
            name=column.name,
            num_rows=len(column),
            distinct_count=column.distinct_count(),
            null_count=int(column.null_mask.sum()),
            min_value=min_value if min_value is None else _to_python(min_value),
            max_value=max_value if max_value is None else _to_python(max_value),
        )
    return stats


def collect_catalog_stats(catalog: Catalog) -> dict[str, TableStats]:
    """Compute statistics for every table in a catalog."""
    return {table.name: collect_table_stats(table) for table in catalog}


def _to_python(value):
    """Convert NumPy scalars to plain Python values for readability."""
    return value.item() if hasattr(value, "item") else value

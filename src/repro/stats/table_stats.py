"""Per-table and per-column statistics.

Statistics describe the rows a query can observe: for tables carrying a
delete bitmap (see :mod:`repro.mutation`) collection is computed over the
live rows only, so a mutated table and a freshly built table holding the
same live rows collect identical statistics.  After a mutation commit the
service layer avoids recollection entirely via :meth:`TableStats.apply_delta`,
which folds a commit's per-column summary numbers into the previous
statistics — exact for row/NULL counts and min/max bounds widen-only, upper
bound for distinct counts (restored to exact by the next full collection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column."""

    name: str
    num_rows: int
    distinct_count: int
    null_count: int
    min_value: object | None
    max_value: object | None

    @property
    def null_fraction(self) -> float:
        """Fraction of rows that are NULL."""
        if self.num_rows == 0:
            return 0.0
        return self.null_count / self.num_rows


@dataclass
class TableStats:
    """Summary statistics of one table."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: Rows per simulated disk page (drives page-count cost estimates).
    page_size: int = 1024

    @property
    def num_pages(self) -> int:
        """Simulated pages per column of the table."""
        if self.num_rows == 0:
            return 0
        return -(-self.num_rows // max(self.page_size, 1))

    def column(self, name: str) -> ColumnStats:
        """Statistics for a column; raises KeyError if not collected."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no statistics for column {name!r} of table {self.table_name!r}"
            ) from None

    def distinct_count(self, column_name: str) -> int:
        """Distinct-value count, defaulting to the row count when unknown."""
        if column_name in self.columns:
            return max(1, self.columns[column_name].distinct_count)
        return max(1, self.num_rows)

    def apply_delta(self, delta) -> "TableStats":
        """Statistics of the post-commit table, without rescanning it.

        ``delta`` is a :class:`~repro.mutation.delta.TableDelta` (duck-typed:
        only its count/bound attributes are read).  Row and NULL counts are
        exact; min/max bounds only widen (deleted rows may leave them looser
        than a fresh collection — still sound for estimation and pruning);
        distinct counts are upper-bound estimates.
        """
        new_rows = self.num_rows + delta.appended_rows - delta.deleted_count
        merged = TableStats(
            table_name=self.table_name, num_rows=new_rows, page_size=self.page_size
        )
        for name, old in self.columns.items():
            column_delta = delta.columns.get(name)
            if column_delta is None:
                merged.columns[name] = old
                continue
            appended = column_delta.appended_rows
            min_value, max_value = old.min_value, old.max_value
            if column_delta.appended_min is not None:
                seg_min = _to_python(column_delta.appended_min)
                seg_max = _to_python(column_delta.appended_max)
                if min_value is None:
                    min_value, max_value = seg_min, seg_max
                else:
                    min_value = min(min_value, seg_min)
                    max_value = max(max_value, seg_max)
            merged.columns[name] = ColumnStats(
                name=name,
                num_rows=old.num_rows + appended - delta.deleted_count,
                distinct_count=min(
                    old.distinct_count + column_delta.appended_distinct,
                    max(new_rows, 1),
                ),
                null_count=(
                    old.null_count + column_delta.appended_nulls - column_delta.deleted_nulls
                ),
                min_value=min_value,
                max_value=max_value,
            )
        return merged


def collect_table_stats(table: Table) -> TableStats:
    """Compute statistics for every column of a table (live rows only)."""
    if table.has_deletes():
        return _collect_live_stats(table)
    stats = TableStats(
        table_name=table.name, num_rows=table.num_rows, page_size=table.page_size
    )
    for column in table.columns():
        bounds = column.min_max()
        min_value, max_value = (None, None) if bounds is None else bounds
        stats.columns[column.name] = ColumnStats(
            name=column.name,
            num_rows=len(column),
            distinct_count=column.distinct_count(),
            null_count=int(column.null_mask.sum()),
            min_value=min_value if min_value is None else _to_python(min_value),
            max_value=max_value if max_value is None else _to_python(max_value),
        )
    return stats


def _collect_live_stats(table: Table) -> TableStats:
    """Statistics over the live rows of a table with a delete bitmap.

    The column-level memoized statistics cover the physical rows (deleted
    included), so they cannot be used here; this path recomputes from the
    live subset — matching what a freshly built table of the same live rows
    would collect.  The incremental path (:meth:`TableStats.apply_delta`)
    exists precisely so serving deployments rarely pay this.
    """
    live = ~table.delete_mask
    stats = TableStats(
        table_name=table.name, num_rows=table.num_live, page_size=table.page_size
    )
    for column in table.columns():
        nulls = column.null_mask
        valid = column.data[live & ~nulls]
        bounds = (valid.min(), valid.max()) if valid.size else (None, None)
        stats.columns[column.name] = ColumnStats(
            name=column.name,
            num_rows=table.num_live,
            distinct_count=int(np.unique(valid).size) if valid.size else 0,
            null_count=int((nulls & live).sum()),
            min_value=bounds[0] if bounds[0] is None else _to_python(bounds[0]),
            max_value=bounds[1] if bounds[1] is None else _to_python(bounds[1]),
        )
    return stats


def collect_catalog_stats(catalog: Catalog) -> dict[str, TableStats]:
    """Compute statistics for every table in a catalog."""
    return {table.name: collect_table_stats(table) for table in catalog}


def _to_python(value):
    """Convert NumPy scalars to plain Python values for readability."""
    return value.item() if hasattr(value, "item") else value

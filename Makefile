# Developer entry points. Everything runs from the repo root with the
# in-tree package (no install required).

PYTHON ?= python
RUN = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON)

# Tag stamped into the BENCH_*.json artifacts written by `make bench`.
BENCH_TAG ?= PR10

.PHONY: test lint test-crash bench-smoke bench bench-parallel bench-shards bench-feedback bench-index bench-ingest bench-wal bench-kernels bench-obs bench-history docs-check examples

## tier-1 test suite (the gate every change must keep green)
test:
	$(RUN) -m pytest -x -q

## lint gate (ruff; configured in pyproject.toml)
lint:
	$(RUN) -m ruff check .

## crash-recovery matrix: kills real CLI runs at every fault point in a
## subprocess and asserts recovery (also part of `make test`; this target
## runs just the durability suites, verbosely)
test-crash:
	$(RUN) -m pytest tests/test_crash_recovery.py tests/test_wal.py \
	    tests/test_mutation_properties.py tests/test_concurrent_writers.py -q

## quick benchmark pass: service throughput + parallel-scan assertions + one
## paper figure, correctness checks only (the wall-clock speedup assertion is
## deselected here and lives in bench-parallel)
bench-smoke:
	$(RUN) -m pytest benchmarks/bench_service_throughput.py \
	    benchmarks/bench_parallel_scan.py \
	    benchmarks/bench_sharded_scan.py \
	    benchmarks/bench_feedback_replan.py \
	    benchmarks/bench_index_pruning.py \
	    benchmarks/bench_ingest.py \
	    benchmarks/bench_wal_overhead.py \
	    benchmarks/bench_kernel_fusion.py \
	    benchmarks/bench_obs_overhead.py \
	    benchmarks/bench_history_overhead.py \
	    benchmarks/bench_fig4a_selectivity.py -q --benchmark-disable \
	    -k "not speedup and not overhead"

## morsel-driven parallel execution: speedup assertion (needs >= 2 CPU
## cores; the timing test self-skips on single-core hosts) plus timed runs
bench-parallel:
	$(RUN) -m pytest benchmarks/bench_parallel_scan.py -q

## shared-nothing sharded execution: the >= 2x-at-4-shards speedup assertion
## (needs >= 4 CPU cores; self-skips below that) plus timed runs, persists
## its measurements into the current BENCH_*.json (the byte-identity half
## also runs in bench-smoke)
bench-shards:
	$(RUN) -m pytest benchmarks/bench_sharded_scan.py -q

## feedback-driven re-planning: work + wall-clock assertions, persists
## its measurements into the current BENCH_*.json
bench-feedback:
	$(RUN) -m pytest benchmarks/bench_feedback_replan.py -q

## access-path pruning: page-count + wall-clock assertions, persists its
## measurements into BENCH_PR4.json (the page assertion also runs in
## bench-smoke; this target adds the timing half)
bench-index:
	$(RUN) -m pytest benchmarks/bench_index_pruning.py -q

## mutation ingest: incremental-vs-rebuild maintenance ratio plus the warm
## query latency guard on a mutated table (the ratio half also runs in
## bench-smoke; this target adds the latency half)
bench-ingest:
	$(RUN) -m pytest benchmarks/bench_ingest.py -q

## WAL durability price: commit-latency overhead with fsync on and off
## (the equivalence half also runs in bench-smoke; this target adds the
## timing guard), persists its measurements into the current BENCH_*.json
bench-wal:
	$(RUN) -m pytest benchmarks/bench_wal_overhead.py -q

## fused expression kernels: clause-work + byte-identity assertions plus the
## dictionary string-predicate wall-clock guard (the work half also runs in
## bench-smoke; this target adds the timing half), persists its
## measurements into the current BENCH_*.json
bench-kernels:
	$(RUN) -m pytest benchmarks/bench_kernel_fusion.py -q

## observability price: metrics-publication and tracing overhead guards
## (the three-way equivalence half also runs in bench-smoke; this target
## adds the timing guards), persists its measurements into the current
## BENCH_*.json
bench-obs:
	$(RUN) -m pytest benchmarks/bench_obs_overhead.py -q

## workload-history price: statistics + journal + regression detection
## overhead guard (the equivalence half also runs in bench-smoke; this
## target adds the timing guard), persists its measurements into the
## current BENCH_*.json
bench-history:
	$(RUN) -m pytest benchmarks/bench_history_overhead.py -q

## full benchmark suite with timing (slow); always leaves a BENCH_*.json
## artifact behind so the perf trajectory is tracked
bench:
	$(RUN) -m pytest benchmarks -q --benchmark-json=BENCH_$(BENCH_TAG).pytest.json

## docs gates: every public module has a docstring, README examples execute
docs-check:
	$(RUN) scripts/docs_check.py

## run every example end to end (examples bootstrap their own sys.path)
examples:
	for script in examples/*.py; do \
	    echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done

"""Fused expression kernels: clause-work reduction and wall-clock speedup.

The workload evaluates multi-clause AND chains and OR trees over a table
whose string column is dictionary-eligible (low cardinality, with NULLs).
Legacy evaluation charges every clause for every input row; the fused
kernels order clauses by estimated selectivity and evaluate each one only
over the rows still alive, so the
:attr:`~repro.engine.metrics.ExecutionMetrics.clause_rows_evaluated`
counter drops sharply while the truth vectors stay byte-identical.

Assertions:

* **work** (always) — across the AND-chain and OR-tree predicates the fused
  path evaluates at least 2x fewer clause rows than legacy, with identical
  three-valued truth vectors;
* **rows** (always) — a cross-table disjunction executed end to end through
  a session returns byte-identical rows with kernels on and off;
* **speedup** (timing; deselected by ``make bench-smoke``) — dictionary-aware
  string predicates (LIKE/IN over the low-cardinality column) beat legacy
  row-at-a-time string evaluation on wall clock.

Results are persisted to the current ``BENCH_*.json`` (see
:mod:`repro.bench.persist`), so the perf trajectory is on the record.

Not tied to a paper figure — this benchmarks the repo's shared expression
path, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, Session, Table
from repro.bench.persist import record_bench_result
from repro.engine.metrics import ExecContext, Stopwatch
from repro.kernels import KernelConfig
from repro.physical.expressions import evaluate_predicate
from repro.sql import parse_query

#: Rows in the events table the predicates run over.
TABLE_ROWS = 50_000

#: Timed evaluations averaged by the wall-clock comparison.
TIMED_RUNS = 5

#: Predicates evaluated as whole trees (one fused kernel call each).  The
#: AND chain leads with a rare status (selective clause first after
#: ordering); the OR tree leads with a common one (accepting clause first).
PREDICATES = {
    "and_chain": (
        "SELECT e.id FROM events AS e WHERE e.status = 'rare' "
        "AND e.amount < 5.0 AND e.id < 1000"
    ),
    "or_tree": (
        "SELECT e.id FROM events AS e WHERE e.status = 'common' "
        "OR e.amount > 95.0 OR e.id < 500"
    ),
}

#: String-heavy disjunction for the timing comparison: legacy evaluation
#: runs a regex per row; the dictionary LUT runs it once per distinct value.
STRING_SQL = (
    "SELECT e.id FROM events AS e WHERE e.status LIKE 'ra%' "
    "OR e.status IN ('uncommon', 'absent') OR e.status = 'no_such'"
)


@pytest.fixture(scope="module")
def events_catalog() -> Catalog:
    rng = np.random.default_rng(23)
    n = TABLE_ROWS
    pool = ["common"] * 60 + ["uncommon"] * 25 + ["other"] * 12 + ["rare"] * 2 + [None]
    statuses = [pool[i] for i in rng.integers(0, len(pool), n)]
    amounts = rng.uniform(0.0, 100.0, n).round(2).tolist()
    for position in range(0, n, 97):
        amounts[position] = None
    events = Table(
        "events",
        [
            Column("id", list(range(n))),
            Column("status", statuses),
            Column("amount", amounts),
        ],
    )
    return Catalog([events])


def _predicate(sql: str):
    return parse_query(sql).predicate


def _measured_selectivities(predicate, tables, rows) -> dict[str, float]:
    """True-fraction of each root clause, keyed like the estimate provider."""
    selectivities: dict[str, float] = {}
    for child in predicate.children():
        truth = evaluate_predicate(child, tables, rows, ExecContext())
        selectivities[child.key()] = float((truth == 1).mean())
    return selectivities


def _evaluate(predicate, tables, rows, config: KernelConfig | None):
    context = ExecContext(kernels=config)
    truth = evaluate_predicate(predicate, tables, rows, context)
    return truth, context.metrics.clause_rows_evaluated


def test_fused_kernels_cut_clause_work(events_catalog):
    """Fused kernels must at least halve clause work, rows unchanged."""
    tables = {"e": events_catalog.get("events")}
    rows = {"e": np.arange(TABLE_ROWS, dtype=np.int64)}
    legacy_total = fused_total = 0
    payload = {}
    for name, sql in PREDICATES.items():
        predicate = _predicate(sql)
        config = KernelConfig(
            clause_selectivities=_measured_selectivities(predicate, tables, rows)
        )
        legacy_truth, legacy_work = _evaluate(predicate, tables, rows, None)
        fused_truth, fused_work = _evaluate(predicate, tables, rows, config)
        assert np.array_equal(legacy_truth, fused_truth), name
        assert fused_work < legacy_work, name
        legacy_total += legacy_work
        fused_total += fused_work
        payload[name] = {
            "clause_rows_legacy": legacy_work,
            "clause_rows_fused": fused_work,
        }
    reduction = legacy_total / max(fused_total, 1)
    assert reduction >= 2.0, (
        f"fused kernels evaluated {fused_total} clause rows vs {legacy_total} "
        f"legacy ({reduction:.2f}x, expected >= 2x reduction)"
    )
    payload["work_reduction"] = round(reduction, 2)
    record_bench_result("bench_kernel_fusion", payload)


def test_fused_rows_byte_identical_end_to_end(events_catalog):
    """A full session run returns the same rows with kernels on and off."""
    rng = np.random.default_rng(7)
    n = 5_000
    owners = Table(
        "owners",
        [
            Column("oid", list(range(200))),
            Column("grade", rng.uniform(0.0, 10.0, 200).tolist()),
        ],
    )
    events = events_catalog.get("events")
    catalog = Catalog(
        [
            Table(
                "ev",
                [
                    Column("id", list(range(n))),
                    Column("owner", rng.integers(0, 200, n).tolist()),
                    Column("status", events.column("status").values_list()[:n]),
                    Column("amount", events.column("amount").values_list()[:n]),
                ],
            ),
            owners,
        ]
    )
    # The cross-table OR cannot be pushed below the join, so it survives
    # planning as one multi-clause filter — the fused kernels' target shape.
    sql = (
        "SELECT e.id, e.status FROM ev AS e JOIN owners AS o ON e.owner = o.oid "
        "WHERE o.grade > 9.0 OR e.amount > 97.0 OR e.status = 'rare' "
        "ORDER BY e.id"
    )
    fused = Session(catalog, kernels="numpy").execute(sql, planner="bpushconj")
    legacy = Session(catalog, kernels="off").execute(sql, planner="bpushconj")
    assert fused.rows == legacy.rows
    assert fused.rows  # non-trivial output
    assert fused.kernel_tier == "numpy" and legacy.kernel_tier == "off"


def test_dictionary_string_predicate_speedup(events_catalog):
    """Wall-clock: dictionary LUTs beat per-row string evaluation."""
    tables = {"e": events_catalog.get("events")}
    rows = {"e": np.arange(TABLE_ROWS, dtype=np.int64)}
    predicate = _predicate(STRING_SQL)
    config = KernelConfig(
        clause_selectivities=_measured_selectivities(predicate, tables, rows)
    )

    def timed(kernel_config):
        truth = None
        timer = Stopwatch()
        for _ in range(TIMED_RUNS):
            truth, _work = _evaluate(predicate, tables, rows, kernel_config)
        return timer.elapsed() / TIMED_RUNS, truth

    legacy_seconds, legacy_truth = timed(None)
    fused_seconds, fused_truth = timed(config)
    assert np.array_equal(legacy_truth, fused_truth)
    speedup = legacy_seconds / max(fused_seconds, 1e-9)
    record_bench_result(
        "bench_kernel_fusion",
        {
            "string_timing": {
                "legacy_seconds": round(legacy_seconds, 5),
                "fused_seconds": round(fused_seconds, 5),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup > 1.0, (
        f"fused string evaluation {fused_seconds:.4f}s vs legacy "
        f"{legacy_seconds:.4f}s ({speedup:.2f}x, expected > 1x)"
    )

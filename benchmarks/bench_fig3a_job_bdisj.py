"""Figure 3a: BDisj vs. TCombined on the combined JOB-style queries.

The paper reports an average 2.7x speedup of TCombined over BDisj across the
33 query groups.  Each benchmark here times one planner on one representative
query group; compare the ``bdisj`` and ``tcombined`` medians per group to get
the per-group speedup bars of Figure 3a.  ``python -m repro.bench.figures
fig3a`` prints the full 33-group table in one go.
"""

from __future__ import annotations

import pytest

#: Representative query groups: one per structural template.
GROUPS = (1, 6, 8, 15, 19, 30)


@pytest.mark.parametrize("group", GROUPS)
@pytest.mark.parametrize("planner", ("bdisj", "tcombined"))
def test_fig3a_job_group(benchmark, imdb_session, job_queries, group, planner):
    query = job_queries[group - 1]
    result = benchmark(imdb_session.execute, query, planner=planner)
    assert result.planner_name in (planner, "tpushdown", "tpullup", "titerpush", "tpushconj")

"""Figure 4a: synthetic DNF query, predicate selectivity sweep (BDisj vs. TCombined).

The paper's curves diverge as selectivity grows, reaching a 5x speedup at
selectivity 0.9: larger intermediate results mean more duplicated
materialization and a heavier union for BDisj, while tagged execution touches
each tuple once.
"""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import make_dnf_query

SELECTIVITIES = (0.1, 0.5, 0.9)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("planner", ("bdisj", "tcombined"))
def test_fig4a_selectivity(benchmark, synthetic_session, selectivity, planner):
    query = make_dnf_query(num_root_clauses=2, selectivity=selectivity)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0

"""Workload history overhead: recording statistics must stay near-free.

PR 10 extends the PR-9 guarantee to the workload-history subsystem:
per-fingerprint statistics, the persistent event journal, and regression
detection are pure observers.  This benchmark prices them by running the
same query stream through a :class:`~repro.service.QueryService` two
ways:

* **bare** — no :class:`~repro.obs.history.WorkloadHistory` attached:
  the publish step reduces to a None check, the pre-PR-10 hot path;
* **history** — a full history with an on-disk journal and the
  regression detector enabled, the `repro serve`/`repro batch
  --history-journal` configuration.

Assertions:

* **equivalence** (always; part of ``make bench-smoke``) — both modes
  return byte-identical rows and identical IO accounting, and history
  counted every measured call exactly once;
* **overhead guard** (timing; deselected by ``make bench-smoke``, run by
  ``make bench-history``) — median per-query latency with history on
  stays within **1.05x** of bare.

Results are persisted to ``BENCH_PR10.json`` (see
:mod:`repro.bench.persist`).

Not tied to a paper figure — this benchmarks the repo's observability
subsystem, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import QueryService, Session
from repro.bench.persist import record_bench_result
from repro.obs.history import WorkloadHistory
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

#: Rows per synthetic table.
TABLE_SIZE = 4_000

#: Measured repetitions of the query list per mode (after WARMUP discarded).
REPEAT = 40
WARMUP = 5

QUERIES = (
    "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid "
    "WHERE T1.A1 < 0.2 OR (T1.A2 > 0.8 AND T0.A1 < 0.5)",
    "SELECT * FROM T0 JOIN T2 ON T0.id = T2.fid "
    "WHERE T2.A3 < 0.3 OR T0.A2 > 0.9",
)

MODES = ("bare", "history")


@pytest.fixture(scope="module")
def measured(tmp_path_factory):
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=TABLE_SIZE, seed=3))
    journal = tmp_path_factory.mktemp("history") / "bench.journal"
    history = WorkloadHistory(journal_path=journal)
    services = {
        "bare": QueryService(Session(catalog, parallelism=2)),
        "history": QueryService(Session(catalog, parallelism=2), history=history),
    }
    latencies = {name: [] for name in MODES}
    results = {}
    try:
        # Interleaved per repetition so clock drift and cache warm-up hit
        # both modes equally.
        for repetition in range(WARMUP + REPEAT):
            for name in MODES:
                for sql in QUERIES:
                    start = time.perf_counter()
                    services[name].execute(sql)
                    if repetition >= WARMUP:
                        latencies[name].append(time.perf_counter() - start)
        for name in MODES:
            results[name] = [services[name].execute(sql) for sql in QUERIES]
    finally:
        for service in services.values():
            service.close()
        history.close()

    bare_s, history_s = (statistics.median(latencies[name]) for name in MODES)
    payload = {
        "queries": len(QUERIES),
        "repetitions": REPEAT,
        "bare_ms": bare_s * 1e3,
        "history_on_ms": history_s * 1e3,
        "history_overhead_x": history_s / bare_s,
        "journal_bytes": journal.stat().st_size,
        "fingerprints": len(history.stats),
    }
    record_bench_result("history_overhead", payload)
    return {"payload": payload, "results": results, "history": history}


def test_history_modes_return_identical_results(measured):
    bare, history = (measured["results"][mode] for mode in MODES)
    for bare_r, history_r in zip(bare, history):
        assert bare_r.rows == history_r.rows
        assert bare_r.iostats.as_dict() == history_r.iostats.as_dict()
        assert bare_r.metrics.as_dict() == history_r.metrics.as_dict()
    # Every measured call was counted exactly once.
    store = measured["history"].stats
    calls = sum(entry.calls for entry in store.entries())
    assert calls == (WARMUP + REPEAT + 1) * len(QUERIES)
    assert len(store) == len(QUERIES)


def test_history_recording_overhead_guard(measured):
    payload = measured["payload"]
    assert payload["history_overhead_x"] <= 1.05, (
        f"history recording overhead {payload['history_overhead_x']:.3f}x "
        f"exceeds 1.05x (bare {payload['bare_ms']:.3f}ms, history-on "
        f"{payload['history_on_ms']:.3f}ms)"
    )

"""Access-path pruning: selective scans must touch ≥2x fewer pages.

The workload is a 60k-row events table whose ``category`` column is stored
in sorted runs (the common clustered layout for a dictionary-sorted import)
and whose ``ts`` column is monotonically increasing — exactly the layouts
zone maps and secondary indexes exploit.  A bitmap index on ``category`` and
a sorted index on ``ts`` are created up front; the comparison session runs
with ``access_paths=False`` and therefore reads every page the predicates
touch.

Assertions:

* **pages** (always; part of ``make bench-smoke``) — on every selective
  point / range / disjunctive / join query, the warm pruned execution reads
  at least 2x fewer pages (cache misses + hits) than the warm full-scan
  execution, with byte-identical rows;
* **speedup** (timing; deselected by ``make bench-smoke``, run by
  ``make bench-index``) — warm pruned executions are faster in wall-clock
  terms as well.

Results are persisted to ``BENCH_PR4.json`` (see :mod:`repro.bench.persist`).

Not tied to a paper figure — this benchmarks the repo's access-path layer,
not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, QueryService, Session, Table
from repro.access.manager import ensure_access_manager
from repro.bench.persist import record_bench_result
from repro.engine.metrics import Stopwatch

#: Rows in the events table (59 pages at the default page size).
EVENT_ROWS = 60_000

#: Distinct categories; the column is stored in sorted runs of equal size.
CATEGORIES = 80

#: Warm executions averaged by the timing comparison.
TIMED_RUNS = 3

QUERIES = {
    "point": (
        "SELECT e.id FROM events AS e WHERE e.category = 'cat_07'"
    ),
    "range": (
        "SELECT e.id, e.value FROM events AS e WHERE e.ts BETWEEN 1000 AND 2500"
    ),
    "disjunctive": (
        "SELECT e.id FROM events AS e "
        "WHERE (e.category = 'cat_03' AND e.value < 0.5) OR e.ts < 800"
    ),
    "join": (
        "SELECT e.id, d.weight FROM events AS e JOIN dims AS d ON e.cat_id = d.did "
        "WHERE e.ts < 900 AND d.weight >= 0.0"
    ),
}


@pytest.fixture(scope="module")
def catalogs():
    """Identical data twice: one catalog with indexes, one untouched."""

    def build() -> Catalog:
        rng = np.random.default_rng(19)
        run = EVENT_ROWS // CATEGORIES
        events = Table(
            "events",
            [
                Column("id", np.arange(EVENT_ROWS)),
                Column("category", [f"cat_{i // run:02d}" for i in range(EVENT_ROWS)]),
                Column("cat_id", np.arange(EVENT_ROWS) // run),
                Column("ts", np.arange(EVENT_ROWS)),
                Column("value", rng.uniform(0.0, 1.0, EVENT_ROWS)),
            ],
        )
        dims = Table(
            "dims",
            [
                Column("did", np.arange(CATEGORIES)),
                Column("weight", rng.uniform(0.0, 1.0, CATEGORIES)),
            ],
        )
        return Catalog([events, dims])

    indexed = build()
    manager = ensure_access_manager(indexed)
    manager.create_index("events", "category", kind="bitmap")
    manager.create_index("events", "ts", kind="sorted")
    return {"indexed": indexed, "plain": build()}


def _warm_result(service: QueryService, sql: str):
    service.execute(sql)  # cold: fills the plan cache
    result = service.execute(sql)
    assert result.cache_hit
    return result


def _pages(result) -> int:
    return result.iostats.pages_read + result.iostats.pages_hit


def test_pruned_scans_read_2x_fewer_pages(catalogs):
    """Warm pruned executions: >= 2x fewer pages, byte-identical rows."""
    payload = {}
    with QueryService(Session(catalogs["indexed"], access_paths=True)) as pruned_service:
        with QueryService(Session(catalogs["plain"], access_paths=False)) as full_service:
            for name, sql in QUERIES.items():
                pruned = _warm_result(pruned_service, sql)
                full = _warm_result(full_service, sql)
                assert pruned.rows == full.rows, name
                assert pruned.metrics.pages_pruned > 0, name
                assert 2 * _pages(pruned) <= _pages(full), (
                    f"{name}: pruned execution touched {_pages(pruned)} pages vs "
                    f"{_pages(full)} unpruned (expected >= 2x reduction)"
                )
                payload[name] = {
                    "rows": pruned.row_count,
                    "pages_pruned_run": _pages(pruned),
                    "pages_full_scan": _pages(full),
                    "pages_pruned_counter": pruned.metrics.pages_pruned,
                    "page_reduction": round(_pages(full) / max(_pages(pruned), 1), 2),
                }
    record_bench_result("bench_index_pruning", payload)


def test_index_pruning_warm_speedup(catalogs):
    """Wall-clock: warm pruned executions beat warm full scans."""
    def warm_series(service: QueryService) -> float:
        for sql in QUERIES.values():
            service.execute(sql)  # fill plan cache
        timer = Stopwatch()
        for _ in range(TIMED_RUNS):
            for sql in QUERIES.values():
                result = service.execute(sql)
                assert result.cache_hit
        return timer.elapsed() / TIMED_RUNS

    with QueryService(Session(catalogs["indexed"], access_paths=True)) as pruned_service:
        pruned_seconds = warm_series(pruned_service)
    with QueryService(Session(catalogs["plain"], access_paths=False)) as full_service:
        full_seconds = warm_series(full_service)

    speedup = full_seconds / max(pruned_seconds, 1e-9)
    record_bench_result(
        "bench_index_pruning",
        {
            "timing": {
                "full_warm_seconds": round(full_seconds, 5),
                "pruned_warm_seconds": round(pruned_seconds, 5),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup > 1.0, (
        f"pruned warm {pruned_seconds:.4f}s vs full {full_seconds:.4f}s "
        f"({speedup:.2f}x, expected > 1x)"
    )

"""Shared fixtures for the figure benchmarks.

Benchmark scale is deliberately small (the engine is pure Python): the IMDB
dataset uses a small scale factor and the synthetic sweeps use reduced table
sizes.  The *shape* of each figure — who wins and how the gap evolves with
the swept parameter — is what these benchmarks reproduce; EXPERIMENTS.md
records measured numbers at larger scales.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.job import job_query_groups
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

#: Scale factor of the IMDB-like dataset used by the Figure 3 benchmarks.
IMDB_SCALE = 0.03

#: Synthetic table size used by the Figure 4 benchmarks.
SYNTHETIC_TABLE_SIZE = 2_000


@pytest.fixture(scope="session")
def imdb_session() -> Session:
    """Session over the benchmark IMDB-like dataset."""
    catalog = generate_imdb_catalog(scale=IMDB_SCALE, seed=7)
    return Session(catalog, stats_sample_size=5_000)


@pytest.fixture(scope="session")
def job_queries():
    """The 33 combined JOB-style queries."""
    return job_query_groups()


@pytest.fixture(scope="session")
def synthetic_session() -> Session:
    """Session over the benchmark synthetic dataset."""
    catalog = generate_synthetic_catalog(
        SyntheticConfig(table_size=SYNTHETIC_TABLE_SIZE, seed=42)
    )
    return Session(catalog, stats_sample_size=SYNTHETIC_TABLE_SIZE)

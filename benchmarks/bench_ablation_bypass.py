"""Ablation: tagged execution vs. the bypass technique vs. BDisj (Section 6).

The bypass technique is the closest prior art to tagged execution.  It also
achieves disjunctive pushdown and avoids a final union, but it routes tuples
into physically separate streams (copying index rows at every filter) and
each join builds one hash table per stream pair instead of the single shared
table tagged execution uses.  This benchmark measures that gap on the
synthetic DNF/CNF queries and on a JOB-style query group.
"""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import make_cnf_query, make_dnf_query

PLANNERS = ("tcombined", "bypass", "bdisj")


@pytest.mark.parametrize("planner", PLANNERS)
def test_ablation_bypass_synthetic_dnf(benchmark, synthetic_session, planner):
    query = make_dnf_query(num_root_clauses=3, selectivity=0.3)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0


@pytest.mark.parametrize("planner", ("tcombined", "bypass", "bpushconj"))
def test_ablation_bypass_synthetic_cnf(benchmark, synthetic_session, planner):
    query = make_cnf_query(num_root_clauses=2, selectivity=0.3)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0


@pytest.mark.parametrize("planner", PLANNERS)
def test_ablation_bypass_job_group(benchmark, imdb_session, job_queries, planner):
    query = job_queries[0]
    result = benchmark(imdb_session.execute, query, planner=planner)
    assert result.row_count >= 0

"""Ablation: the worst-case tag blow-up of Section 3.2 ("Limitations").

For a predicate of the form (X1 v Y1) ^ ... ^ (Xn v Yn), a plan that applies
all X filters before all Y filters needs 2^n tags even after generalization.
This benchmark measures plan-time tag-map construction for that adversarial
ordering as n grows, and contrasts it with the interleaved ordering
(X1, Y1, X2, Y2, ...) that keeps the tag space linear.
"""

from __future__ import annotations

import pytest

from repro.core.predtree import PredicateTree
from repro.core.tagmap import TagMapBuilder
from repro.expr.builders import and_, col, lit, or_
from repro.plan.logical import FilterNode, ProjectNode, TableScanNode


def _predicates(n: int):
    xs = [col("t", f"x{i}") > lit(0) for i in range(n)]
    ys = [col("t", f"y{i}") > lit(0) for i in range(n)]
    return xs, ys


def _plan(order):
    node = TableScanNode("t", "tbl")
    for predicate in order:
        node = FilterNode(predicate, node)
    return ProjectNode(node)


@pytest.mark.parametrize("n", (3, 5, 7))
@pytest.mark.parametrize("ordering", ("adversarial", "interleaved"))
def test_tag_blowup(benchmark, n, ordering):
    xs, ys = _predicates(n)
    tree = PredicateTree(and_(*[or_(x, y) for x, y in zip(xs, ys)]))
    order = xs + ys if ordering == "adversarial" else [p for pair in zip(xs, ys) for p in pair]
    plan = _plan(order)

    def build():
        return TagMapBuilder(tree, three_valued=False).build(plan)

    annotations = benchmark(build)
    if ordering == "interleaved":
        assert annotations.num_tags() <= 4 * n + 2

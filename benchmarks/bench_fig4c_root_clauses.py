"""Figure 4c: synthetic DNF query, number-of-root-clauses sweep (BDisj vs. TCombined).

Each added root clause costs BDisj another full subquery (more duplicate
materialization, another join, a bigger union); tagged execution only adds
two more filters.  This is also the experiment where TCombined's planning
time becomes visible, so the harness reports planning and execution times
separately (see ``repro.bench.synthetic_bench.run_root_clause_sweep``).
"""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import make_dnf_query

ROOT_CLAUSES = (2, 4, 6)


@pytest.mark.parametrize("clauses", ROOT_CLAUSES)
@pytest.mark.parametrize("planner", ("bdisj", "tcombined"))
def test_fig4c_root_clauses(benchmark, synthetic_session, clauses, planner):
    query = make_dnf_query(num_root_clauses=clauses, selectivity=0.2)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0


@pytest.mark.parametrize("clauses", ROOT_CLAUSES)
def test_fig4c_planning_time_only(benchmark, synthetic_session, clauses):
    """Isolate TCombined's planning time (the dashed line of Figure 4c)."""
    query = make_dnf_query(num_root_clauses=clauses, selectivity=0.2)

    def plan_only():
        return synthetic_session.explain(query, planner="tcombined")

    benchmark(plan_only)

"""Output shaping overhead: GROUP BY / ORDER BY / DISTINCT on top of each model.

The shaping operators run after the execution model has produced the joined
tuple set, so their cost is identical for every planner; this benchmark
confirms that the end-to-end gap between planners is unchanged when a query
carries aggregation and ordering clauses (i.e. shaping does not mask the
benefit of tagged execution).
"""

from __future__ import annotations

import pytest

from repro.plan.postselect import AggregateFunction, AggregateSpec, OrderItem
from repro.plan.query import Query
from repro.workloads.synthetic import make_dnf_query


def _shaped_query() -> Query:
    base = make_dnf_query(num_root_clauses=2, selectivity=0.4)
    from repro.expr.builders import col

    return Query(
        tables=base.tables,
        join_conditions=base.join_conditions,
        predicate=base.predicate,
        aggregates=[
            AggregateSpec(AggregateFunction.COUNT),
            AggregateSpec(AggregateFunction.AVG, col("T1", "A1")),
        ],
        group_by=[col("T0", "id")],
        order_by=[OrderItem("COUNT(*)", descending=True)],
        limit=100,
        name="synthetic_dnf_grouped",
    )


@pytest.mark.parametrize("planner", ("tcombined", "bdisj", "bypass"))
def test_output_shaping_grouped_topk(benchmark, synthetic_session, planner):
    query = _shaped_query()
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0
    assert result.column_names == ["T0.id", "COUNT(*)", "AVG(T1.A1)"]


@pytest.mark.parametrize("planner", ("tcombined", "bpushconj"))
def test_output_shaping_distinct(benchmark, synthetic_session, planner):
    base = make_dnf_query(num_root_clauses=2, selectivity=0.4)
    from repro.expr.builders import col

    query = Query(
        tables=base.tables,
        join_conditions=base.join_conditions,
        predicate=base.predicate,
        select=[col("T0", "id")],
        distinct=True,
        name="synthetic_dnf_distinct",
    )
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0

"""Ablation: generalized tags (Section 3.2) vs. the naive strategy (Section 3.1).

The naive strategy still achieves disjunctive pushdown but keeps every
true/false split and the full cartesian product of tags at joins; tag
generalization collapses them.  The benchmark compares TPushdown with and
without generalization on the paper's Query 1 analogue (JOB group 1) and on a
synthetic DNF query.
"""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import make_dnf_query


@pytest.mark.parametrize("naive_tags", (False, True), ids=("generalized", "naive"))
def test_ablation_job_group1(benchmark, imdb_session, job_queries, naive_tags):
    query = job_queries[0]
    result = benchmark(
        imdb_session.execute, query, planner="tpushdown", naive_tags=naive_tags
    )
    assert result.row_count >= 0


@pytest.mark.parametrize("naive_tags", (False, True), ids=("generalized", "naive"))
def test_ablation_synthetic_dnf(benchmark, synthetic_session, naive_tags):
    query = make_dnf_query(num_root_clauses=3, selectivity=0.2)
    result = benchmark(
        synthetic_session.execute, query, planner="tpushdown", naive_tags=naive_tags
    )
    assert result.row_count > 0

"""Observability overhead: metrics publication and tracing must stay cheap.

The PR-9 observability layer promises that results are byte-identical and
the hot path is essentially untouched when tracing is off.  This benchmark
prices both halves by running the same query stream through a
:class:`~repro.service.QueryService` three ways:

* **bare** — ``instruments.set_enabled(False)``, tracing off: every publish
  helper reduces to one boolean test, the pre-PR-9 hot path;
* **obs-on** — metrics publication enabled (the default), tracing off: the
  production configuration every query pays;
* **trace-on** — metrics plus a full span tree and per-operator timing.

Assertions:

* **equivalence** (always; part of ``make bench-smoke``) — all three modes
  return byte-identical rows and identical IO accounting;
* **overhead guards** (timing; deselected by ``make bench-smoke``, run by
  ``make bench-obs``) — median per-query latency stays within **1.05x** of
  bare with metrics on, and within **1.25x** with tracing on.

Results are persisted to ``BENCH_PR10.json`` (see :mod:`repro.bench.persist`).

Not tied to a paper figure — this benchmarks the repo's observability
subsystem, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import QueryService, Session
from repro.bench.persist import record_bench_result
from repro.obs import instruments
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

#: Rows per synthetic table.
TABLE_SIZE = 4_000

#: Measured repetitions of the query list per mode (after WARMUP discarded).
REPEAT = 40
WARMUP = 5

QUERIES = (
    "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid "
    "WHERE T1.A1 < 0.2 OR (T1.A2 > 0.8 AND T0.A1 < 0.5)",
    "SELECT * FROM T0 JOIN T2 ON T0.id = T2.fid "
    "WHERE T2.A3 < 0.3 OR T0.A2 > 0.9",
)


#: (mode name, publish metrics?, trace?) — measured interleaved per
#: repetition so clock drift and cache warm-up hit every mode equally.
MODES = (
    ("bare", False, False),
    ("obs", True, False),
    ("trace", True, True),
)


@pytest.fixture(scope="module")
def measured():
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=TABLE_SIZE, seed=3))
    services = {
        name: QueryService(Session(catalog, parallelism=2))
        for name, _, _ in MODES
    }
    latencies = {name: [] for name, _, _ in MODES}
    results = {}
    try:
        for repetition in range(WARMUP + REPEAT):
            for name, publish, trace in MODES:
                instruments.set_enabled(publish)
                for sql in QUERIES:
                    start = time.perf_counter()
                    services[name].execute(sql, trace=trace)
                    if repetition >= WARMUP:
                        latencies[name].append(time.perf_counter() - start)
        for name, publish, trace in MODES:
            instruments.set_enabled(publish)
            results[name] = [services[name].execute(sql, trace=trace) for sql in QUERIES]
    finally:
        instruments.set_enabled(True)
        for service in services.values():
            service.close()

    bare_s, obs_s, trace_s = (
        statistics.median(latencies[name]) for name, _, _ in MODES
    )

    payload = {
        "queries": len(QUERIES),
        "repetitions": REPEAT,
        "bare_ms": bare_s * 1e3,
        "obs_on_ms": obs_s * 1e3,
        "trace_on_ms": trace_s * 1e3,
        "obs_overhead_x": obs_s / bare_s,
        "trace_overhead_x": trace_s / bare_s,
    }
    record_bench_result("obs_overhead", payload)
    return {"payload": payload, "results": results}


def test_observability_modes_return_identical_results(measured):
    bare, obs, trace = (measured["results"][mode] for mode in ("bare", "obs", "trace"))
    for bare_r, obs_r, trace_r in zip(bare, obs, trace):
        assert bare_r.rows == obs_r.rows == trace_r.rows
        assert (
            bare_r.iostats.as_dict()
            == obs_r.iostats.as_dict()
            == trace_r.iostats.as_dict()
        )
        assert (
            bare_r.metrics.as_dict()
            == obs_r.metrics.as_dict()
            == trace_r.metrics.as_dict()
        )
        assert bare_r.trace is None and obs_r.trace is None
        assert trace_r.trace is not None


def test_metrics_publication_overhead_guard(measured):
    payload = measured["payload"]
    assert payload["obs_overhead_x"] <= 1.05, (
        f"metrics publication overhead {payload['obs_overhead_x']:.3f}x exceeds "
        f"1.05x (bare {payload['bare_ms']:.3f}ms, obs-on {payload['obs_on_ms']:.3f}ms)"
    )


def test_tracing_overhead_guard(measured):
    payload = measured["payload"]
    assert payload["trace_overhead_x"] <= 1.25, (
        f"tracing overhead {payload['trace_overhead_x']:.3f}x exceeds 1.25x "
        f"(bare {payload['bare_ms']:.3f}ms, trace-on {payload['trace_on_ms']:.3f}ms)"
    )

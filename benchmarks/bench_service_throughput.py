"""Service-layer throughput: warm (plan-cache hit) vs cold repeated queries.

The scenario is the one the service layer exists for: a fixed set of query
templates arriving over and over (the burst/repeat traffic pattern).  Cold
execution pays parse + statistics + planning on every call; warm execution
hits the plan cache and pays only execution.  The acceptance bar for the
layer is **warm throughput ≥ 2× cold throughput** on this workload, and
batch results that are identical to serial ``Session.execute``.

Not tied to a paper figure — this benchmarks the repo's serving
infrastructure, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import pytest

from repro.engine.metrics import Stopwatch
from repro.engine.session import Session
from repro.service import QueryService
from repro.workloads.synthetic import make_dnf_query

#: Distinct query templates cycled through by the throughput loops.
#: Chosen so planning is a clear majority of cold cost (low selectivities
#: keep outputs small; three root clauses make the planner search work),
#: which is exactly the regime plan caching targets.
TEMPLATE_PARAMS = ((2, 0.1), (3, 0.1), (3, 0.2))

#: Passes over the template list when measuring throughput.
PASSES = 2


def _queries():
    return [
        make_dnf_query(num_root_clauses=clauses, selectivity=selectivity)
        for clauses, selectivity in TEMPLATE_PARAMS
    ]


@pytest.fixture()
def service(synthetic_session) -> QueryService:
    """A query service over a private session sharing the benchmark catalog."""
    session = Session(
        synthetic_session.catalog,
        stats_sample_size=synthetic_session.stats_sample_size,
    )
    with QueryService(session, max_workers=4) as query_service:
        yield query_service


def test_warm_throughput_at_least_2x_cold(synthetic_session, service):
    """Plan-cache hits must at least double repeated-query throughput."""
    queries = _queries()

    cold_timer = Stopwatch()
    for _ in range(PASSES):
        for query in queries:
            synthetic_session.execute(query, planner="tcombined")
    cold_seconds = cold_timer.elapsed()

    service.warm(queries, planner="tcombined")
    warm_timer = Stopwatch()
    for _ in range(PASSES):
        for query in queries:
            result = service.execute(query, planner="tcombined")
            assert result.cache_hit
    warm_seconds = warm_timer.elapsed()

    executed = PASSES * len(queries)
    cold_qps = executed / cold_seconds
    warm_qps = executed / warm_seconds
    assert warm_qps >= 2 * cold_qps, (
        f"warm {warm_qps:.1f} q/s vs cold {cold_qps:.1f} q/s "
        f"(ratio {warm_qps / cold_qps:.2f}x, expected >= 2x)"
    )


def test_batch_results_identical_to_serial(synthetic_session, service):
    """Concurrent batch execution returns exactly what serial execution does."""
    queries = _queries() * 2
    report = service.execute_batch(queries, planner="tcombined")
    assert len(report.succeeded) == len(queries)
    for item, query in zip(report, queries):
        serial = synthetic_session.execute(query, planner="tcombined")
        assert item.result.column_names == serial.column_names
        assert item.result.rows == serial.rows


@pytest.mark.parametrize("mode", ("cold", "warm"))
def test_service_single_query(benchmark, synthetic_session, service, mode):
    """Wall-clock of one repeated query, cold (no caches) vs warm (cached)."""
    query = _queries()[0]
    if mode == "cold":
        benchmark(synthetic_session.execute, query, planner="tcombined")
    else:
        service.execute(query, planner="tcombined")
        result = benchmark(service.execute, query, planner="tcombined")
        assert result.cache_hit


def test_service_batch_throughput(benchmark, service):
    """Wall-clock of an 8-query warm batch across 4 worker threads."""
    queries = _queries() * 2
    service.warm(queries, planner="tcombined")
    report = benchmark(service.execute_batch, queries, planner="tcombined")
    assert len(report.succeeded) == len(queries)

"""Planner-quality ablation: greedy join ordering vs. exhaustive DP ordering.

The paper's planners all order joins greedily by estimated output
cardinality, and its Figure 3c analysis attributes some losses to cost-model
misses.  TExhaustive (an extension beyond the paper) enumerates every
connected join order under the full tagged cost model; comparing it against
TCombined and TPushdown measures how much the greedy heuristic leaves on the
table at these scales, both in plan cost and in wall-clock runtime.
"""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import make_cnf_query, make_dnf_query

PLANNERS = ("tpushdown", "tcombined", "texhaustive")


@pytest.mark.parametrize("planner", PLANNERS)
def test_planner_quality_synthetic_dnf(benchmark, synthetic_session, planner):
    query = make_dnf_query(num_root_clauses=2, selectivity=0.3)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0


@pytest.mark.parametrize("planner", PLANNERS)
def test_planner_quality_synthetic_cnf(benchmark, synthetic_session, planner):
    query = make_cnf_query(num_root_clauses=2, selectivity=0.3)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count > 0


@pytest.mark.parametrize("planner", PLANNERS)
def test_planner_quality_job_group(benchmark, imdb_session, job_queries, planner):
    query = job_queries[1]
    result = benchmark(imdb_session.execute, query, planner=planner)
    assert result.row_count >= 0


@pytest.mark.parametrize("mode", ("measured", "histogram"))
def test_stats_mode_planning_cost(benchmark, synthetic_session, mode):
    """Selectivity estimation mode ablation: measured samples vs. histograms."""
    from repro.engine.session import Session

    session = Session(
        synthetic_session.catalog,
        stats_sample_size=synthetic_session.stats_sample_size,
        selectivity_mode=mode,
    )
    query = make_dnf_query(num_root_clauses=3, selectivity=0.3)
    result = benchmark(session.execute, query, planner="tcombined")
    assert result.row_count > 0

"""Figure 4d: synthetic CNF query, outer conjunctive factor sweep.

An extra conjunct ``T0.A1 < f`` is added to the CNF query; while it is very
selective (small f) it filters everything early and both models look alike,
but as f approaches 1.0 the disjunctive part dominates again and the paper's
gap opens up to 10x.
"""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import make_cnf_query

OUTER_FACTORS = (0.2, 0.6, 1.0)


@pytest.mark.parametrize("factor", OUTER_FACTORS)
@pytest.mark.parametrize("planner", ("bpushconj", "tcombined"))
def test_fig4d_outer_factor(benchmark, synthetic_session, factor, planner):
    query = make_cnf_query(num_root_clauses=2, selectivity=0.2, outer_factor=factor)
    result = benchmark(synthetic_session.execute, query, planner=planner)
    assert result.row_count >= 0

"""Figure 4b: synthetic CNF query, table-size sweep (BPushConj vs. TCombined).

BPushConj cannot push any part of a cross-table CNF, so it pays the full
quadratic join blow-up; the paper's gap widens to 12x at 50k rows.  Table
sizes here are reduced for the pure-Python engine; the widening gap with size
is the property under test.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_cnf_query

TABLE_SIZES = (500, 1_000, 2_000)

_SESSIONS: dict[int, Session] = {}


def _session_for(table_size: int) -> Session:
    if table_size not in _SESSIONS:
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=table_size, seed=42))
        _SESSIONS[table_size] = Session(catalog, stats_sample_size=table_size)
    return _SESSIONS[table_size]


@pytest.mark.parametrize("table_size", TABLE_SIZES)
@pytest.mark.parametrize("planner", ("bpushconj", "tcombined"))
def test_fig4b_table_size(benchmark, table_size, planner):
    session = _session_for(table_size)
    query = make_cnf_query(num_root_clauses=2, selectivity=0.2)
    result = benchmark(session.execute, query, planner=planner)
    assert result.row_count > 0

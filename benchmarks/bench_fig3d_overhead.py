"""Figure 3d: the overhead of the tagged machinery (BPushConj vs. TPushConj).

TPushConj forces tagged execution to produce the same plans a traditional
conjunctive planner would, so the runtime ratio isolates the cost of carrying
tags, bitmaps and tag maps.  The paper measures roughly a 10% overhead
(speedup around 0.9x).
"""

from __future__ import annotations

import pytest

from repro.bench.job_bench import factor_query

GROUPS = (1, 8, 15, 30)


@pytest.mark.parametrize("group", GROUPS)
@pytest.mark.parametrize("planner", ("bpushconj", "tpushconj"))
def test_fig3d_overhead_group(benchmark, imdb_session, job_queries, group, planner):
    query = factor_query(job_queries[group - 1])
    result = benchmark(imdb_session.execute, query, planner=planner)
    assert result.row_count >= 0

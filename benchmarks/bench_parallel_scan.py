"""Morsel-driven parallel scan+filter+join throughput vs. serial execution.

The workload is the regime intra-query parallelism targets: one large fact
table (the partitioned scan) joined to a small dimension table, with a
disjunctive filter over both.  The build side is small, so duplicating it per
morsel is negligible and per-morsel work is dominated by the partitioned
scan+filter+probe — the NumPy kernels release the GIL, which is what lets
worker threads overlap.

Acceptance bar: **parallel (4 workers) throughput ≥ 1.5× serial** on this
workload, at identical partitioning (so the per-morsel work is the same and
only concurrency differs), with byte-identical results.  The timing
assertion needs real cores; on a single-CPU host it is skipped (a thread
pool cannot beat wall-clock physics) while every correctness assertion still
runs.

Not tied to a paper figure — this benchmarks the repo's parallel execution
driver, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine.metrics import Stopwatch
from repro.engine.session import Session
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table

#: Rows in the fact (partitioned) and dimension (replicated build) tables.
FACT_ROWS = 120_000
DIM_ROWS = 2_000

#: Worker threads and table partitions used by the parallel runs.
WORKERS = 4
PARTITIONS = 4

#: Required speedup of 4 workers over 1 worker at identical partitioning.
REQUIRED_SPEEDUP = 1.5

#: Timing passes (best-of to damp scheduler noise).
PASSES = 3

SQL = (
    "SELECT f.id FROM fact AS f JOIN dim AS d ON f.dim_id = d.id "
    "WHERE (f.a < 0.3 AND d.w < 0.6) OR (f.b > 0.7 AND d.w > 0.2)"
)


def _catalog() -> Catalog:
    rng = np.random.default_rng(7)
    fact = Table(
        "fact",
        [
            Column("id", np.arange(FACT_ROWS), ctype=ColumnType.INT),
            Column("dim_id", rng.integers(0, DIM_ROWS, size=FACT_ROWS), ctype=ColumnType.INT),
            Column("a", rng.random(FACT_ROWS), ctype=ColumnType.FLOAT),
            Column("b", rng.random(FACT_ROWS), ctype=ColumnType.FLOAT),
        ],
    )
    dim = Table(
        "dim",
        [
            Column("id", np.arange(DIM_ROWS), ctype=ColumnType.INT),
            Column("w", rng.random(DIM_ROWS), ctype=ColumnType.FLOAT),
        ],
    )
    return Catalog([fact, dim])


@pytest.fixture(scope="module")
def scan_session() -> Session:
    return Session(_catalog(), stats_sample_size=10_000)


@pytest.fixture(scope="module")
def prepared(scan_session):
    return scan_session.prepare(SQL, planner="tcombined")


def _best_seconds(scan_session, prepared, parallelism: int) -> float:
    best = float("inf")
    for _ in range(PASSES):
        timer = Stopwatch()
        scan_session.execute_prepared(
            prepared, parallelism=parallelism, partitions=PARTITIONS
        )
        best = min(best, timer.elapsed())
    return best


def test_parallel_results_byte_identical_to_serial(scan_session, prepared):
    """4-worker output must equal 1-worker output row for row."""
    serial = scan_session.execute_prepared(prepared, parallelism=1, partitions=PARTITIONS)
    parallel = scan_session.execute_prepared(prepared, parallelism=WORKERS, partitions=PARTITIONS)
    unpartitioned = scan_session.execute_prepared(prepared, parallelism=1, partitions=1)
    assert parallel.rows == serial.rows
    assert sorted(parallel.rows) == sorted(unpartitioned.rows)
    assert parallel.metrics.as_dict() == serial.metrics.as_dict()
    assert parallel.metrics.morsels_executed == PARTITIONS


def test_parallel_speedup_at_least_1_5x(scan_session, prepared):
    """4 workers must deliver ≥ 1.5× the serial scan+filter+join throughput."""
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"host has {cores} CPU core(s); thread parallelism cannot produce "
            "a wall-clock speedup without cores to run on"
        )
    serial_seconds = _best_seconds(scan_session, prepared, parallelism=1)
    parallel_seconds = _best_seconds(scan_session, prepared, parallelism=WORKERS)
    speedup = serial_seconds / parallel_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"parallel {parallel_seconds:.3f}s vs serial {serial_seconds:.3f}s "
        f"(speedup {speedup:.2f}x, expected >= {REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.parametrize("parallelism", (1, WORKERS))
def test_parallel_scan_wall_clock(benchmark, scan_session, prepared, parallelism):
    """Wall-clock of the scan-heavy query at 1 vs 4 workers (4 partitions)."""
    result = benchmark(
        scan_session.execute_prepared,
        prepared,
        parallelism=parallelism,
        partitions=PARTITIONS,
    )
    assert result.row_count > 0

"""Figure 3b: BPushConj vs. TCombined on factored JOB-style queries.

The common subexpressions of every query group are factored out first, giving
BPushConj an AND root to push.  The paper still sees up to 19x speedups on
groups whose non-common predicates are expensive and span tables (groups 6
and 20 style), and parity on groups dominated by highly selective common
predicates.
"""

from __future__ import annotations

import pytest

from repro.bench.job_bench import factor_query

GROUPS = (1, 6, 8, 15, 20, 30)


@pytest.mark.parametrize("group", GROUPS)
@pytest.mark.parametrize("planner", ("bpushconj", "tcombined"))
def test_fig3b_factored_group(benchmark, imdb_session, job_queries, group, planner):
    query = factor_query(job_queries[group - 1])
    result = benchmark(imdb_session.execute, query, planner=planner)
    assert result.row_count >= 0

"""Feedback-driven re-planning: the re-planned warm query beats the cold plan.

The workload is built to defeat a-priori estimation: every WHERE clause is a
cross-table disjunction, so each gets the same DEFAULT_SELECTIVITY-based
guess, while the data makes three clauses pass (almost) always and one pass
(almost) never.  The cold plan therefore orders the post-join filters so the
useless clauses run first over the full join output; the feedback loop
observes the true per-clause selectivities after one execution, retires the
cache entry, and the re-planned query runs the selective clause first.

Assertions:

* **work** (always) — the re-planned plan evaluates at least 1.5x fewer
  predicate rows than the misestimated plan, with byte-identical results;
* **speedup** (timing; deselected by ``make bench-smoke``) — warm executions
  of the re-planned query are faster than warm executions of the
  misestimated cold plan.

Results are persisted to ``BENCH_PR3.json`` (see
:mod:`repro.bench.persist`), so the perf trajectory is on the record.

Not tied to a paper figure — this benchmarks the repo's serving
infrastructure, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, QueryService, Session, Table
from repro.bench.persist import record_bench_result
from repro.engine.metrics import Stopwatch

#: Rows per table; the join output has the same order of magnitude.
TABLE_ROWS = 40_000

#: Warm executions averaged by the timing comparison.
TIMED_RUNS = 5

PLANNERS = ("bpushconj", "tpushconj")

#: Three pass-through clauses plus one selective clause, all estimated at the
#: same default-based selectivity.  Clause keys sort the selective clause
#: (column ``z``) last, so the cold plan runs the useless filters first.
SKEWED_SQL = (
    "SELECT a.id, b.bid FROM A AS a JOIN B AS b ON a.id = b.fid "
    "WHERE (a.c1 < b.d1 OR a.z < b.d1) "
    "  AND (a.c2 < b.d2 OR a.z < b.d2) "
    "  AND (a.c3 < b.d3 OR a.z < b.d3) "
    "  AND (a.z < b.e OR a.z < b.f) "
    "ORDER BY a.id, b.bid"
)


@pytest.fixture(scope="module")
def skewed_catalog() -> Catalog:
    rng = np.random.default_rng(23)
    rows = TABLE_ROWS
    a = Table.from_dict(
        "A",
        {
            "id": np.arange(rows),
            "c1": rng.uniform(0.0, 0.02, rows),
            "c2": rng.uniform(0.0, 0.02, rows),
            "c3": rng.uniform(0.0, 0.02, rows),
            "z": rng.uniform(0.98, 1.0, rows),
        },
    )
    b = Table.from_dict(
        "B",
        {
            "bid": np.arange(rows),
            "fid": rng.integers(0, rows, rows),
            "d1": rng.uniform(0.5, 1.0, rows),
            "d2": rng.uniform(0.5, 1.0, rows),
            "d3": rng.uniform(0.5, 1.0, rows),
            "e": rng.uniform(0.0, 1.0, rows),
            "f": rng.uniform(0.0, 1.0, rows),
        },
    )
    return Catalog([a, b])


def _warm_series(service: QueryService, planner: str, runs: int):
    """Average warm execution seconds + last result (all cache hits)."""
    timer = Stopwatch()
    result = None
    for _ in range(runs):
        result = service.execute(SKEWED_SQL, planner=planner)
        assert result.cache_hit
    return timer.elapsed() / runs, result


@pytest.mark.parametrize("planner", PLANNERS)
def test_replanned_query_does_less_work(skewed_catalog, planner):
    """Feedback re-planning must cut predicate work without changing rows."""
    with QueryService(Session(skewed_catalog), feedback=False) as cold_service:
        cold = cold_service.execute(SKEWED_SQL, planner=planner)
        misestimated = cold_service.execute(SKEWED_SQL, planner=planner)
        assert misestimated.cache_hit

    with QueryService(Session(skewed_catalog), feedback=True) as service:
        observed = service.execute(SKEWED_SQL, planner=planner)
        replanned = service.execute(SKEWED_SQL, planner=planner)
        assert service.feedback_store.stats.replans == 1
        converged = service.execute(SKEWED_SQL, planner=planner)
        assert converged.cache_hit

    assert replanned.plan_description != misestimated.plan_description
    assert replanned.rows == misestimated.rows == cold.rows == observed.rows

    work_before = misestimated.metrics.predicate_rows_evaluated
    work_after = replanned.metrics.predicate_rows_evaluated
    assert work_after * 1.5 <= work_before, (
        f"{planner}: re-planned plan evaluates {work_after} predicate rows "
        f"vs {work_before} misestimated (expected >= 1.5x reduction)"
    )
    record_bench_result(
        "bench_feedback_replan",
        {
            planner: {
                "rows": replanned.row_count,
                "predicate_rows_misestimated": work_before,
                "predicate_rows_replanned": work_after,
                "work_reduction": round(work_before / max(work_after, 1), 2),
            }
        },
    )


@pytest.mark.parametrize("planner", PLANNERS)
def test_replanned_warm_speedup_over_misestimated_cold_plan(skewed_catalog, planner):
    """Wall-clock: the re-planned warm query beats the misestimated plan."""
    with QueryService(Session(skewed_catalog), feedback=False) as cold_service:
        cold_service.execute(SKEWED_SQL, planner=planner)
        misestimated_seconds, misestimated = _warm_series(
            cold_service, planner, TIMED_RUNS
        )

    with QueryService(Session(skewed_catalog), feedback=True) as service:
        service.execute(SKEWED_SQL, planner=planner)  # observe
        service.execute(SKEWED_SQL, planner=planner)  # re-plan
        replanned_seconds, replanned = _warm_series(service, planner, TIMED_RUNS)

    assert replanned.rows == misestimated.rows
    speedup = misestimated_seconds / max(replanned_seconds, 1e-9)
    record_bench_result(
        "bench_feedback_replan",
        {
            f"{planner}_timing": {
                "misestimated_warm_seconds": round(misestimated_seconds, 5),
                "replanned_warm_seconds": round(replanned_seconds, 5),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup > 1.0, (
        f"{planner}: re-planned warm {replanned_seconds:.4f}s vs misestimated "
        f"{misestimated_seconds:.4f}s ({speedup:.2f}x, expected > 1x)"
    )

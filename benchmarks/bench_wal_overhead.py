"""WAL commit-latency overhead: durable logging must stay cheap.

Every durable commit now pays for a WAL append (JSON encode, frame, write,
fsync) before the PR-5 write path (segment files + manifest rename) runs.
This benchmark measures that price directly by committing the same stream of
mutation batches three ways against identical dataset copies:

* **baseline** — ``apply_ops_to_saved_catalog`` alone: the PR-5 commit path
  with no WAL at all;
* **wal-nosync** — WAL append (``sync=False``) + apply: the pure bookkeeping
  overhead of durability, with the fsync factored out;
* **wal-fsync** — the real production path (``DurabilityController`` with
  ``sync=True``), whose extra cost is dominated by the fsync itself and
  depends on the filesystem hosting the benchmark.

Assertions:

* **equivalence** (always; part of ``make bench-smoke``) — all three paths
  produce byte-identical logical table contents;
* **overhead guard** (timing; deselected by ``make bench-smoke``, run by
  ``make bench-wal``) — median wal-nosync commit latency stays within
  1.3x of the baseline commit latency.  The fsync-on overhead is recorded
  but not gated: it measures the disk, not the code.

Results are persisted to ``BENCH_PR6.json`` (see :mod:`repro.bench.persist`).

Not tied to a paper figure — this benchmarks the repo's durability subsystem,
not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import shutil
import statistics
import time

import numpy as np
import pytest

from repro import Catalog, Table
from repro.bench.persist import record_bench_result
from repro.mutation.diskops import apply_ops_to_saved_catalog
from repro.mutation.wal import DurabilityController
from repro.storage.disk import load_catalog, save_catalog

#: Rows in the base table.
BASE_ROWS = 20_000

#: Commits in the measured stream (the first WARMUP are discarded).
COMMITS = 30
WARMUP = 3

#: Rows appended per commit.
APPEND_ROWS = 25


def _base_table() -> Table:
    rng = np.random.default_rng(11)
    return Table.from_dict(
        "t",
        {
            "id": list(range(BASE_ROWS)),
            "v": rng.uniform(0.0, 1.0, BASE_ROWS).tolist(),
            "s": [f"n{i % 40}" for i in range(BASE_ROWS)],
        },
    )


def _commit_stream() -> list[list[dict]]:
    """The op batches every variant commits, precomputed and identical."""
    batches = []
    for commit in range(COMMITS):
        rows = [
            {
                "id": BASE_ROWS + commit * APPEND_ROWS + i,
                "v": float(i) / APPEND_ROWS,
                "s": f"n{i % 40}",
            }
            for i in range(APPEND_ROWS)
        ]
        ops = [{"table": "t", "op": "append", "rows": rows}]
        if commit % 5 == 4:
            positions = list(range(commit * 3, commit * 3 + 3))
            ops.append({"table": "t", "op": "delete", "positions": positions})
        batches.append(ops)
    return batches


def _live_rows(root):
    table = load_catalog(root).get("t")
    mask = table.delete_mask
    positions = np.arange(table.num_rows) if mask is None else np.flatnonzero(~mask)
    return sorted(tuple(sorted(row.items())) for row in table.rows(positions))


@pytest.fixture(scope="module")
def measured(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("wal_overhead")
    pristine = scratch / "pristine"
    save_catalog(Catalog([_base_table()]), pristine)
    stream = _commit_stream()

    def run(variant, commit_one):
        root = scratch / variant
        shutil.copytree(pristine, root)
        latencies = []
        for ops in stream:
            start = time.perf_counter()
            commit_one(root, ops)
            latencies.append(time.perf_counter() - start)
        return root, latencies[WARMUP:]

    baseline_root, baseline = run(
        "baseline", lambda root, ops: apply_ops_to_saved_catalog(root, ops)
    )

    controllers = {}

    def durable(sync):
        def commit_one(root, ops):
            controller = controllers.setdefault(root, DurabilityController(root, sync=sync))
            controller.commit_ops(ops)

        return commit_one

    nosync_root, nosync = run("nosync", durable(sync=False))
    fsync_root, fsync = run("fsync", durable(sync=True))

    payload = {
        "commits": COMMITS - WARMUP,
        "append_rows": APPEND_ROWS,
        "baseline_ms": statistics.median(baseline) * 1e3,
        "wal_nosync_ms": statistics.median(nosync) * 1e3,
        "wal_fsync_ms": statistics.median(fsync) * 1e3,
    }
    payload["nosync_overhead_x"] = payload["wal_nosync_ms"] / payload["baseline_ms"]
    payload["fsync_overhead_x"] = payload["wal_fsync_ms"] / payload["baseline_ms"]
    record_bench_result("wal_overhead", payload)
    return {
        "roots": {"baseline": baseline_root, "nosync": nosync_root, "fsync": fsync_root},
        "payload": payload,
    }


def test_all_paths_commit_identical_content(measured):
    roots = measured["roots"]
    baseline = _live_rows(roots["baseline"])
    assert len(baseline) > BASE_ROWS
    assert _live_rows(roots["nosync"]) == baseline
    assert _live_rows(roots["fsync"]) == baseline


def test_wal_commit_latency_overhead_guard(measured):
    payload = measured["payload"]
    assert payload["nosync_overhead_x"] <= 1.3, (
        f"WAL bookkeeping overhead {payload['nosync_overhead_x']:.2f}x exceeds 1.3x "
        f"(baseline {payload['baseline_ms']:.2f}ms, "
        f"wal-nosync {payload['wal_nosync_ms']:.2f}ms)"
    )

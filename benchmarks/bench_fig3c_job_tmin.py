"""Figure 3c: BPushConj vs. TMin (the fastest tagged planner per query).

TMin executes every tagged planner and keeps the best run, bounding what
TCombined could achieve with a perfect cost model; the paper's minimum
speedup rises from 0.6x to 0.8x and several groups improve further.
"""

from __future__ import annotations

import pytest

from repro.bench.job_bench import factor_query

GROUPS = (1, 8, 20)


@pytest.mark.parametrize("group", GROUPS)
@pytest.mark.parametrize("planner", ("bpushconj", "tmin"))
def test_fig3c_tmin_group(benchmark, imdb_session, job_queries, group, planner):
    query = factor_query(job_queries[group - 1])
    result = benchmark(imdb_session.execute, query, planner=planner)
    assert result.row_count >= 0

"""Ingest-while-serve: incremental maintenance must beat full rebuilds.

The workload is a 120k-row, 6-column events table with a bitmap index on
``category`` and a sorted index on ``ts``, warmed so statistics, zone maps
and both indexes are materialized — the steady state of a serving
deployment.  A stream of mutation batches (appends plus targeted deletes)
is then committed twice over identical starting states:

* **incremental** — the real write path: ``catalog.begin_mutation()`` /
  ``commit()``, which extends zone maps, indexes and statistics for the new
  rows (``AccessPathManager.extend`` / ``TableStats.apply_delta``);
* **rebuild** — the same logical commits, followed by what a system without
  incremental maintenance pays: full statistics recollection plus zone-map
  and index rebuilds over the whole table at its new size.

Assertions:

* **maintenance ratio** (always; part of ``make bench-smoke``) — the
  incremental commits finish at least 3x faster than the commits-with-full-
  rebuild at the same final state, and both end states answer queries
  byte-identically;
* **warm latency speedup guard** (timing; deselected by ``make bench-smoke``,
  run by ``make bench-ingest``) — warm query latency on the mutated table
  stays within 1.5x of an unmutated table built directly at the final
  state.

Results are persisted to ``BENCH_PR5.json`` (see :mod:`repro.bench.persist`).

Not tied to a paper figure — this benchmarks the repo's mutation subsystem,
not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, Session, Table
from repro.access.manager import ensure_access_manager
from repro.bench.persist import record_bench_result
from repro.engine.metrics import Stopwatch
from repro.stats.table_stats import collect_table_stats

#: Rows in the base events table.
BASE_ROWS = 120_000

#: Mutation batches committed by the stream.
BATCHES = 8

#: Rows appended per batch.
APPEND_ROWS = 500

#: Distinct categories (bitmap-index friendly).
CATEGORIES = 40

#: Warm executions averaged by the latency comparison.
TIMED_RUNS = 5

QUERY = (
    "SELECT e.id, e.value FROM events AS e "
    "WHERE e.category = 'cat_07' OR (e.ts > 115000 AND e.value < 0.25)"
)


def _events_table(rows: int, seed: int, start_id: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        "events",
        [
            Column("id", np.arange(start_id, start_id + rows)),
            Column("category", [f"cat_{int(c):02d}" for c in rng.integers(0, CATEGORIES, rows)]),
            Column("ts", np.arange(start_id, start_id + rows)),
            Column("value", rng.uniform(0.0, 1.0, rows)),
            Column("score", rng.uniform(0.0, 100.0, rows)),
            Column("flag", rng.integers(0, 2, rows).astype(bool)),
        ],
    )


def _batch_rows(batch: int) -> list[dict]:
    rng = np.random.default_rng(1000 + batch)
    start = BASE_ROWS + batch * APPEND_ROWS
    return [
        {
            "id": int(start + i),
            "category": f"cat_{int(rng.integers(0, CATEGORIES)):02d}",
            "ts": int(start + i),
            "value": float(rng.uniform(0.0, 1.0)),
            "score": float(rng.uniform(0.0, 100.0)),
            "flag": bool(rng.integers(0, 2)),
        }
        for i in range(APPEND_ROWS)
    ]


def _deleted_positions(batch: int) -> list[int]:
    # Delete a deterministic slice of old rows each batch.
    start = batch * 97
    return [start + i * 31 for i in range(40)]


def _warmed_catalog() -> Catalog:
    catalog = Catalog([_events_table(BASE_ROWS, seed=7)])
    manager = ensure_access_manager(catalog)
    manager.create_index("events", "category", kind="bitmap")
    manager.create_index("events", "ts", kind="sorted")
    for column in ("category", "ts", "value"):
        manager.zone_map("events", column)
    collect_table_stats(catalog.get("events"))
    return catalog


def _commit_stream(catalog: Catalog, rebuild: bool) -> float:
    """Commit the mutation stream; returns maintenance wall-clock seconds.

    With ``rebuild=True`` the incremental maintenance performed by commit is
    followed by what a rebuild-only system would pay instead: dropping the
    extended structures and rebuilding statistics, zone maps and indexes
    from the full table.  Only the maintenance work is timed — staging and
    table reconstruction are identical in both arms.
    """
    from repro.access.indexes import build_index
    from repro.access.zonemap import build_zone_map

    total = 0.0
    for index in range(BATCHES):
        batch = catalog.begin_mutation()
        batch.insert("events", _batch_rows(index))
        batch.delete("events", positions=_deleted_positions(index))
        timer = Stopwatch()
        batch.commit()
        if rebuild:
            table = catalog.get("events")
            collect_table_stats(table)
            for column in ("category", "ts", "value"):
                build_zone_map(table.column(column))
            build_index(table.column("category"), kind="bitmap")
            build_index(table.column("ts"), kind="sorted")
        total += timer.elapsed()
    return total


@pytest.fixture(scope="module")
def committed():
    """Both maintenance arms over identical starting states, plus timings."""
    incremental_catalog = _warmed_catalog()
    incremental_seconds = _commit_stream(incremental_catalog, rebuild=False)
    rebuild_catalog = _warmed_catalog()
    rebuild_seconds = _commit_stream(rebuild_catalog, rebuild=True)
    return incremental_catalog, rebuild_catalog, incremental_seconds, rebuild_seconds


def test_incremental_commits_3x_faster_than_rebuild(committed):
    incremental_catalog, rebuild_catalog, incremental_seconds, rebuild_seconds = committed

    # Equal final state: both catalogs answer the workload identically.
    rows_incremental = Session(incremental_catalog).execute(QUERY).sorted_rows()
    rows_rebuild = Session(rebuild_catalog).execute(QUERY).sorted_rows()
    assert rows_incremental == rows_rebuild

    ratio = rebuild_seconds / max(incremental_seconds, 1e-9)
    record_bench_result(
        "bench_ingest",
        {
            "batches": BATCHES,
            "append_rows_per_batch": APPEND_ROWS,
            "incremental_seconds": round(incremental_seconds, 4),
            "rebuild_seconds": round(rebuild_seconds, 4),
            "maintenance_ratio": round(ratio, 2),
        },
    )
    assert ratio >= 3.0, (
        f"incremental maintenance must be >= 3x faster than full rebuilds "
        f"({ratio:.2f}x: incremental {incremental_seconds:.3f}s vs "
        f"rebuild {rebuild_seconds:.3f}s)"
    )


def test_ingest_warm_latency_speedup_guard(committed):
    """Warm latency on the mutated table stays within 1.5x of a fresh one."""
    incremental_catalog, _rebuild_catalog, _inc, _reb = committed
    mutated = incremental_catalog.get("events")

    # A table built directly at the final state: same live rows, no holes.
    live = (
        ~mutated.delete_mask
        if mutated.delete_mask is not None
        else np.ones(mutated.num_rows, dtype=np.bool_)
    )
    fresh = Table(
        "events",
        [
            Column(
                column.name,
                column.data[live],
                ctype=column.ctype,
                null_mask=column.null_mask[live],
                page_size=column.page_size,
            )
            for column in mutated.columns()
        ],
    )
    fresh_catalog = Catalog([fresh])
    manager = ensure_access_manager(fresh_catalog)
    manager.create_index("events", "category", kind="bitmap")
    manager.create_index("events", "ts", kind="sorted")

    def warm_seconds(catalog: Catalog) -> float:
        session = Session(catalog)
        prepared = session.prepare(QUERY)
        session.execute_prepared(prepared)  # warm caches and candidates
        best = float("inf")
        for _ in range(TIMED_RUNS):
            timer = Stopwatch()
            session.execute_prepared(prepared)
            best = min(best, timer.elapsed())
        return best

    mutated_seconds = warm_seconds(incremental_catalog)
    fresh_seconds = warm_seconds(fresh_catalog)
    slowdown = mutated_seconds / max(fresh_seconds, 1e-9)
    record_bench_result(
        "bench_ingest",
        {
            "warm_mutated_seconds": round(mutated_seconds, 5),
            "warm_fresh_seconds": round(fresh_seconds, 5),
            "warm_slowdown": round(slowdown, 2),
        },
    )
    assert slowdown <= 1.5, (
        f"warm latency on the mutated table must stay within 1.5x of an "
        f"unmutated equal-size table (measured {slowdown:.2f}x)"
    )

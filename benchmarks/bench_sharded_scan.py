"""Shared-nothing sharded scan+filter+join throughput vs. in-process serial.

The workload is the regime the scatter–gather engine targets: one large fact
table (the range-sharded scan) joined to a small dimension table, with a
disjunctive filter over both.  Worker *processes* sidestep the GIL entirely
— each shard compiles its own physical tree from the shipped logical plan
and runs its contiguous partition block against cached table objects, so
per-query traffic is one task message out and one result payload back.

Acceptance bar: **4 shards ≥ 2× in-process serial wall-clock** on this
workload at identical partitioning, with byte-identical rows and identical
merged work counters.  The timing assertion needs real cores: on hosts with
fewer than 4 CPUs it is skipped (process parallelism cannot beat wall-clock
physics) while every correctness assertion still runs.  Measurements are
persisted to the current ``BENCH_*.json`` with the host context stamped in,
so single-core CI numbers stay distinguishable from multi-core runs.

Not tied to a paper figure — this benchmarks the repo's sharded execution
engine, not the paper's planners (see docs/benchmarks.md).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.persist import record_bench_result
from repro.engine.metrics import Stopwatch
from repro.engine.session import Session
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table

#: Rows in the fact (sharded) and dimension (shipped-once build) tables.
FACT_ROWS = 240_000
DIM_ROWS = 2_000

#: Worker processes and table partitions used by the sharded runs.
SHARDS = 4
PARTITIONS = 8

#: Required speedup of 4 shards over in-process serial at identical
#: partitioning.
REQUIRED_SPEEDUP = 2.0

#: Timing passes (best-of to damp scheduler noise and one-time shipping).
PASSES = 3

SQL = (
    "SELECT f.id FROM fact AS f JOIN dim AS d ON f.dim_id = d.id "
    "WHERE (f.a < 0.3 AND d.w < 0.6) OR (f.b > 0.7 AND d.w > 0.2)"
)

AGG_SQL = (
    "SELECT COUNT(*), SUM(f.id), MIN(f.a) FROM fact AS f "
    "JOIN dim AS d ON f.dim_id = d.id "
    "WHERE (f.a < 0.3 AND d.w < 0.6) OR (f.b > 0.7 AND d.w > 0.2)"
)


def _catalog() -> Catalog:
    rng = np.random.default_rng(7)
    fact = Table(
        "fact",
        [
            Column("id", np.arange(FACT_ROWS), ctype=ColumnType.INT),
            Column("dim_id", rng.integers(0, DIM_ROWS, size=FACT_ROWS), ctype=ColumnType.INT),
            Column("a", rng.random(FACT_ROWS), ctype=ColumnType.FLOAT),
            Column("b", rng.random(FACT_ROWS), ctype=ColumnType.FLOAT),
        ],
    )
    dim = Table(
        "dim",
        [
            Column("id", np.arange(DIM_ROWS), ctype=ColumnType.INT),
            Column("w", rng.random(DIM_ROWS), ctype=ColumnType.FLOAT),
        ],
    )
    return Catalog([fact, dim])


@pytest.fixture(scope="module")
def shard_session() -> Session:
    return Session(_catalog(), stats_sample_size=10_000)


@pytest.fixture(scope="module")
def prepared(shard_session):
    return shard_session.prepare(SQL, planner="tcombined")


def _best_seconds(shard_session, prepared, shards: int) -> float:
    best = float("inf")
    for _ in range(PASSES):
        timer = Stopwatch()
        shard_session.execute_prepared(
            prepared, parallelism=1, partitions=PARTITIONS, shards=shards
        )
        best = min(best, timer.elapsed())
    return best


def test_sharded_results_byte_identical_to_serial(shard_session, prepared):
    """Shard-count sweep: identical rows, plans and merged work counters."""
    serial = shard_session.execute_prepared(
        prepared, parallelism=1, partitions=PARTITIONS
    )
    serial_metrics = serial.metrics.as_dict()
    serial_metrics.pop("shards_executed")
    for shards in (2, SHARDS):
        sharded = shard_session.execute_prepared(
            prepared, parallelism=1, partitions=PARTITIONS, shards=shards
        )
        assert sharded.rows == serial.rows, shards
        sharded_metrics = sharded.metrics.as_dict()
        assert sharded_metrics.pop("shards_executed") == shards
        assert sharded_metrics == serial_metrics, shards
        # Same IO work; only the hit/miss split may move (private worker
        # caches).
        assert sharded.iostats.values_read == serial.iostats.values_read
        assert (
            sharded.iostats.pages_read + sharded.iostats.pages_hit
            == serial.iostats.pages_read + serial.iostats.pages_hit
        )
    record_bench_result(
        "bench_sharded_scan",
        {
            "fact_rows": FACT_ROWS,
            "partitions": PARTITIONS,
            "output_rows": serial.row_count,
            "byte_identical_at": [1, 2, SHARDS],
        },
    )


def test_sharded_aggregate_pushdown_identical(shard_session):
    """Partial aggregation on the shards folds to the serial answer."""
    serial = shard_session.execute(
        AGG_SQL, planner="tcombined", parallelism=1, partitions=PARTITIONS
    )
    sharded = shard_session.execute(
        AGG_SQL, planner="tcombined", parallelism=1, partitions=PARTITIONS, shards=SHARDS
    )
    assert sharded.rows == serial.rows


def test_sharded_speedup_at_least_2x(shard_session, prepared):
    """4 worker processes must deliver ≥ 2× the in-process wall-clock."""
    cores = os.cpu_count() or 1
    if cores < SHARDS:
        pytest.skip(
            f"host has {cores} CPU core(s); {SHARDS}-shard process parallelism "
            "cannot produce a wall-clock speedup without cores to run on"
        )
    # Warm the pool (process startup + table shipping are one-time costs).
    shard_session.execute_prepared(
        prepared, parallelism=1, partitions=PARTITIONS, shards=SHARDS
    )
    serial_seconds = _best_seconds(shard_session, prepared, shards=1)
    sharded_seconds = _best_seconds(shard_session, prepared, shards=SHARDS)
    speedup = serial_seconds / sharded_seconds
    record_bench_result(
        "bench_sharded_scan",
        {
            "serial_seconds": round(serial_seconds, 4),
            "sharded_seconds": round(sharded_seconds, 4),
            "shards": SHARDS,
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"{SHARDS} shards {sharded_seconds:.3f}s vs serial {serial_seconds:.3f}s "
        f"(speedup {speedup:.2f}x, expected >= {REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.parametrize("shards", (1, SHARDS))
def test_sharded_scan_wall_clock(benchmark, shard_session, prepared, shards):
    """Wall-clock of the scan-heavy query at 1 vs 4 shards (8 partitions)."""
    result = benchmark(
        shard_session.execute_prepared,
        prepared,
        parallelism=1,
        partitions=PARTITIONS,
        shards=shards,
    )
    assert result.row_count > 0

"""An analytics-style report over the IMDB-like catalog.

The motivating scenario from the paper's introduction — "compile a list of
potential movies to watch this weekend" — rarely stops at SELECT *.  This
example shows the output-shaping surface (aggregates, GROUP BY, ORDER BY,
LIMIT, DISTINCT) layered on top of a disjunctive WHERE clause, all planned
and executed by the tagged execution model.

Run with::

    python examples/analytics_report.py
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session
from repro.bench.report import format_table
from repro.workloads.imdb import generate_imdb_catalog

#: Movies worth watching: recent and decent, or older masterpieces.
WATCHLIST_FILTER = (
    "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
    "   OR (t.production_year > 1980 AND mi_idx.info > 8.0) "
)


def print_result(title: str, result) -> None:
    print(f"--- {title} ---")
    print(format_table(result.column_names, result.rows[:15]))
    print(
        f"({result.row_count} rows, planner={result.planner_name}, "
        f"total {result.total_seconds:.3f}s)\n"
    )


def main(scale: float = 0.05) -> None:
    session = Session(generate_imdb_catalog(scale=scale, seed=7), stats_sample_size=5_000)

    per_year = session.execute(
        "SELECT t.production_year, COUNT(*), AVG(mi_idx.info) "
        "FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
        + WATCHLIST_FILTER
        + "GROUP BY t.production_year "
        "ORDER BY COUNT(*) DESC, t.production_year LIMIT 10"
    )
    print_result("Watchlist candidates per production year (top 10)", per_year)

    top_rated = session.execute(
        "SELECT t.title, t.production_year, mi_idx.info "
        "FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
        + WATCHLIST_FILTER
        + "ORDER BY mi_idx.info DESC, t.title LIMIT 10"
    )
    print_result("Ten highest-rated watchlist candidates", top_rated)

    keyword_breadth = session.execute(
        "SELECT COUNT(DISTINCT k.keyword) "
        "FROM title AS t "
        "JOIN movie_keyword AS mk ON t.id = mk.movie_id "
        "JOIN keyword AS k ON mk.keyword_id = k.id "
        "WHERE t.production_year > 2000 OR k.keyword ILIKE '%hero%'"
    )
    print_result("Distinct keywords attached to recent or heroic titles", keyword_breadth)

    years = session.execute(
        "SELECT DISTINCT t.production_year "
        "FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
        + WATCHLIST_FILTER
        + "ORDER BY t.production_year DESC LIMIT 15"
    )
    print_result("Most recent production years with watchlist candidates", years)


if __name__ == "__main__":
    main()

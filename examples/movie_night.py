"""Movie night: JOB-style disjunctive queries on the IMDB-like dataset.

Generates the synthetic IMDB-like catalog, picks a few of the combined JOB
query groups (including the superhero group the paper's Section 5.1 uses as
its example), and compares all planners on them.

Run with::

    python examples/movie_night.py [scale]
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session
from repro.bench.report import format_table
from repro.bench.runner import time_query
from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.job import job_query

#: Query groups showcased: 1 (the Query 1 analogue), 6 and 20 (the groups
#: with the largest Figure 3b speedups), and 30 (a four-table group).
SHOWCASE_GROUPS = (1, 6, 20, 30)
PLANNERS = ("bdisj", "bpushconj", "tpushdown", "tpullup", "titerpush", "tcombined")


def main(scale: float | None = None, groups: tuple[int, ...] = SHOWCASE_GROUPS) -> None:
    if scale is None:
        scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Generating IMDB-like catalog at scale {scale} ...")
    catalog = generate_imdb_catalog(scale=scale, seed=7)
    session = Session(catalog, stats_sample_size=10_000)

    for group in groups:
        query = job_query(group)
        print(f"\n=== query group {group} ({query.name}) ===")
        print(query)
        rows = []
        reference_count = None
        for planner in PLANNERS:
            measurement = time_query(session, query, planner, repetitions=1)
            if reference_count is None:
                reference_count = measurement.row_count
            elif measurement.row_count != reference_count:
                raise AssertionError(
                    f"planner {planner} returned {measurement.row_count} rows, "
                    f"expected {reference_count}"
                )
            rows.append(
                [
                    planner,
                    measurement.total_seconds,
                    measurement.execution_seconds,
                    measurement.metrics["predicate_rows_evaluated"],
                    measurement.metrics["tuples_materialized"],
                    measurement.row_count,
                ]
            )
        print(
            format_table(
                ["planner", "total (s)", "exec (s)", "pred rows", "tuples", "result rows"],
                rows,
            )
        )


if __name__ == "__main__":
    main()

"""Serving repeated traffic: the QueryService plan and stats caches.

A dashboard, API or benchmark harness sends the same handful of query
templates over and over.  ``Session.execute`` re-parses, re-samples and
re-plans every call; ``QueryService`` does that work once per distinct query
and serves every repeat from its plan cache — falling back transparently
when the catalog changes, because cached plans are keyed by the catalog
version.

Run with::

    python examples/query_service.py
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import QueryService, Session
from repro.bench.report import format_table
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query


def main(table_size: int = 1_500, repeats: int = 5) -> None:
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=table_size, seed=11))
    session = Session(catalog, stats_sample_size=table_size)
    queries = [
        make_dnf_query(num_root_clauses=clauses, selectivity=selectivity)
        for clauses, selectivity in ((2, 0.2), (3, 0.3))
    ]

    with QueryService(session, max_workers=4) as service:
        rows = []
        for repeat in range(repeats):
            for query in queries:
                result = service.execute(query, planner="tcombined")
                rows.append(
                    [
                        repeat,
                        query.name,
                        result.row_count,
                        "hit" if result.cache_hit else "miss",
                        f"{result.planning_seconds * 1000:.2f}",
                        f"{result.execution_seconds * 1000:.2f}",
                    ]
                )
        print(
            format_table(
                ["pass", "query", "rows", "plan cache", "planning (ms)", "execution (ms)"],
                rows,
            )
        )

        print("\ncache counters after the serial loop:")
        for cache_name, counters in sorted(service.cache_metrics().items()):
            print(f"  {cache_name}: " + ", ".join(
                f"{key}={value:.2f}" if key == "hit_rate" else f"{key}={int(value)}"
                for key, value in sorted(counters.items())
            ))

        report = service.execute_batch(queries * repeats, planner="tcombined")
        print(
            f"\nwarm batch across 4 threads: {len(report.succeeded)}/{len(report)} ok, "
            f"{report.queries_per_second:.1f} queries/s "
            f"(wall {report.wall_seconds:.3f}s)"
        )


if __name__ == "__main__":
    main()

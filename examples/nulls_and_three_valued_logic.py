"""NULL handling: tagged execution under three-valued logic (Section 3.4).

Builds a small movie catalog where some scores and years are NULL, and shows
that tagged execution produces exactly the rows SQL semantics demand (a WHERE
clause only passes rows whose predicate is TRUE, never UNKNOWN) while still
agreeing with traditional execution.

Run with::

    python examples/nulls_and_three_valued_logic.py
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Catalog, Session, Table

CATALOG = Catalog(
    [
        Table.from_dict(
            "title",
            {
                "id": [1, 2, 3, 4, 5, 6],
                "title": ["Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta"],
                "production_year": [2010, None, 1985, 2004, None, 1995],
            },
        ),
        Table.from_dict(
            "movie_info_idx",
            {
                "movie_id": [1, 2, 3, 4, 5, 6],
                "info": [8.4, 9.1, None, 7.2, 6.8, None],
            },
        ),
    ]
)

QUERY = """
SELECT t.title, t.production_year, mi.info
FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id
WHERE (t.production_year > 2000 AND mi.info > 7.0)
   OR (t.production_year > 1980 AND mi.info > 8.0)
"""


def main() -> None:
    session = Session(CATALOG, three_valued=True)

    tagged = session.execute(QUERY, planner="tcombined")
    traditional = session.execute(QUERY, planner="bdisj")

    print("Tagged execution result:")
    for row in tagged.sorted_rows():
        print("   ", row)
    print("Traditional execution result:")
    for row in traditional.sorted_rows():
        print("   ", row)

    assert tagged.sorted_rows() == traditional.sorted_rows()
    print(
        "\nRows whose predicate evaluates to UNKNOWN (because a year or score is NULL)\n"
        "are excluded by both models, as the SQL standard requires.  Under tagged\n"
        "execution they are dropped as soon as their tag's root assignment becomes\n"
        "FALSE or UNKNOWN (Section 3.4, change 4)."
    )


if __name__ == "__main__":
    main()

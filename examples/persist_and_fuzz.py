"""Persist a dataset to disk, reload it, and differential-test the planners.

Two workflows a downstream user needs beyond one-off queries:

1. **Persistence** — generate a dataset once, save it as an on-disk columnar
   catalog, and reload it in later sessions (also what the ``python -m repro
   generate`` / ``query`` CLI commands do).
2. **Differential testing** — before trusting a new planner or a modified
   operator, run randomly generated disjunctive queries under every planner
   and compare against the naive row-at-a-time oracle.

Run with::

    python examples/persist_and_fuzz.py
"""

import sys
import tempfile
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session
from repro.storage.disk import load_catalog, save_catalog
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.differential import run_differential
from repro.testing.querygen import RandomQueryConfig, generate_random_query
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_cnf_query


def persistence_roundtrip(workdir: Path, table_size: int = 2_000) -> None:
    print("=== 1. persistence round-trip ===")
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=table_size, seed=9))
    root = save_catalog(catalog, workdir / "synthetic")
    print(f"saved {len(catalog)} tables ({catalog.total_rows()} rows) to {root}")

    reloaded = load_catalog(root)
    session = Session(reloaded, stats_sample_size=2_000)
    query = make_cnf_query(num_root_clauses=2, selectivity=0.2)
    result = session.execute(query, planner="tcombined")
    print(f"reloaded catalog answers {query.name!r}: {result.row_count} rows "
          f"in {result.total_seconds:.3f}s\n")


def differential_check(num_queries: int = 5) -> None:
    print("=== 2. differential testing against the oracle ===")
    catalog = generate_random_catalog(
        RandomCatalogConfig(seed=21, num_dimensions=2, fact_rows=120, dimension_rows=180)
    )
    session = Session(catalog)
    for seed in range(num_queries):
        query = generate_random_query(catalog, RandomQueryConfig(seed=seed, max_depth=3))
        report = run_differential(catalog, query, session=session)
        print(f"  {report.describe()}")
    print("every planner agreed with the naive oracle.")


def main(table_size: int = 2_000, num_queries: int = 5) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        persistence_roundtrip(Path(tmp), table_size=table_size)
    differential_check(num_queries=num_queries)


if __name__ == "__main__":
    main()

"""Compare the three execution models on the same disjunctive query.

The paper's Section 6 singles out the *bypass technique* as the closest prior
art to tagged execution.  This example runs one synthetic DNF query (the
Section 5.2 workload) under:

* ``bdisj``      — traditional execution, one subquery per root clause + union,
* ``bypass``     — bypass execution, separate true/false streams,
* ``tcombined``  — tagged execution.

and prints wall-clock times next to the engine work counters that explain the
differences: how many tuples each model materialized, how many hash tables
its joins built, and whether it needed a deduplicating union.

Run with::

    python examples/bypass_vs_tagged.py
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session
from repro.bench.report import format_table
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query

PLANNERS = ("bdisj", "bypass", "tcombined")

COUNTERS = (
    "predicate_rows_evaluated",
    "tuples_materialized",
    "hash_tables_built",
    "join_build_rows",
    "union_input_rows",
)


def main(table_size: int = 5_000) -> None:
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=table_size, seed=42))
    session = Session(catalog, stats_sample_size=table_size)
    query = make_dnf_query(num_root_clauses=3, selectivity=0.3)

    print(f"query: {query.name}")
    print(f"predicate: {query.predicate.key()}\n")

    results = {planner: session.execute(query, planner=planner) for planner in PLANNERS}

    timing_rows = []
    reference = results["bdisj"].total_seconds
    for planner, result in results.items():
        timing_rows.append(
            [
                planner,
                result.row_count,
                f"{result.planning_seconds:.4f}",
                f"{result.execution_seconds:.4f}",
                f"{reference / result.total_seconds:.2f}x",
            ]
        )
    print(
        format_table(
            ["planner", "rows", "planning (s)", "execution (s)", "speedup vs bdisj"],
            timing_rows,
            title="Wall-clock comparison",
        )
    )
    print()

    counter_rows = []
    for counter in COUNTERS:
        counter_rows.append(
            [counter] + [results[planner].metrics.as_dict()[counter] for planner in PLANNERS]
        )
    print(
        format_table(
            ["work counter"] + list(PLANNERS),
            counter_rows,
            title="Why: engine work counters",
        )
    )

    rows = {planner: result.sorted_rows() for planner, result in results.items()}
    assert rows["bdisj"] == rows["bypass"] == rows["tcombined"], "planners disagree!"
    print("\nAll three execution models returned identical rows.")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's running example (Query 1) end to end.

Builds the tiny ``title`` / ``movie_info_idx`` tables from the paper's
Examples 1-4, runs Query 1 under both execution models, and shows the tagged
plan that achieves disjunctive predicate pushdown.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Catalog, Session, Table


def build_catalog() -> Catalog:
    """The seven movies used throughout Section 2 of the paper."""
    title = Table.from_dict(
        "title",
        {
            "id": [1, 2, 3, 4, 5, 6, 7],
            "title": [
                "The Dark Knight",
                "Evolution",
                "The Shawshank Redemption",
                "Pulp Fiction",
                "The Godfather",
                "Beetlejuice",
                "Avatar",
            ],
            "production_year": [2008, 2001, 1994, 1994, 1972, 1988, 2009],
        },
    )
    movie_info_idx = Table.from_dict(
        "movie_info_idx",
        {
            "movie_id": [1, 3, 4, 5, 6, 7],
            "info": [9.0, 9.3, 8.9, 9.2, 7.5, 7.9],
        },
    )
    return Catalog([title, movie_info_idx])


QUERY_1 = """
SELECT t.title, t.production_year, mi_idx.info
FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id
WHERE (t.production_year > 2000 AND mi_idx.info > 7.0)
   OR (t.production_year > 1980 AND mi_idx.info > 8.0)
"""


def main() -> None:
    session = Session(build_catalog())

    print("Tagged execution plan (TPushdown):")
    print(session.explain(QUERY_1, planner="tpushdown"))
    print()

    for planner in ("tcombined", "bdisj"):
        result = session.execute(QUERY_1, planner=planner)
        print(f"--- {planner} ---")
        print(f"rows: {result.row_count}   total: {result.total_seconds * 1000:.2f} ms")
        for row in result.sorted_rows():
            print("   ", row)
        print(
            "    predicate rows evaluated:",
            result.metrics.predicate_rows_evaluated,
            "| tuples materialized:",
            result.metrics.tuples_materialized,
        )
        print()

    print(
        "Note how both planners return the same four movies, but tagged execution\n"
        "evaluates each predicate once and never materializes a joined tuple twice."
    )


if __name__ == "__main__":
    main()

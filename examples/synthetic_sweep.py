"""Synthetic sweep: a miniature version of the paper's Figure 4a and 4b.

Sweeps predicate selectivity (DNF, Figure 4a) and table size (CNF, Figure 4b)
on the synthetic T0/T1/T2 workload and prints the runtime tables.  The shape
to look for: the baseline and tagged curves diverge as selectivity or table
size grows, because traditional execution materializes ever more duplicate
work while tagged execution does not.

Run with::

    python examples/synthetic_sweep.py [table_size]
"""

import sys
from pathlib import Path

# Allow running from a fresh checkout: prefer the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.synthetic_bench import run_selectivity_sweep, run_table_size_sweep


def main(table_size: int | None = None) -> None:
    if table_size is None:
        table_size = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000

    print("Figure 4a (DNF, selectivity sweep)")
    selectivity_result = run_selectivity_sweep(
        selectivities=(0.1, 0.3, 0.5, 0.7, 0.9),
        table_size=table_size,
        repetitions=1,
    )
    print(selectivity_result.to_table())
    print()

    print("Figure 4b (CNF, table-size sweep)")
    size_result = run_table_size_sweep(
        table_sizes=tuple(sorted({max(250, table_size // 4), max(500, table_size // 2), table_size})),
        repetitions=1,
    )
    print(size_result.to_table())


if __name__ == "__main__":
    main()

"""Tests for on-disk catalog persistence (repro.storage.disk)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Catalog, Column, ColumnType, Session, Table
from repro.storage.disk import (
    MANIFEST_NAME,
    CatalogFormatError,
    export_table_csv,
    import_table_csv,
    load_catalog,
    save_catalog,
)
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query

from tests.conftest import PAPER_QUERY_MATCHES, PAPER_QUERY_SQL


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_values_and_nulls(self, tmp_path):
        table = Table(
            "movies",
            [
                Column("id", [1, 2, 3]),
                Column("title", ["Alpha", None, "Gamma"]),
                Column("score", [9.1, 8.0, None]),
                Column("recent", [True, False, True]),
            ],
        )
        save_catalog(Catalog([table]), tmp_path)
        loaded = load_catalog(tmp_path)

        reloaded = loaded.get("movies")
        assert reloaded.num_rows == 3
        assert reloaded.column_names == ["id", "title", "score", "recent"]
        assert reloaded.column("id").ctype is ColumnType.INT
        assert reloaded.column("title").ctype is ColumnType.STRING
        assert reloaded.column("score").ctype is ColumnType.FLOAT
        assert reloaded.column("recent").ctype is ColumnType.BOOL
        assert reloaded.rows() == table.rows()

    def test_roundtrip_of_paper_catalog_still_answers_query(self, tmp_path, paper_catalog):
        save_catalog(paper_catalog, tmp_path)
        session = Session(load_catalog(tmp_path))
        result = session.execute(PAPER_QUERY_SQL)
        assert {row[0] for row in result.rows} == PAPER_QUERY_MATCHES

    def test_roundtrip_of_synthetic_catalog(self, tmp_path):
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=300, seed=2))
        save_catalog(catalog, tmp_path / "synthetic")
        loaded = load_catalog(tmp_path / "synthetic")
        original = Session(catalog).execute(make_dnf_query(selectivity=0.3))
        reloaded = Session(loaded).execute(make_dnf_query(selectivity=0.3))
        assert reloaded.sorted_rows() == original.sorted_rows()

    def test_manifest_contents(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == 1
        assert {entry["name"] for entry in manifest["tables"]} == {
            "title",
            "movie_info_idx",
        }

    def test_save_returns_root_path(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path / "nested" / "dir")
        assert (root / MANIFEST_NAME).exists()

    def test_no_pickle_files_written(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        for npy_file in root.rglob("*.npy"):
            np.load(npy_file, allow_pickle=False)  # must not raise


class TestLoadErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CatalogFormatError, match="catalog.json"):
            load_catalog(tmp_path)

    def test_wrong_format_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format_version": 99, "tables": []}))
        with pytest.raises(CatalogFormatError, match="version"):
            load_catalog(tmp_path)

    def test_missing_column_file(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        (root / "title" / "id.values.npy").unlink()
        with pytest.raises(CatalogFormatError, match="missing column files"):
            load_catalog(root)

    def test_row_count_mismatch_detected(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["tables"][0]["num_rows"] = 99
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CatalogFormatError, match="rows"):
            load_catalog(root)


class TestCsv:
    def test_csv_roundtrip(self, tmp_path):
        table = Table(
            "people",
            [
                Column("id", [1, 2, 3]),
                Column("name", ["Ada", None, "Grace"]),
                Column("score", [1.5, 2.0, None]),
            ],
        )
        path = tmp_path / "people.csv"
        export_table_csv(table, path)
        loaded = import_table_csv("people", path)
        assert loaded.rows() == table.rows()

    def test_csv_type_inference(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,ratio,label\n1,0.5,yes\n2,0.25,no\n")
        table = import_table_csv("data", path)
        assert table.column("id").ctype is ColumnType.INT
        assert table.column("ratio").ctype is ColumnType.FLOAT
        assert table.column("label").ctype is ColumnType.STRING

    def test_csv_explicit_types(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,flag\n1,true\n2,false\n")
        table = import_table_csv("data", path, types={"flag": ColumnType.BOOL})
        assert table.column("flag").ctype is ColumnType.BOOL
        assert [row["flag"] for row in table.rows()] == [True, False]

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(CatalogFormatError, match="empty"):
            import_table_csv("empty", path)

"""Tests for on-disk catalog persistence (repro.storage.disk)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Catalog, Column, ColumnType, Session, Table
from repro.storage.disk import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CatalogFormatError,
    export_table_csv,
    import_table_csv,
    load_catalog,
    save_catalog,
)
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query

from tests.conftest import PAPER_QUERY_MATCHES, PAPER_QUERY_SQL


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_values_and_nulls(self, tmp_path):
        table = Table(
            "movies",
            [
                Column("id", [1, 2, 3]),
                Column("title", ["Alpha", None, "Gamma"]),
                Column("score", [9.1, 8.0, None]),
                Column("recent", [True, False, True]),
            ],
        )
        save_catalog(Catalog([table]), tmp_path)
        loaded = load_catalog(tmp_path)

        reloaded = loaded.get("movies")
        assert reloaded.num_rows == 3
        assert reloaded.column_names == ["id", "title", "score", "recent"]
        assert reloaded.column("id").ctype is ColumnType.INT
        assert reloaded.column("title").ctype is ColumnType.STRING
        assert reloaded.column("score").ctype is ColumnType.FLOAT
        assert reloaded.column("recent").ctype is ColumnType.BOOL
        assert reloaded.rows() == table.rows()

    def test_roundtrip_of_paper_catalog_still_answers_query(self, tmp_path, paper_catalog):
        save_catalog(paper_catalog, tmp_path)
        session = Session(load_catalog(tmp_path))
        result = session.execute(PAPER_QUERY_SQL)
        assert {row[0] for row in result.rows} == PAPER_QUERY_MATCHES

    def test_roundtrip_of_synthetic_catalog(self, tmp_path):
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=300, seed=2))
        save_catalog(catalog, tmp_path / "synthetic")
        loaded = load_catalog(tmp_path / "synthetic")
        original = Session(catalog).execute(make_dnf_query(selectivity=0.3))
        reloaded = Session(loaded).execute(make_dnf_query(selectivity=0.3))
        assert reloaded.sorted_rows() == original.sorted_rows()

    def test_manifest_contents(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert {entry["name"] for entry in manifest["tables"]} == {
            "title",
            "movie_info_idx",
        }

    def test_save_returns_root_path(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path / "nested" / "dir")
        assert (root / MANIFEST_NAME).exists()

    def test_no_pickle_files_written(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        for npy_file in root.rglob("*.npy"):
            np.load(npy_file, allow_pickle=False)  # must not raise


class TestStatsMetadataRoundtrip:
    """Format v2: per-column statistics persist and seed the loaded catalog."""

    def test_manifest_records_column_stats(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        title_columns = {
            entry["name"]: entry
            for table in manifest["tables"]
            if table["name"] == "title"
            for entry in table["columns"]
        }
        year = title_columns["production_year"]
        assert year["distinct_count"] == 6
        assert year["min_value"] == 1972 and year["max_value"] == 2009
        assert year["null_count"] == 0

    def test_loaded_catalog_plans_without_recomputing_stats(self, tmp_path, paper_catalog):
        from repro.stats.table_stats import collect_table_stats

        root = save_catalog(paper_catalog, tmp_path)
        loaded = load_catalog(root)
        for table in loaded:
            for column in table.columns():
                # The caches were seeded from the manifest, so stats
                # collection never re-runs np.unique / min / max.
                assert column._distinct_count is not None
                assert column._min_max_known
        original = {t.name: collect_table_stats(paper_catalog.get(t.name)) for t in loaded}
        for table in loaded:
            stats = collect_table_stats(table)
            for name, column_stats in stats.columns.items():
                assert column_stats == original[table.name].columns[name]

    def test_all_null_column_bounds_round_trip(self, tmp_path):
        table = Table("t", [Column("x", [None, None]), Column("y", [1, 2])])
        root = save_catalog(Catalog([table]), tmp_path)
        loaded = load_catalog(root).get("t")
        assert loaded.column("x")._min_max_known
        assert loaded.column("x").min_max() is None
        assert loaded.column("x").distinct_count() == 0

    def test_version_1_manifest_still_loads(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["format_version"] = 1
        for table in manifest["tables"]:
            table["columns"] = [
                {"name": entry["name"], "type": entry["type"]}
                for entry in table["columns"]
            ]
        manifest.pop("indexes", None)
        manifest.pop("zone_maps", None)
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        loaded = load_catalog(root)
        title = loaded.get("title")
        assert title.column("production_year")._distinct_count is None  # not seeded
        assert title.column("production_year").distinct_count() == 6  # lazy fallback
        session = Session(loaded)
        result = session.execute(PAPER_QUERY_SQL)
        assert {row[0] for row in result.rows} == PAPER_QUERY_MATCHES


class TestAccessSidecarRoundtrip:
    """Format v2: secondary indexes and zone maps persist as sidecar files."""

    def _catalog(self):
        n = 256
        table = Table(
            "events",
            [
                Column("id", list(range(n)), page_size=16),
                Column("ts", list(range(n)), page_size=16),
                Column(
                    "cat", [f"c{i % 5}" for i in range(n)], page_size=16
                ),
            ],
        )
        return Catalog([table])

    def test_index_sidecars_round_trip(self, tmp_path):
        from repro.access.manager import ensure_access_manager

        catalog = self._catalog()
        manager = ensure_access_manager(catalog)
        manager.create_index("events", "cat", kind="bitmap")
        manager.create_index("events", "ts", kind="sorted")
        manager.zone_map("events", "ts")  # materialize one zone map too
        root = save_catalog(catalog, tmp_path)
        assert (root / "events" / "cat.bitmap.index.npz").exists()
        assert (root / "events" / "ts.sorted.index.npz").exists()
        assert (root / "events" / "ts.zonemap.npz").exists()

        loaded = load_catalog(root)
        loaded_manager = loaded.access_manager
        assert loaded_manager is not None
        defs = {(d.table, d.column): d.kind for d in loaded_manager.list_indexes()}
        assert defs == {("events", "cat"): "bitmap", ("events", "ts"): "sorted"}
        built_before = loaded_manager.stats.indexes_built
        sql = "SELECT e.id FROM events AS e WHERE e.cat = 'c3' AND e.ts < 40"
        pruned = Session(loaded).execute(sql)
        plain = Session(loaded, access_paths=False).execute(sql)
        assert pruned.rows == plain.rows
        assert pruned.metrics.pages_pruned > 0
        # The loaded sidecars served the query; nothing was rebuilt.
        assert loaded_manager.stats.indexes_built == built_before

    def test_missing_sidecar_raises(self, tmp_path):
        from repro.access.manager import ensure_access_manager

        catalog = self._catalog()
        ensure_access_manager(catalog).create_index("events", "cat", kind="bitmap")
        root = save_catalog(catalog, tmp_path)
        (root / "events" / "cat.bitmap.index.npz").unlink()
        with pytest.raises(CatalogFormatError, match="sidecar"):
            load_catalog(root)

    def test_cli_index_helpers_round_trip(self, tmp_path):
        from repro.storage.disk import (
            add_index_to_saved_catalog,
            drop_index_from_saved_catalog,
            list_saved_indexes,
        )

        root = save_catalog(self._catalog(), tmp_path)
        definition = add_index_to_saved_catalog(root, "events", "cat", kind="auto")
        assert definition.kind == "bitmap"
        assert list_saved_indexes(root) == [
            {
                "table": "events",
                "column": "cat",
                "kind": "bitmap",
                "file": "cat.bitmap.index.npz",
                "rows": 256,
            }
        ]
        assert load_catalog(root).access_manager.has_index("events", "cat")
        drop_index_from_saved_catalog(root, "events", "cat")
        assert list_saved_indexes(root) == []
        assert not (root / "events" / "cat.bitmap.index.npz").exists()
        with pytest.raises(KeyError):
            drop_index_from_saved_catalog(root, "events", "cat")


class TestLoadErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CatalogFormatError, match="catalog.json"):
            load_catalog(tmp_path)

    def test_wrong_format_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format_version": 99, "tables": []}))
        with pytest.raises(CatalogFormatError, match="version"):
            load_catalog(tmp_path)

    def test_missing_column_file(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        (root / "title" / "id.values.npy").unlink()
        with pytest.raises(CatalogFormatError, match="missing column files"):
            load_catalog(root)

    def test_row_count_mismatch_detected(self, tmp_path, paper_catalog):
        root = save_catalog(paper_catalog, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["tables"][0]["num_rows"] = 99
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CatalogFormatError, match="rows"):
            load_catalog(root)


class TestCsv:
    def test_csv_roundtrip(self, tmp_path):
        table = Table(
            "people",
            [
                Column("id", [1, 2, 3]),
                Column("name", ["Ada", None, "Grace"]),
                Column("score", [1.5, 2.0, None]),
            ],
        )
        path = tmp_path / "people.csv"
        export_table_csv(table, path)
        loaded = import_table_csv("people", path)
        assert loaded.rows() == table.rows()

    def test_csv_type_inference(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,ratio,label\n1,0.5,yes\n2,0.25,no\n")
        table = import_table_csv("data", path)
        assert table.column("id").ctype is ColumnType.INT
        assert table.column("ratio").ctype is ColumnType.FLOAT
        assert table.column("label").ctype is ColumnType.STRING

    def test_csv_explicit_types(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,flag\n1,true\n2,false\n")
        table = import_table_csv("data", path, types={"flag": ColumnType.BOOL})
        assert table.column("flag").ctype is ColumnType.BOOL
        assert [row["flag"] for row in table.rows()] == [True, False]

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(CatalogFormatError, match="empty"):
            import_table_csv("empty", path)

"""Unit tests for the LFU page cache."""

import pytest

from repro.storage.pagecache import LFUPageCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LFUPageCache(capacity=2)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_contains_and_len(self):
        cache = LFUPageCache(capacity=2)
        cache.access("a")
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_capacity_property(self):
        assert LFUPageCache(capacity=7).capacity == 7

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LFUPageCache(capacity=-1)

    def test_zero_capacity_never_hits(self):
        cache = LFUPageCache(capacity=0)
        assert cache.access("a") is False
        assert cache.access("a") is False
        assert len(cache) == 0

    def test_clear(self):
        cache = LFUPageCache(capacity=2)
        cache.access("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.access("a") is False


class TestEviction:
    def test_least_frequent_is_evicted(self):
        cache = LFUPageCache(capacity=2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts b (frequency 1) rather than a (frequency 2)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_capacity_never_exceeded(self):
        cache = LFUPageCache(capacity=3)
        for index in range(10):
            cache.access(index)
        assert len(cache) <= 3

    def test_frequency_survives_eviction_pressure(self):
        cache = LFUPageCache(capacity=2)
        for _ in range(5):
            cache.access("hot")
        for index in range(5):
            cache.access(("cold", index))
        assert "hot" in cache

    def test_ties_evict_oldest_insertion(self):
        cache = LFUPageCache(capacity=2)
        cache.access("first")
        cache.access("second")
        cache.access("third")  # both candidates have frequency 1; "first" goes
        assert "first" not in cache
        assert "second" in cache
        assert "third" in cache


class TestBatchAccess:
    def test_access_many_counts(self):
        cache = LFUPageCache(capacity=10)
        misses, hits = cache.access_many(["a", "b", "a"])
        assert misses == 2
        assert hits == 1

    def test_access_many_empty(self):
        cache = LFUPageCache(capacity=10)
        assert cache.access_many([]) == (0, 0)

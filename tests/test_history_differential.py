"""History must be a pure observer: identical results on or off.

The PR-9 guarantee extends to PR 10's workload history — turning on
per-fingerprint statistics, the event journal, and regression detection
must not change a single byte of query output or a single IO counter,
under every planner and under morsel/shard parallelism.  The suite also
pins the merge-safety contract: statistics publish exactly once per
query at the coordinator, so K executions count K calls no matter how
many threads or shard processes did the work — and closes with the
acceptance scenario, an injected plan regression surfaced end-to-end by
``repro history regressions``.
"""

from __future__ import annotations

import json

import pytest

from repro import QueryService, Session
from repro.cli import main
from repro.engine import parallel, shard
from repro.obs.history import WorkloadHistory, set_history
from repro.obs.journal import read_journal
from repro.testing import (
    RandomCatalogConfig,
    RandomQueryConfig,
    generate_random_catalog,
    generate_random_query,
)
from repro.testing.differential import DEFAULT_PLANNERS

ALL_PLANNERS = DEFAULT_PLANNERS + ("tmin",)
PARALLELISM_LEVELS = (1, 4)
SHARD_COUNTS = (1, 2)
QUERY_SEED = 23


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    """Leave no process-wide executor pools behind for later test modules."""
    yield
    parallel.shutdown_morsel_pools()
    shard.shutdown_shard_pools()


@pytest.fixture(scope="module")
def catalog():
    return generate_random_catalog(
        RandomCatalogConfig(seed=5, num_dimensions=2, fact_rows=160, dimension_rows=120)
    )


@pytest.fixture(scope="module")
def query(catalog):
    return generate_random_query(catalog, RandomQueryConfig(seed=QUERY_SEED))


@pytest.fixture()
def _clean_ambient():
    yield
    set_history(None)


def _run(session, query, planner, parallelism, shards):
    return session.execute(
        query, planner=planner, parallelism=parallelism, shards=shards
    )


@pytest.mark.parametrize("planner", ALL_PLANNERS)
def test_history_on_off_byte_identical(catalog, query, planner, tmp_path, _clean_ambient):
    session = Session(catalog, stats_sample_size=200)
    for parallelism in PARALLELISM_LEVELS:
        for shards in SHARD_COUNTS:
            set_history(None)
            bare = _run(session, query, planner, parallelism, shards)
            history = WorkloadHistory(
                journal_path=tmp_path / f"{planner}-{parallelism}-{shards}.journal",
                trace_sample_rate=1.0,
            )
            set_history(history)
            try:
                observed = _run(session, query, planner, parallelism, shards)
            finally:
                set_history(None)
                history.close()
            label = (planner, parallelism, shards)
            if planner == "tmin":
                # tmin keeps the wall-clock winner; row *sets* must match.
                assert observed.sorted_rows() == bare.sorted_rows(), label
            else:
                assert observed.rows == bare.rows, label
                assert observed.plan_description == bare.plan_description, label
                assert observed.iostats.values_read == bare.iostats.values_read, label
                assert (
                    observed.iostats.sequential_scans
                    == bare.iostats.sequential_scans
                ), label
            # History really did record the observed run.
            assert sum(e.calls for e in history.stats.entries()) == 1, label


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_no_double_counting_under_parallelism(catalog, query, shards, tmp_path, _clean_ambient):
    """K runs at parallelism 4 / shards N -> exactly K calls, K journal events.

    Morsel threads and shard worker processes must never publish; the
    coordinator's single publish point is the only writer.
    """
    repetitions = 5
    journal = tmp_path / f"merge-{shards}.journal"
    history = WorkloadHistory(journal_path=journal)
    session = Session(catalog, stats_sample_size=200)
    set_history(history)
    try:
        for _ in range(repetitions):
            session.execute(query, parallelism=4, shards=shards)
    finally:
        set_history(None)
        history.close()
    entries = history.stats.entries()
    assert len(entries) == 1
    assert entries[0].calls == repetitions
    events = [e for e in read_journal(journal) if e["kind"] == "query"]
    assert len(events) == repetitions


def test_service_no_double_counting_with_shards(catalog, query, _clean_ambient):
    """Service + ambient history + shards: still one record per execute."""
    history = WorkloadHistory()
    set_history(history)
    try:
        with QueryService(Session(catalog, stats_sample_size=200), shards=2) as service:
            for _ in range(3):
                service.execute(query)
            service.execute(query, planner="tmin")
    finally:
        set_history(None)
    assert sum(e.calls for e in history.stats.entries()) == 4


def test_injected_regression_flagged_by_cli(tmp_path, capsys):
    """Acceptance: a plan change that quadruples pages_read is reported.

    The journal is built through the real recording path (a
    :class:`WorkloadHistory` writing events), then replayed by the
    ``repro history regressions`` CLI with a fresh detector.
    """
    journal = tmp_path / "history.journal"
    with WorkloadHistory(journal_path=journal, detect_regressions=False) as history:
        for _ in range(8):
            history.record_query(
                "fp-hot", "tcombined", 0.010, 0.009, rows=50,
                pages_read=10, pages_pruned=2, cache_hit=True, plan_hash="plan-a",
            )
        history.record_replan("fp-hot")
        for _ in range(4):
            history.record_query(
                "fp-hot", "tcombined", 0.012, 0.011, rows=50,
                pages_read=40, pages_pruned=0, cache_hit=False, plan_hash="plan-b",
            )
    assert main([
        "history", "regressions", "--journal", str(journal),
        "--format", "json", "--threshold", "2.0",
        "--baseline-calls", "8", "--window", "4",
    ]) == 0
    events = json.loads(capsys.readouterr().out)
    assert len(events) == 1
    event = events[0]
    assert event["fingerprint"] == "fp-hot"
    assert event["metric"] == "pages_read"
    assert event["ratio"] == pytest.approx(4.0)
    assert event["plan_hash"] == "plan-b"
    # The table rendering flags it too.
    assert main(["history", "regressions", "--journal", str(journal)]) == 0
    assert "fp-hot"[:8] in capsys.readouterr().out


def test_live_feedback_replan_reaches_journal(catalog, query, tmp_path):
    """A real drift-driven re-plan lands in the journal as a replan event."""
    journal = tmp_path / "history.journal"
    history = WorkloadHistory(journal_path=journal)
    with QueryService(
        Session(catalog, stats_sample_size=200),
        feedback=True,
        qerror_threshold=1.000001,
        history=history,
    ) as service:
        for _ in range(4):
            service.execute(query)
    history.close()
    kinds = [event["kind"] for event in read_journal(journal)]
    assert "replan" in kinds
    assert kinds.count("query") == 4
    entry = history.stats.entries()[0]
    assert entry.replans >= 1

"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.expr.ast import AndExpr, Comparison, InPredicate, LikePredicate, NotExpr, OrExpr
from repro.sql.lexer import LexError, TokenType, tokenize
from repro.sql.parser import ParseError, parse_expression, parse_query


class TestLexer:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From wHere")
        assert [token.value for token in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(token.type is TokenType.KEYWORD for token in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("movie_Info_idx")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "movie_Info_idx"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [token.value for token in tokens[:-1]] == ["42", "3.14"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("<= >= != <> = < >")
        assert [token.value for token in tokens[:-1]] == ["<=", ">=", "!=", "!=", "=", "<", ">"]

    def test_punctuation_and_dot(self):
        values = [token.value for token in tokenize("t.year, (x)")[:-1]]
        assert values == ["t", ".", "year", ",", "(", "x", ")"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_end_token_present(self):
        assert tokenize("select")[-1].type is TokenType.END


class TestParseExpression:
    def test_simple_comparison(self):
        expr = parse_expression("t.year > 2000")
        assert isinstance(expr, Comparison)
        assert expr.key() == "(t.year > 2000)"

    def test_string_comparison(self):
        expr = parse_expression("t.name = 'Iron Man'")
        assert expr.key() == "(t.name = 'Iron Man')"

    def test_and_or_precedence(self):
        expr = parse_expression("t.a > 1 AND t.b > 2 OR t.c > 3")
        assert isinstance(expr, OrExpr)
        and_child = [child for child in expr.children() if isinstance(child, AndExpr)]
        assert len(and_child) == 1

    def test_parentheses_override_precedence(self):
        expr = parse_expression("t.a > 1 AND (t.b > 2 OR t.c > 3)")
        assert isinstance(expr, AndExpr)

    def test_not(self):
        expr = parse_expression("NOT t.a > 1")
        assert isinstance(expr, NotExpr)

    def test_double_not_collapses(self):
        expr = parse_expression("NOT NOT t.a > 1")
        assert isinstance(expr, Comparison)

    def test_like_and_ilike(self):
        like_expr = parse_expression("t.title LIKE '%man%'")
        ilike_expr = parse_expression("t.title ILIKE '%man%'")
        assert isinstance(like_expr, LikePredicate)
        assert not like_expr.case_insensitive
        assert isinstance(ilike_expr, LikePredicate)
        assert ilike_expr.case_insensitive

    def test_not_like(self):
        expr = parse_expression("t.title NOT LIKE '%man%'")
        assert isinstance(expr, NotExpr)

    def test_in_list(self):
        expr = parse_expression("t.kind IN ('movie', 'tv series')")
        assert isinstance(expr, InPredicate)
        assert expr.values == ("movie", "tv series")

    def test_between(self):
        expr = parse_expression("t.year BETWEEN 1990 AND 2000")
        assert "BETWEEN" in expr.key()

    def test_is_null_and_is_not_null(self):
        assert "IS NULL" in parse_expression("t.year IS NULL").key()
        assert "IS NOT NULL" in parse_expression("t.year IS NOT NULL").key()

    def test_like_pattern_must_be_string(self):
        with pytest.raises(ParseError):
            parse_expression("t.title LIKE 42")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("t.a > 1 banana")

    def test_nested_flattening(self):
        expr = parse_expression("t.a > 1 OR (t.b > 2 OR t.c > 3)")
        assert isinstance(expr, OrExpr)
        assert len(expr.children()) == 3


class TestParseQuery:
    def test_simple_join_query(self):
        query = parse_query(
            "SELECT * FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
            "WHERE t.production_year > 2000"
        )
        assert query.tables == {"t": "title", "mi": "movie_info_idx"}
        assert len(query.join_conditions) == 1
        assert query.predicate is not None
        assert query.select == []

    def test_alias_without_as(self):
        query = parse_query("SELECT * FROM title t WHERE t.production_year > 2000")
        assert query.tables == {"t": "title"}

    def test_table_without_alias_uses_name(self):
        query = parse_query("SELECT * FROM title WHERE title.production_year > 1990")
        assert query.tables == {"title": "title"}

    def test_select_list(self):
        query = parse_query("SELECT t.id, t.title FROM title AS t")
        assert [column.key() for column in query.select] == ["t.id", "t.title"]

    def test_multiple_joins(self):
        query = parse_query(
            "SELECT * FROM a AS x JOIN b AS y ON x.id = y.xid JOIN c AS z ON y.id = z.yid"
        )
        assert len(query.join_conditions) == 2

    def test_multi_condition_join(self):
        query = parse_query("SELECT * FROM a AS x JOIN b AS y ON x.id = y.xid AND x.k = y.k")
        assert len(query.join_conditions) == 2

    def test_inner_join_keyword(self):
        query = parse_query("SELECT * FROM a AS x INNER JOIN b AS y ON x.id = y.xid")
        assert len(query.join_conditions) == 2 - 1

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a AS x JOIN b AS x ON x.id = x.id")

    def test_non_equi_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a AS x JOIN b AS y ON x.id > y.xid")

    def test_where_binds_against_known_aliases(self):
        with pytest.raises(ValueError, match="unknown aliases"):
            parse_query("SELECT * FROM a AS x WHERE z.col > 1")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a AS x EXTRA TOKENS")

    def test_paper_query_roundtrip(self, paper_query_sql):
        query = parse_query(paper_query_sql)
        assert set(query.tables.values()) == {"title", "movie_info_idx"}
        assert query.predicate is not None
        # OR-rooted predicate with two AND clauses.
        children = query.predicate.children()
        assert len(children) == 2

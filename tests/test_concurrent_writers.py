"""Concurrent writers: conflict detection, retry convergence, and the
writers-during-online-compaction differential.

The headline test runs real writer threads committing durable batches while
an online compaction folds the dataset underneath them, with a prepared plan
pinned to the pre-compaction snapshot the whole time.  Afterwards every
planner must return identical results, the prepared plan must still see its
old snapshot, and a cold reload from disk must agree with the live catalog.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Catalog, Session, Table
from repro.engine.session import ALL_PLANNERS
from repro.mutation import Compactor, ConflictError, retry_on_conflict
from repro.mutation.diskops import (
    append_rows_to_saved_catalog,
    delete_rows_from_saved_catalog,
)
from repro.storage.disk import load_catalog, save_catalog


def _table(rows=60):
    return Table.from_dict(
        "t",
        {
            "id": list(range(rows)),
            "v": [float(i % 7) for i in range(rows)],
            "s": [f"n{i % 4}" for i in range(rows)],
        },
    )


def _saved_dataset(tmp_path):
    root = tmp_path / "data"
    save_catalog(Catalog([_table()]), root)
    # History for compaction to fold: one append delta, one delete delta.
    append_rows_to_saved_catalog(
        root, "t", [{"id": 100 + i, "v": float(i % 7), "s": "x"} for i in range(10)]
    )
    delete_rows_from_saved_catalog(root, "t", "t.id < 6")
    return root


class TestFirstCommitterWins:
    def test_loser_raises_conflict_error_with_nothing_applied(self):
        catalog = Catalog([_table()])
        winner = catalog.begin_mutation().insert("t", [{"id": 200, "v": 1.0, "s": "a"}])
        loser = catalog.begin_mutation().insert("t", [{"id": 201, "v": 2.0, "s": "b"}])
        winner.commit()
        rows_after_winner = catalog.get("t").num_rows
        with pytest.raises(ConflictError) as excinfo:
            loser.commit()
        assert excinfo.value.tables == ["t"]
        assert catalog.get("t").num_rows == rows_after_winner  # loser applied nothing

    def test_disjoint_tables_do_not_conflict(self):
        other = Table.from_dict("u", {"k": [1, 2, 3]})
        catalog = Catalog([_table(), other])
        first = catalog.begin_mutation().insert("t", [{"id": 200, "v": 1.0, "s": "a"}])
        second = catalog.begin_mutation().insert("u", [{"k": 9}])
        first.commit()
        second.commit()  # no shared table, no conflict
        assert catalog.get("u").num_rows == 4

    def test_retry_on_conflict_restages_and_wins(self):
        catalog = Catalog([_table()])
        loser = catalog.begin_mutation().insert("t", [{"id": 201, "v": 2.0, "s": "b"}])
        catalog.begin_mutation().insert("t", [{"id": 200, "v": 1.0, "s": "a"}]).commit()
        with pytest.raises(ConflictError):
            loser.commit()
        retry_on_conflict(
            catalog, lambda batch: batch.insert("t", [{"id": 201, "v": 2.0, "s": "b"}])
        )
        ids = {row["id"] for row in catalog.get("t").rows()}
        assert {200, 201} <= ids

    def test_retry_gives_up_after_attempts(self):
        catalog = Catalog([_table()])

        def always_lose(batch):
            batch.insert("t", [{"id": 300, "v": 0.0, "s": "z"}])
            # Another writer sneaks in between staging and commit.
            catalog.begin_mutation().insert(
                "t", [{"id": 400 + catalog.table_version("t"), "v": 0.0, "s": "w"}]
            ).commit()

        with pytest.raises(ConflictError):
            retry_on_conflict(catalog, always_lose, attempts=3, sleep=lambda _t: None)


class TestThreadedRetryConvergence:
    def test_contending_writers_all_converge(self):
        catalog = Catalog([_table()])
        threads, errors = [], []
        barrier = threading.Barrier(8)

        def writer(k):
            def stage(batch):
                batch.insert(
                    "t", [{"id": 10_000 + 10 * k + i, "v": 0.0, "s": "w"} for i in range(3)]
                )

            try:
                barrier.wait()
                for _ in range(4):
                    retry_on_conflict(catalog, stage, attempts=64)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        for k in range(8):
            threads.append(threading.Thread(target=writer, args=(k,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Every writer's last round of ids landed (ids are reused per round,
        # so the final table holds each writer's 3 distinct ids once per
        # version history; live count grew by 8 writers * 4 rounds * 3 rows).
        assert catalog.get("t").num_rows == 60 + 8 * 4 * 3


class TestWritersDuringOnlineCompaction:
    def test_differential_across_planners_and_snapshots(self, tmp_path):
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root, durable=True)
        session = Session(catalog)

        sql = "SELECT t.id, t.v FROM t AS t WHERE t.v = 1.0 OR t.v = 3.0"
        prepared = session.prepare(sql, planner="tcombined")
        before = sorted(session.execute_prepared(prepared).rows)

        writer_ids: set[int] = set()
        errors: list[Exception] = []
        barrier = threading.Barrier(4)

        def writer(k):
            rows = [
                {"id": 10_000 + 100 * k + i, "v": float(i % 7), "s": f"n{i % 4}"}
                for i in range(8)
            ]
            writer_ids.update(row["id"] for row in rows)

            try:
                barrier.wait()
                for row in rows:
                    retry_on_conflict(
                        catalog, lambda batch, row=row: batch.insert("t", [row]), attempts=64
                    )
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        summary = {}

        def compact():
            try:
                barrier.wait()
                summary.update(Compactor(root, catalog=catalog).run(online=True))
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(3)]
        threads.append(threading.Thread(target=compact))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert summary["generation"] == 1

        # The prepared plan pinned its snapshot before compaction and before
        # any writer committed: it must still return exactly the old rows.
        assert sorted(session.execute_prepared(prepared).rows) == before

        # Ground truth from the live table itself.
        table = catalog.get("t")
        mask = table.delete_mask
        positions = np.arange(table.num_rows) if mask is None else np.flatnonzero(~mask)
        live = {row["id"] for row in table.rows(positions)}
        assert writer_ids <= live  # every retried commit converged
        assert live == (set(range(6, 60)) | set(range(100, 110)) | writer_ids)

        # Differential: every planner returns byte-identical rows.
        expected = None
        for planner in ALL_PLANNERS:
            result = session.execute(sql, planner=planner)
            rows = sorted(result.rows)
            if expected is None:
                expected = rows
            assert rows == expected, f"planner {planner} diverged"

        # A cold reload of the compacted dataset agrees with the live catalog.
        reloaded = Session(load_catalog(root))
        assert sorted(reloaded.execute(sql).rows) == expected

    def test_conflicting_batch_across_compaction_retries_cleanly(self, tmp_path):
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root, durable=True)
        stale = catalog.begin_mutation().insert("t", [{"id": 900, "v": 1.0, "s": "q"}])
        # Online compaction rewrites the table layout (physical positions
        # move), bumping the table version: the in-flight batch must lose.
        Compactor(root, catalog=catalog).run(online=True)
        with pytest.raises(ConflictError):
            stale.commit()
        retry_on_conflict(
            catalog, lambda batch: batch.insert("t", [{"id": 900, "v": 1.0, "s": "q"}])
        )
        assert 900 in {row["id"] for row in catalog.get("t").rows()}
        assert 900 in {row["id"] for row in load_catalog(root).get("t").rows()}

"""Cross-planner equivalence on the generated workloads, plus bench-harness smoke tests.

These are the heavyweight integration tests: every planner must produce the
same result set on JOB-style and synthetic disjunctive queries, with and
without tag generalization, because the execution model must never change
query semantics.
"""

import pytest

from repro.bench.job_bench import factor_query, run_job_figure
from repro.bench.report import format_table, geometric_mean
from repro.bench.runner import time_query
from repro.bench.synthetic_bench import run_selectivity_sweep
from repro.workloads.job import job_query_groups
from repro.workloads.synthetic import make_cnf_query, make_dnf_query

#: JOB groups exercised in CI-style integration tests (one per template).
JOB_SAMPLE = (1, 2, 3, 4, 5, 6)


class TestJobEquivalence:
    @pytest.mark.parametrize("group", JOB_SAMPLE)
    def test_all_planners_agree_on_job_group(self, imdb_session, group):
        query = job_query_groups()[group - 1]
        reference = imdb_session.execute(query, planner="bdisj").sorted_rows()
        for planner in ("bpushconj", "tpushdown", "tpullup", "titerpush", "tpushconj", "tcombined"):
            result = imdb_session.execute(query, planner=planner)
            assert result.sorted_rows() == reference, (query.name, planner)

    @pytest.mark.parametrize("group", (1, 6))
    def test_factored_queries_agree_with_originals(self, imdb_session, group):
        query = job_query_groups()[group - 1]
        factored = factor_query(query)
        original_rows = imdb_session.execute(query, planner="tcombined").sorted_rows()
        factored_rows = imdb_session.execute(factored, planner="bpushconj").sorted_rows()
        assert original_rows == factored_rows

    @pytest.mark.parametrize("group", (1, 4))
    def test_naive_tags_agree_on_job_group(self, imdb_session, group):
        query = job_query_groups()[group - 1]
        generalized = imdb_session.execute(query, planner="tpushdown").sorted_rows()
        naive = imdb_session.execute(query, planner="tpushdown", naive_tags=True).sorted_rows()
        assert generalized == naive


class TestSyntheticEquivalence:
    @pytest.mark.parametrize("clauses", (2, 3))
    def test_dnf_planners_agree(self, synthetic_session, clauses):
        query = make_dnf_query(num_root_clauses=clauses, selectivity=0.3)
        reference = synthetic_session.execute(query, planner="bdisj")
        tagged = synthetic_session.execute(query, planner="tcombined")
        assert reference.row_count == tagged.row_count
        assert reference.sorted_rows() == tagged.sorted_rows()

    @pytest.mark.parametrize("clauses", (2, 3))
    def test_cnf_planners_agree(self, synthetic_session, clauses):
        query = make_cnf_query(num_root_clauses=clauses, selectivity=0.3)
        reference = synthetic_session.execute(query, planner="bpushconj")
        tagged = synthetic_session.execute(query, planner="tcombined")
        assert reference.row_count == tagged.row_count

    def test_outer_factor_query_agrees(self, synthetic_session):
        query = make_cnf_query(num_root_clauses=2, selectivity=0.3, outer_factor=0.5)
        reference = synthetic_session.execute(query, planner="bpushconj")
        tagged = synthetic_session.execute(query, planner="tcombined")
        assert reference.row_count == tagged.row_count

    def test_tagged_join_work_shrinks_versus_traditional_cnf(self, synthetic_session):
        """The headline mechanism of Figure 4b: selective tag maps mean the
        tagged join materializes fewer output tuples than the traditional
        join-then-filter pipeline."""
        query = make_cnf_query(num_root_clauses=2, selectivity=0.2)
        tagged = synthetic_session.execute(query, planner="tpushdown")
        traditional = synthetic_session.execute(query, planner="bpushconj")
        assert tagged.metrics.join_output_rows < traditional.metrics.join_output_rows
        assert tagged.row_count == traditional.row_count


class TestBenchHarness:
    def test_run_job_figure_smoke(self, imdb_session):
        result = run_job_figure("3a", groups=[1, 3], repetitions=1, session=imdb_session)
        assert len(result.rows) == 2
        assert result.average_speedup > 0
        table = result.to_table()
        assert "Figure 3a" in table
        assert "speedup" in table

    def test_run_job_figure_overhead_variant(self, imdb_session):
        result = run_job_figure("fig3d", groups=[1], repetitions=1, session=imdb_session)
        assert result.baseline_planner == "bpushconj"
        assert result.tagged_planner == "tpushconj"

    def test_run_job_figure_rejects_unknown(self, imdb_session):
        with pytest.raises(ValueError):
            run_job_figure("9z", session=imdb_session)

    def test_selectivity_sweep_smoke(self):
        result = run_selectivity_sweep(selectivities=(0.2,), table_size=300, repetitions=1)
        assert len(result.rows) == 1
        assert result.rows[0].baseline.row_count == result.rows[0].tagged.row_count
        assert "Figure 4a" in result.to_table()

    def test_time_query_averages(self, paper_session, paper_query):
        measurement = time_query(paper_session, paper_query, "tcombined", repetitions=2)
        assert measurement.repetitions == 2
        assert measurement.row_count == 4
        assert measurement.total_seconds > 0

    def test_time_query_rejects_zero_repetitions(self, paper_session, paper_query):
        with pytest.raises(ValueError):
            time_query(paper_session, paper_query, "tcombined", repetitions=0)

    def test_report_helpers(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in table and "2.500" in table
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

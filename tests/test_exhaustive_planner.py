"""Tests for the TExhaustive (DP join ordering) planner extension."""

from __future__ import annotations

import pytest

from repro.core.planner import PLANNER_REGISTRY, TMIN_CANDIDATES
from repro.core.planner.base import PlannerContext
from repro.core.planner.exhaustive import TExhaustivePlanner
from repro.core.planner.pushdown import TPushdownPlanner
from repro.plan.logical import collect_joins
from repro.workloads.job import job_query
from repro.workloads.synthetic import make_cnf_query, make_dnf_query

from tests.conftest import PAPER_QUERY_MATCHES


class TestRegistration:
    def test_registered_as_texhaustive(self):
        assert PLANNER_REGISTRY["texhaustive"] is TExhaustivePlanner

    def test_not_part_of_tmin_candidates(self):
        assert "texhaustive" not in TMIN_CANDIDATES


class TestPlanShape:
    def test_paper_query_plan_and_result(self, paper_catalog, paper_query, paper_session):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        result = TExhaustivePlanner(context).plan()
        assert result.planner_name == "texhaustive"
        joins = collect_joins(result.plan)
        assert len(joins) == 1

        executed = paper_session.execute(paper_query, planner="texhaustive")
        titles = {
            row[executed.column_names.index("t.title")] for row in executed.rows
        }
        assert titles == PAPER_QUERY_MATCHES

    def test_three_table_synthetic_query(self, synthetic_catalog, synthetic_session):
        query = make_dnf_query(num_root_clauses=2, selectivity=0.3)
        context = PlannerContext.for_query(query, synthetic_catalog)
        result = TExhaustivePlanner(context).plan()
        joins = collect_joins(result.plan)
        assert len(joins) == 2
        assert result.plan.aliases >= {"T0", "T1", "T2"}

        exhaustive = synthetic_session.execute(query, planner="texhaustive")
        greedy = synthetic_session.execute(query, planner="tpushdown")
        assert exhaustive.sorted_rows() == greedy.sorted_rows()

    def test_cost_never_worse_than_greedy_pushdown(self, synthetic_catalog):
        for query in (
            make_dnf_query(num_root_clauses=2, selectivity=0.3),
            make_cnf_query(num_root_clauses=2, selectivity=0.3),
            make_dnf_query(num_root_clauses=3, selectivity=0.5),
        ):
            context = PlannerContext.for_query(query, synthetic_catalog)
            exhaustive_cost = TExhaustivePlanner(context).plan().estimated_cost
            greedy_cost = TPushdownPlanner(context).plan().estimated_cost
            assert exhaustive_cost <= greedy_cost * 1.001

    def test_job_style_query(self, imdb_catalog, imdb_session):
        query = job_query(1)
        exhaustive = imdb_session.execute(query, planner="texhaustive")
        reference = imdb_session.execute(query, planner="tcombined")
        assert exhaustive.sorted_rows() == reference.sorted_rows()

    def test_too_many_tables_rejected(self, paper_catalog):
        from repro.plan.query import Query

        wide_query = Query(tables={f"t{index}": "title" for index in range(11)})
        context = PlannerContext.for_query(wide_query, paper_catalog)
        with pytest.raises(ValueError, match="refuses"):
            TExhaustivePlanner(context).build_plan()

    def test_proper_subsets_enumerates_half_the_lattice(self):
        subsets = list(TExhaustivePlanner._proper_subsets(frozenset({"a", "b", "c"})))
        assert frozenset({"a"}) in subsets
        assert frozenset({"a", "b"}) in subsets
        # Complements are implied, so sets not containing the anchor are absent.
        assert frozenset({"b", "c"}) not in subsets
        assert all("a" in subset for subset in subsets)


class TestSessionIntegration:
    def test_session_accepts_texhaustive(self, paper_session, paper_query_sql):
        result = paper_session.execute(paper_query_sql, planner="texhaustive")
        assert result.planner_name == "texhaustive"
        assert result.row_count == len(PAPER_QUERY_MATCHES)

    def test_explain_texhaustive(self, paper_session, paper_query_sql):
        rendered = paper_session.explain(paper_query_sql, planner="texhaustive")
        assert "Join" in rendered and "Scan" in rendered

"""Unit tests for tags."""

import pytest

from repro.core.tags import Tag
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN


class TestConstruction:
    def test_empty_tag_singleton_behaviour(self):
        assert Tag.empty().is_empty()
        assert Tag.empty() == Tag()
        assert len(Tag.empty()) == 0

    def test_single(self):
        tag = Tag.single("p", TRUE)
        assert tag.get("p") is TRUE
        assert len(tag) == 1

    def test_values_coerced_to_truth_values(self):
        tag = Tag({"p": 1, "q": 0})
        assert tag.get("p") is TRUE
        assert tag.get("q") is FALSE

    def test_ordering_does_not_matter(self):
        assert Tag({"a": TRUE, "b": FALSE}) == Tag({"b": FALSE, "a": TRUE})

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {Tag({"p": TRUE}): "x"}
        assert mapping[Tag({"p": TRUE})] == "x"


class TestAccess:
    def test_get_missing_returns_none(self):
        assert Tag({"p": TRUE}).get("q") is None

    def test_contains(self):
        tag = Tag({"p": TRUE})
        assert "p" in tag
        assert "q" not in tag

    def test_keys_and_items(self):
        tag = Tag({"b": FALSE, "a": TRUE})
        assert tag.keys() == ["a", "b"]
        assert dict(tag.items()) == {"a": TRUE, "b": FALSE}

    def test_as_dict_is_a_copy(self):
        tag = Tag({"p": TRUE})
        d = tag.as_dict()
        d["p"] = FALSE
        assert tag.get("p") is TRUE

    def test_repr(self):
        assert repr(Tag()) == "{}"
        assert "p = T" in repr(Tag({"p": TRUE}))
        assert "q = U" in repr(Tag({"q": UNKNOWN}))


class TestDerivation:
    def test_with_assignment_adds(self):
        tag = Tag({"p": TRUE}).with_assignment("q", FALSE)
        assert tag.get("q") is FALSE
        assert tag.get("p") is TRUE

    def test_with_assignment_overwrites(self):
        tag = Tag({"p": TRUE}).with_assignment("p", FALSE)
        assert tag.get("p") is FALSE

    def test_with_assignment_returns_new_object(self):
        original = Tag({"p": TRUE})
        derived = original.with_assignment("q", TRUE)
        assert "q" not in original
        assert "q" in derived

    def test_union_merges_disjoint(self):
        merged = Tag({"p": TRUE}).union(Tag({"q": FALSE}))
        assert merged.get("p") is TRUE
        assert merged.get("q") is FALSE

    def test_union_with_agreeing_overlap(self):
        merged = Tag({"p": TRUE}).union(Tag({"p": TRUE, "q": FALSE}))
        assert len(merged) == 2

    def test_union_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting"):
            Tag({"p": TRUE}).union(Tag({"p": FALSE}))

    def test_union_with_empty_is_identity(self):
        tag = Tag({"p": TRUE})
        assert tag.union(Tag.empty()) == tag
        assert Tag.empty().union(tag) == tag

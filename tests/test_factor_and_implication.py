"""Unit tests for common-subexpression factoring and predicate implication."""

import pytest

from repro.core.factor import factor_common_subexpressions
from repro.core.implication import implied_truth_value, implies, negate, refutes
from repro.expr.ast import AndExpr
from repro.expr.builders import and_, between, col, ilike, in_, lit, or_
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN


def p(column, op, value):
    ref = col("t", column)
    return {"<": ref < lit(value), ">": ref > lit(value), ">=": ref >= lit(value),
            "<=": ref <= lit(value), "=": ref.eq(value), "!=": ref.ne(value)}[op]


class TestFactoring:
    def test_common_parts_pulled_out(self):
        a = p("a", ">", 1)
        b = p("b", ">", 2)
        c = p("c", ">", 3)
        d = p("d", ">", 4)
        expr = or_(and_(a, b, c), and_(a, b, d))
        factored = factor_common_subexpressions(expr)
        assert isinstance(factored, AndExpr)
        child_keys = {child.key() for child in factored.children()}
        assert a.key() in child_keys
        assert b.key() in child_keys
        assert or_(c, d).key() in child_keys

    def test_no_common_parts_returns_original(self):
        expr = or_(and_(p("a", ">", 1), p("b", ">", 2)), and_(p("c", ">", 3), p("d", ">", 4)))
        assert factor_common_subexpressions(expr) == expr

    def test_non_or_root_unchanged(self):
        expr = and_(p("a", ">", 1), p("b", ">", 2))
        assert factor_common_subexpressions(expr) == expr

    def test_fully_common_clause_subsumes_residual(self):
        a = p("a", ">", 1)
        b = p("b", ">", 2)
        # (a) OR (a AND b)  ==  a
        expr = or_(a, and_(a, b))
        assert factor_common_subexpressions(expr) == a

    def test_single_residual_clause_not_wrapped_in_or(self):
        a = p("a", ">", 1)
        b = p("b", ">", 2)
        c = p("c", ">", 3)
        expr = or_(and_(a, b), and_(a, b, c))
        factored = factor_common_subexpressions(expr)
        # (a AND b) OR (a AND b AND c) == a AND b
        assert factored == and_(a, b)

    def test_semantics_preserved_on_paper_query(self, paper_session, paper_query):
        factored_predicate = factor_common_subexpressions(paper_query.predicate)
        from repro.plan.query import Query

        factored_query = Query(
            tables=dict(paper_query.tables),
            join_conditions=list(paper_query.join_conditions),
            predicate=factored_predicate,
        )
        original = paper_session.execute(paper_query, planner="tcombined")
        rewritten = paper_session.execute(factored_query, planner="tcombined")
        assert original.row_count == rewritten.row_count


class TestImplies:
    @pytest.mark.parametrize(
        "left, right, expected",
        [
            (p("year", ">", 2000), p("year", ">", 1980), True),
            (p("year", ">", 1980), p("year", ">", 2000), False),
            (p("year", ">", 2000), p("year", ">=", 2000), True),
            (p("year", ">=", 2000), p("year", ">", 2000), False),
            (p("year", ">=", 2001), p("year", ">", 2000), True),
            (p("year", "<", 1950), p("year", "<", 1980), True),
            (p("year", "<", 1980), p("year", "<=", 1980), True),
            (p("year", "<=", 1979), p("year", "<", 1980), True),
            (p("year", "=", 1994), p("year", ">", 1980), True),
            (p("year", "=", 1994), p("year", ">", 1994), False),
            (p("year", "=", 1994), p("year", "!=", 2000), True),
            (p("year", "!=", 2000), p("year", "!=", 2000), True),
            (p("year", ">", 2000), p("year", "!=", 1999), True),
            (p("year", ">", 2000), p("year", "!=", 2001), False),
        ],
    )
    def test_comparison_implication_table(self, left, right, expected):
        assert implies(left, right) is expected

    def test_identical_predicates_imply_each_other(self):
        assert implies(p("year", ">", 2000), p("year", ">", 2000))

    def test_different_columns_never_imply(self):
        assert not implies(p("year", ">", 2000), p("score", ">", 1980))

    def test_string_comparisons(self):
        assert implies(col("t", "s") > lit("m"), col("t", "s") > lit("a"))
        assert not implies(col("t", "s") > lit("a"), col("t", "s") > lit("m"))

    def test_mixed_types_are_not_compared(self):
        assert not implies(col("t", "s") > lit("m"), col("t", "s") > lit(3))

    def test_in_implies_comparison(self):
        assert implies(in_(col("t", "year"), [1994, 1999]), p("year", ">", 1990))
        assert not implies(in_(col("t", "year"), [1985, 1999]), p("year", ">", 1990))

    def test_in_subset_implies_superset(self):
        assert implies(in_(col("t", "k"), ["a"]), in_(col("t", "k"), ["a", "b"]))
        assert not implies(in_(col("t", "k"), ["a", "c"]), in_(col("t", "k"), ["a", "b"]))

    def test_equality_implies_in(self):
        assert implies(col("t", "k").eq("a"), in_(col("t", "k"), ["a", "b"]))

    def test_between_implies_bounds(self):
        predicate = between(col("t", "year"), 1990, 2000)
        assert implies(predicate, p("year", ">", 1980))
        assert implies(predicate, p("year", "<", 2010))
        assert not implies(predicate, p("year", ">", 1995))

    def test_like_is_never_implied(self):
        assert not implies(p("year", ">", 2000), ilike(col("t", "title"), "%x%"))


class TestRefutesAndImpliedValue:
    def test_refutes_disjoint_ranges(self):
        assert refutes(p("year", ">", 2000), p("year", "<", 1990))
        assert refutes(p("year", "<", 1990), p("year", ">", 2000))
        assert not refutes(p("year", ">", 2000), p("year", ">", 1990))

    def test_refutes_equality(self):
        assert refutes(p("year", "=", 1994), p("year", "=", 1995))
        assert not refutes(p("year", "=", 1994), p("year", "=", 1994))

    def test_negate(self):
        assert negate(p("year", ">", 2000)).key() == p("year", "<=", 2000).key()
        assert negate(ilike(col("t", "title"), "%x%")) is None

    def test_implied_truth_value_from_true_fact(self):
        facts = [(p("year", ">", 2000), TRUE)]
        assert implied_truth_value(p("year", ">", 1980), facts) is TRUE
        assert implied_truth_value(p("year", "<", 1990), facts) is FALSE
        assert implied_truth_value(p("score", ">", 5), facts) is None

    def test_implied_truth_value_from_false_fact(self):
        # year > 1980 = FALSE means year <= 1980, which refutes year > 2000.
        facts = [(p("year", ">", 1980), FALSE)]
        assert implied_truth_value(p("year", ">", 2000), facts) is FALSE
        assert implied_truth_value(p("year", "<", 1985), facts) is TRUE

    def test_unknown_facts_are_ignored(self):
        facts = [(p("year", ">", 2000), UNKNOWN)]
        assert implied_truth_value(p("year", ">", 1980), facts) is None

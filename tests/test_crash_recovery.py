"""Crash-recovery matrix: kill real CLI runs at every fault point.

Each case copies a saved dataset, launches ``repro insert`` / ``repro delete``
/ ``repro compact`` in a subprocess with ``REPRO_FAULT_POINT`` set, asserts
the process died with :data:`~repro.testing.faults.CRASH_EXIT_CODE`, and then
reopens the crashed dataset.  Recovery must land exactly on the last committed
batch:

* a **pre** point (crash before the WAL commit marker was durable) recovers
  to the state before the command — byte-identical to the pristine copy;
* a **post** point (crash after the marker) recovers to the state after —
  byte-identical to an oracle that ran the same command without a fault.

Compaction points are compared logically instead of byte-wise: compaction
changes the physical layout on purpose, and a pre-swap crash legitimately
leaves (ignored, later garbage-collected) staging directories behind.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Catalog, Table
from repro.mutation.recovery import recover_saved_catalog
from repro.mutation.wal import wal_status
from repro.storage.disk import load_catalog, save_catalog
from repro.testing import faults

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: command name -> fault points exercised against it.  ``pre``/``post``
#: expectations come from :data:`repro.testing.faults.FAULT_POINTS`.
CRASH_MATRIX: dict[str, list[str]] = {
    "insert": [
        "wal.partial_record",
        "wal.after_record",
        "wal.before_fsync",
        "segment.partial_write",
        "manifest.before_rename",
    ],
    "delete": [
        "wal.partial_record",
        "wal.after_record",
        "wal.before_fsync",
        "manifest.before_rename",
    ],
    "compact": [
        "compact.before_swap",
        "compact.before_wal_truncate",
        "manifest.before_rename",
    ],
}

COMMANDS: dict[str, list[str]] = {
    "insert": [
        "insert", "--table", "t",
        "--values", '[{"id": 100, "v": 1.0, "s": "x"}]',
    ],
    "delete": ["delete", "--table", "t", "--where", "t.id < 5"],
    "compact": ["compact", "--online"],
}


def test_matrix_covers_every_fault_point():
    """Adding a fault point without a matrix entry fails here."""
    exercised = {point for points in CRASH_MATRIX.values() for point in points}
    assert exercised == set(faults.FAULT_POINTS)


def _make_dataset(root: Path) -> None:
    catalog = Catalog(
        [
            Table.from_dict(
                "t",
                {
                    "id": list(range(30)),
                    "v": [float(i % 7) for i in range(30)],
                    "s": [f"n{i % 4}" for i in range(30)],
                },
            )
        ]
    )
    save_catalog(catalog, root)
    # Give the dataset WAL history so crashes land mid-stream, not on a
    # pristine first transaction, and give compaction something to fold.
    _run("insert", root)
    _run(
        "insert",
        root,
        argv=["insert", "--table", "t", "--values", '[{"id": 101, "v": 3.0, "s": "y"}]'],
    )
    _run("delete", root, argv=["delete", "--table", "t", "--where", "t.id > 27"])


def _run(command: str, root: Path, fault: str | None = None, argv=None) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop(faults.FAULT_ENV, None)
    if fault is not None:
        env[faults.FAULT_ENV] = fault
    argv = list(argv if argv is not None else COMMANDS[command])
    argv[1:1] = ["--data", str(root)]
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if fault is None:
        assert result.returncode == 0, result.stderr
    return result.returncode


def _tree(root: Path) -> dict[str, bytes]:
    """Every file under ``root`` as relative-path -> content bytes."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def _live_rows(root: Path):
    table = load_catalog(root).get("t")
    mask = table.delete_mask
    positions = np.arange(table.num_rows) if mask is None else np.flatnonzero(~mask)
    return sorted(tuple(sorted(row.items())) for row in table.rows(positions))


def _case_id(case):
    command, point = case
    return f"{command}-{point}"


CASES = [(command, point) for command, points in CRASH_MATRIX.items() for point in points]


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_killed_command_recovers_to_last_committed_batch(case, tmp_path):
    command, point = case
    outcome = faults.FAULT_POINTS[point]

    crashed = tmp_path / "crashed"
    _make_dataset(crashed)
    pristine = tmp_path / "pristine"
    shutil.copytree(crashed, pristine)

    returncode = _run(command, crashed, fault=point)
    assert returncode == faults.CRASH_EXIT_CODE, f"{command} did not crash at {point}"

    # Reopen the crashed dataset: load_catalog recovers automatically; run
    # the explicit entry point too so its summary is part of the contract.
    summary = recover_saved_catalog(crashed)
    assert summary["wal"] is True
    status = wal_status(crashed)
    assert status["pending_txns"] == 0
    assert status["tail_bytes"] == 0

    if command == "compact":
        # Compaction never changes logical content; both pre and post points
        # must recover to exactly the pristine rows, and the dataset must
        # remain fully operational (a later compact succeeds).
        assert _live_rows(crashed) == _live_rows(pristine)
        assert _run("compact", crashed) == 0
        assert _live_rows(crashed) == _live_rows(pristine)
        return

    oracle = tmp_path / "oracle"
    shutil.copytree(pristine, oracle)
    _run(command, oracle)

    if outcome == "pre":
        # The batch never committed: recovery rolls the dataset back to the
        # pristine bytes (the torn WAL tail is truncated away).
        assert _tree(crashed) == _tree(pristine)
        assert _live_rows(crashed) == _live_rows(pristine)
    else:
        # The batch committed in the WAL: recovery replays it and the dataset
        # is byte-identical to the never-crashed oracle.
        assert _tree(crashed) == _tree(oracle)
        assert _live_rows(crashed) == _live_rows(oracle)

    # Either way the recovered dataset keeps working: one more insert lands.
    before = len(_live_rows(crashed))
    _run(
        "insert",
        crashed,
        argv=["insert", "--table", "t", "--values", '[{"id": 300, "v": 9.0, "s": "q"}]'],
    )
    assert len(_live_rows(crashed)) == before + 1

"""Unit tests for repro.storage.bitmap."""

import numpy as np
import pytest

from repro.storage.bitmap import Bitmap


class TestConstruction:
    def test_empty_has_no_bits_set(self):
        bitmap = Bitmap.empty(10)
        assert bitmap.size == 10
        assert bitmap.count() == 0
        assert bitmap.is_empty()

    def test_full_has_all_bits_set(self):
        bitmap = Bitmap.full(5)
        assert bitmap.count() == 5
        assert not bitmap.is_empty()

    def test_from_positions(self):
        bitmap = Bitmap.from_positions(8, [1, 3, 5])
        assert bitmap.count() == 3
        assert list(bitmap.positions()) == [1, 3, 5]

    def test_from_positions_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Bitmap.from_positions(4, [5])

    def test_from_positions_negative_raises(self):
        with pytest.raises(IndexError):
            Bitmap.from_positions(4, [-1])

    def test_from_positions_empty(self):
        bitmap = Bitmap.from_positions(4, [])
        assert bitmap.is_empty()

    def test_from_mask_copies(self):
        mask = np.array([True, False, True])
        bitmap = Bitmap.from_mask(mask)
        mask[0] = False
        assert bitmap.get(0) is True

    def test_non_bool_input_is_coerced(self):
        bitmap = Bitmap(np.array([1, 0, 1], dtype=np.int64))
        assert bitmap.count() == 2


class TestIntrospection:
    def test_selectivity(self):
        assert Bitmap.from_positions(10, [0, 1]).selectivity() == pytest.approx(0.2)

    def test_selectivity_of_empty_size(self):
        assert Bitmap.empty(0).selectivity() == 0.0

    def test_get(self):
        bitmap = Bitmap.from_positions(4, [2])
        assert bitmap.get(2) is True
        assert bitmap.get(1) is False

    def test_len_and_iter(self):
        bitmap = Bitmap.from_positions(6, [0, 5])
        assert len(bitmap) == 6
        assert list(bitmap) == [0, 5]

    def test_repr_mentions_counts(self):
        assert "set=2" in repr(Bitmap.from_positions(4, [0, 1]))

    def test_equality(self):
        assert Bitmap.from_positions(4, [1]) == Bitmap.from_positions(4, [1])
        assert Bitmap.from_positions(4, [1]) != Bitmap.from_positions(4, [2])
        assert Bitmap.from_positions(4, [1]) != Bitmap.from_positions(5, [1])

    def test_equality_with_other_type(self):
        assert Bitmap.empty(2).__eq__(42) is NotImplemented


class TestSetAlgebra:
    def test_union(self):
        left = Bitmap.from_positions(6, [0, 1])
        right = Bitmap.from_positions(6, [1, 4])
        assert list((left | right).positions()) == [0, 1, 4]

    def test_intersection(self):
        left = Bitmap.from_positions(6, [0, 1, 2])
        right = Bitmap.from_positions(6, [1, 2, 3])
        assert list((left & right).positions()) == [1, 2]

    def test_difference(self):
        left = Bitmap.from_positions(6, [0, 1, 2])
        right = Bitmap.from_positions(6, [1])
        assert list((left - right).positions()) == [0, 2]

    def test_complement(self):
        bitmap = Bitmap.from_positions(4, [0, 2])
        assert list((~bitmap).positions()) == [1, 3]

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError, match="size mismatch"):
            Bitmap.empty(3).union(Bitmap.empty(4))

    def test_operations_do_not_mutate_operands(self):
        left = Bitmap.from_positions(4, [0])
        right = Bitmap.from_positions(4, [1])
        _ = left | right
        assert left.count() == 1
        assert right.count() == 1

    def test_union_all(self):
        bitmaps = [Bitmap.from_positions(5, [i]) for i in range(3)]
        assert Bitmap.union_all(bitmaps).count() == 3

    def test_union_all_empty_requires_size(self):
        with pytest.raises(ValueError):
            Bitmap.union_all([])

    def test_union_all_empty_with_size(self):
        assert Bitmap.union_all([], size=7).size == 7

"""Shared fixtures: the paper's running example, plus small generated datasets."""

from __future__ import annotations

import pytest

from repro import Catalog, Session, Table
from repro.plan.query import JoinCondition, Query
from repro.expr.builders import and_, col, lit, or_
from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog


@pytest.fixture(scope="session")
def paper_catalog() -> Catalog:
    """The seven movies from the paper's Examples 1-4."""
    title = Table.from_dict(
        "title",
        {
            "id": [1, 2, 3, 4, 5, 6, 7],
            "title": [
                "The Dark Knight",
                "Evolution",
                "The Shawshank Redemption",
                "Pulp Fiction",
                "The Godfather",
                "Beetlejuice",
                "Avatar",
            ],
            "production_year": [2008, 2001, 1994, 1994, 1972, 1988, 2009],
        },
    )
    movie_info_idx = Table.from_dict(
        "movie_info_idx",
        {
            "movie_id": [1, 3, 4, 5, 6, 7],
            "info": [9.0, 9.3, 8.9, 9.2, 7.5, 7.9],
        },
    )
    return Catalog([title, movie_info_idx])


@pytest.fixture(scope="session")
def paper_query() -> Query:
    """Query 1 from the paper, built programmatically."""
    predicate = or_(
        and_(col("t", "production_year") > lit(2000), col("mi_idx", "info") > lit(7.0)),
        and_(col("t", "production_year") > lit(1980), col("mi_idx", "info") > lit(8.0)),
    )
    return Query(
        tables={"t": "title", "mi_idx": "movie_info_idx"},
        join_conditions=[JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))],
        predicate=predicate,
        name="query1",
    )


@pytest.fixture(scope="session")
def paper_session(paper_catalog: Catalog) -> Session:
    """A session over the paper's example catalog."""
    return Session(paper_catalog)


PAPER_QUERY_SQL = """
SELECT t.title, t.production_year, mi_idx.info
FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id
WHERE (t.production_year > 2000 AND mi_idx.info > 7.0)
   OR (t.production_year > 1980 AND mi_idx.info > 8.0)
"""

#: Titles that satisfy Query 1 (the paper's Example 4 output).
PAPER_QUERY_MATCHES = {
    "The Dark Knight",
    "Avatar",
    "The Shawshank Redemption",
    "Pulp Fiction",
}


@pytest.fixture(scope="session")
def paper_query_sql() -> str:
    """Query 1 as SQL text."""
    return PAPER_QUERY_SQL


@pytest.fixture(scope="session")
def imdb_catalog() -> Catalog:
    """A small synthetic IMDB-like catalog (shared across integration tests)."""
    return generate_imdb_catalog(scale=0.015, seed=11)


@pytest.fixture(scope="session")
def imdb_session(imdb_catalog: Catalog) -> Session:
    """A session over the small IMDB-like catalog."""
    return Session(imdb_catalog, stats_sample_size=4_000)


@pytest.fixture(scope="session")
def synthetic_catalog() -> Catalog:
    """A small synthetic T0/T1/T2 catalog (shared across integration tests)."""
    return generate_synthetic_catalog(SyntheticConfig(table_size=800, seed=3))


@pytest.fixture(scope="session")
def synthetic_session(synthetic_catalog: Catalog) -> Session:
    """A session over the small synthetic catalog."""
    return Session(synthetic_catalog, stats_sample_size=800)

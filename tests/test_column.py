"""Unit tests for columns and simulated page-granular reads."""

import numpy as np
import pytest

from repro.storage.bitmap import Bitmap
from repro.storage.column import Column, ColumnType, column_from_iterable
from repro.storage.iostats import IOStats
from repro.storage.pagecache import LFUPageCache


class TestTypeInference:
    def test_int_inference(self):
        assert Column("c", [1, 2, 3]).ctype is ColumnType.INT

    def test_float_inference(self):
        assert Column("c", [1.5, 2.5]).ctype is ColumnType.FLOAT

    def test_string_inference(self):
        assert Column("c", ["a", "b"]).ctype is ColumnType.STRING

    def test_bool_inference(self):
        assert Column("c", [True, False]).ctype is ColumnType.BOOL

    def test_nulls_skipped_for_inference(self):
        assert Column("c", [None, 3, None]).ctype is ColumnType.INT

    def test_all_null_defaults_to_string(self):
        assert Column("c", [None, None]).ctype is ColumnType.STRING

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            Column("c", [object()])

    def test_explicit_type_overrides_inference(self):
        column = Column("c", [1, 2], ctype=ColumnType.FLOAT)
        assert column.ctype is ColumnType.FLOAT
        assert column.data.dtype == np.float64


class TestNulls:
    def test_none_values_become_nulls(self):
        column = Column("c", [1, None, 3])
        assert column.has_nulls()
        assert list(column.null_mask) == [False, True, False]

    def test_explicit_null_mask(self):
        column = Column("c", [1, 2, 3], null_mask=np.array([False, True, False]))
        assert column.has_nulls()

    def test_null_mask_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Column("c", [1, 2], null_mask=np.array([True]))

    def test_values_list_restores_none(self):
        assert Column("c", [1, None, 3]).values_list() == [1, None, 3]


class TestStats:
    def test_distinct_count(self):
        assert Column("c", [1, 1, 2, 3, 3]).distinct_count() == 3

    def test_distinct_count_ignores_nulls(self):
        assert Column("c", [1, None, 1]).distinct_count() == 1

    def test_min_max(self):
        assert Column("c", [5, 1, 9]).min_max() == (1, 9)

    def test_min_max_all_null(self):
        assert Column("c", [None, None], ctype=ColumnType.INT).min_max() is None

    def test_num_pages(self):
        column = Column("c", list(range(2500)), page_size=1000)
        assert column.num_pages == 3

    def test_num_pages_empty(self):
        assert Column("c", [], ctype=ColumnType.INT).num_pages == 0

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            Column("c", [1], page_size=0)


class TestReads:
    def test_full_read(self):
        column = Column("c", [10, 20, 30])
        values, nulls = column.read(iostats=IOStats())
        assert list(values) == [10, 20, 30]
        assert not nulls.any()

    def test_bitmap_read_returns_selected_rows(self):
        column = Column("c", [10, 20, 30, 40])
        stats = IOStats()
        values, _ = column.read(Bitmap.from_positions(4, [1, 3]), iostats=stats)
        assert list(values) == [20, 40]
        assert stats.values_read == 2

    def test_bitmap_size_mismatch_raises(self):
        column = Column("c", [1, 2, 3])
        with pytest.raises(ValueError):
            column.read(Bitmap.empty(5), iostats=IOStats())

    def test_read_at_repeats_positions(self):
        column = Column("c", [10, 20, 30])
        values, _ = column.read_at(np.array([2, 2, 0]), iostats=IOStats())
        assert list(values) == [30, 30, 10]

    def test_full_read_counts_sequential_scan(self):
        column = Column("c", list(range(5000)), page_size=1000)
        stats = IOStats()
        column.read(iostats=stats)
        assert stats.sequential_scans == 1
        assert stats.pages_read == 5

    def test_selective_read_touches_only_needed_pages(self):
        column = Column("c", list(range(10_000)), page_size=1000)
        stats = IOStats()
        column.read(Bitmap.from_positions(10_000, [5, 1500]), iostats=stats)
        assert stats.selective_reads == 1
        assert stats.pages_read == 2

    def test_high_selectivity_read_falls_back_to_sequential(self):
        column = Column("c", list(range(1000)), page_size=100)
        stats = IOStats()
        column.read(Bitmap.from_positions(1000, range(500)), iostats=stats)
        assert stats.sequential_scans == 1

    def test_cache_hits_are_recorded(self):
        column = Column("c", list(range(10_000)), page_size=1000)
        cache = LFUPageCache(capacity=16)
        stats = IOStats()
        bitmap = Bitmap.from_positions(10_000, [1, 2, 3])
        column.read(bitmap, cache=cache, iostats=stats)
        column.read(bitmap, cache=cache, iostats=stats)
        assert stats.pages_hit >= 1

    def test_read_nulls_propagated(self):
        column = Column("c", [1.0, None, 3.0])
        _, nulls = column.read_at(np.array([1]), iostats=IOStats())
        assert nulls[0]


class TestConvenience:
    def test_column_from_iterable(self):
        column = column_from_iterable("c", (x * x for x in range(4)))
        assert len(column) == 4
        assert column.data[3] == 9

    def test_repr(self):
        assert "rows=2" in repr(Column("c", [1, 2]))

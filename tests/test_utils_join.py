"""Unit tests for the join kernel and key encoding."""

import numpy as np
import pytest

from repro.utils.join import equi_join_indices
from repro.utils.keys import composite_keys


def brute_force_pairs(left, right):
    return sorted(
        (i, j)
        for i, l in enumerate(left)
        for j, r in enumerate(right)
        if l == r and l >= 0 and r >= 0
    )


class TestEquiJoin:
    def test_simple_match(self):
        left = np.array([1, 2, 3])
        right = np.array([2, 3, 4])
        li, ri = equi_join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == [(1, 0), (2, 1)]

    def test_duplicates_produce_all_pairs(self):
        left = np.array([1, 1, 2])
        right = np.array([1, 2, 2])
        li, ri = equi_join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == brute_force_pairs(left, right)

    def test_no_matches(self):
        li, ri = equi_join_indices(np.array([1, 2]), np.array([3, 4]))
        assert li.size == 0 and ri.size == 0

    def test_empty_inputs(self):
        empty = np.array([], dtype=np.int64)
        li, ri = equi_join_indices(empty, np.array([1]))
        assert li.size == 0
        li, ri = equi_join_indices(np.array([1]), empty)
        assert li.size == 0

    def test_negative_keys_never_match(self):
        left = np.array([-1, 2])
        right = np.array([-1, 2])
        li, ri = equi_join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == [(1, 1)]

    def test_all_negative(self):
        li, ri = equi_join_indices(np.array([-1, -1]), np.array([-1]))
        assert li.size == 0

    def test_matches_brute_force_on_random_input(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 20, size=200)
        right = rng.integers(0, 20, size=150)
        li, ri = equi_join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == brute_force_pairs(left, right)

    def test_skewed_keys(self):
        left = np.zeros(50, dtype=np.int64)
        right = np.zeros(30, dtype=np.int64)
        li, _ = equi_join_indices(left, right)
        assert li.size == 50 * 30


class TestCompositeKeys:
    def _column(self, values, nulls=None):
        values = np.asarray(values)
        if nulls is None:
            nulls = np.zeros(len(values), dtype=bool)
        return values, np.asarray(nulls, dtype=bool)

    def test_single_int_column(self):
        left, right = composite_keys(
            [self._column([1, 2, 3])], [self._column([3, 1])]
        )
        li, ri = equi_join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == [(0, 1), (2, 0)]

    def test_string_columns(self):
        left, right = composite_keys(
            [self._column(np.array(["a", "b"], dtype=object))],
            [self._column(np.array(["b", "c"], dtype=object))],
        )
        li, ri = equi_join_indices(left, right)
        assert list(zip(li.tolist(), ri.tolist())) == [(1, 0)]

    def test_nulls_get_negative_keys(self):
        left, _right = composite_keys(
            [self._column([1, 2], nulls=[False, True])], [self._column([1, 2])]
        )
        assert left[1] == -1

    def test_composite_two_columns(self):
        left, right = composite_keys(
            [self._column([1, 1, 2]), self._column([10, 20, 10])],
            [self._column([1, 2]), self._column([20, 10])],
        )
        li, ri = equi_join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == [(1, 0), (2, 1)]

    def test_equal_tuples_get_equal_codes_across_sides(self):
        left, right = composite_keys(
            [self._column([7, 9])], [self._column([9, 7])]
        )
        assert left[0] == right[1]
        assert left[1] == right[0]

    def test_mismatched_condition_counts_rejected(self):
        with pytest.raises(ValueError):
            composite_keys([self._column([1])], [])

    def test_requires_at_least_one_column(self):
        with pytest.raises(ValueError):
            composite_keys([], [])

"""Unit tests for the access-path subsystem (zone maps, indexes, pruning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, Session, Table
from repro.access.chooser import AccessPathChooser
from repro.access.dictionary import DictionaryEncoding
from repro.access.indexes import BitmapIndex, SortedIndex, build_index
from repro.access.manager import AccessPathManager, ensure_access_manager
from repro.access.pruning import implied_alias_predicate
from repro.access.zonemap import build_zone_map
from repro.expr.builders import and_, col, in_, is_null, like, lit, not_, or_
from repro.expr import three_valued as tv
from repro.expr.eval import RowBatch
from repro.optimizer import explain_analyze_report
from repro.sql import parse_query

PAGE = 8  # small pages so a few hundred rows span many pages


def _column(name, values, **kwargs):
    return Column(name, values, page_size=PAGE, **kwargs)


@pytest.fixture()
def clustered_table() -> Table:
    """96 rows over 12 pages; ``ts`` is clustered, ``cat`` is low-distinct."""
    n = 96
    return Table(
        "events",
        [
            _column("id", list(range(n))),
            _column("ts", list(range(100, 100 + n))),
            _column("cat", [f"c{i % 4}" for i in range(n)]),
            _column("score", [float(i % 10) if i % 7 else None for i in range(n)]),
        ],
    )


def _true_rows(table: Table, predicate) -> set[int]:
    batch = RowBatch.for_base_table("e", table)
    truth = predicate.evaluate(batch)
    return set(np.flatnonzero(tv.is_true(truth)).tolist())


# --------------------------------------------------------------------------- #
# Zone maps
# --------------------------------------------------------------------------- #
class TestZoneMap:
    def test_range_pruning_is_sound_and_tight_on_clustered_data(self, clustered_table):
        zone_map = build_zone_map(clustered_table.column("ts"))
        predicate = col("e", "ts") < lit(110)  # rows 0..9 -> pages 0 and 1
        mask = zone_map.page_mask(predicate)
        assert mask is not None
        assert mask.tolist() == [True, True] + [False] * (zone_map.num_pages - 2)

    @pytest.mark.parametrize(
        "predicate",
        [
            col("e", "ts") < lit(110),
            col("e", "ts") >= lit(180),
            col("e", "ts").eq(133),
            lit(150) > col("e", "ts"),
            in_(col("e", "cat"), ["c1", "nope"]),
            like(col("e", "cat"), "c2%"),
            is_null(col("e", "score")),
            is_null(col("e", "score"), negated=True),
        ],
    )
    def test_kept_pages_cover_every_true_row(self, clustered_table, predicate):
        column_name = next(
            name for name in ("ts", "cat", "score") if name in predicate.key()
        )
        zone_map = build_zone_map(clustered_table.column(column_name))
        mask = zone_map.row_mask(predicate, clustered_table.num_rows)
        assert mask is not None
        kept = set(np.flatnonzero(mask).tolist())
        assert _true_rows(clustered_table, predicate) <= kept

    def test_unsupported_shapes_return_none(self, clustered_table):
        zone_map = build_zone_map(clustered_table.column("ts"))
        assert zone_map.page_mask(col("e", "ts").ne(110)) is None  # != unsound w/ NaN
        assert zone_map.page_mask(col("e", "ts") < col("e", "id")) is None
        assert zone_map.page_mask(like(col("e", "cat"), "%2")) is None

    def test_type_mismatch_degrades_to_no_pruning(self, clustered_table):
        zone_map = build_zone_map(clustered_table.column("cat"))
        assert zone_map.page_mask(col("e", "cat") < lit(5)) is None

    def test_round_trip_through_arrays(self, clustered_table):
        zone_map = build_zone_map(clustered_table.column("score"))
        from repro.access.zonemap import ColumnZoneMap

        clone = ColumnZoneMap.from_arrays("score", zone_map.to_arrays())
        predicate = col("e", "score") >= lit(8.0)
        assert clone.page_mask(predicate).tolist() == zone_map.page_mask(predicate).tolist()


# --------------------------------------------------------------------------- #
# Dictionary + indexes
# --------------------------------------------------------------------------- #
class TestIndexes:
    @pytest.mark.parametrize("kind", ["bitmap", "sorted"])
    @pytest.mark.parametrize(
        "column_name, predicate",
        [
            ("cat", col("e", "cat").eq("c2")),
            ("cat", col("e", "cat").ne("c2")),
            ("cat", in_(col("e", "cat"), ["c0", "c3"])),
            ("ts", col("e", "ts") < lit(120)),
            ("ts", col("e", "ts") >= lit(170)),
            ("score", col("e", "score") > lit(7.5)),
            ("score", is_null(col("e", "score"))),
            ("score", is_null(col("e", "score"), negated=True)),
        ],
    )
    def test_lookup_is_exact(self, clustered_table, kind, predicate, column_name):
        if kind == "sorted" and "!=" in predicate.key():
            pytest.skip("sorted indexes do not answer !=")
        index = build_index(clustered_table.column(column_name), kind=kind)
        bitmap = index.lookup(predicate)
        assert bitmap is not None
        assert set(bitmap.positions().tolist()) == _true_rows(clustered_table, predicate)

    def test_bitmap_ne_keeps_nan_rows(self):
        table = Table("t", [_column("x", [1.0, float("nan"), 2.0, None])])
        index = build_index(table.column("x"), kind="bitmap")
        bitmap = index.lookup(col("t", "x").ne(1.0))
        # NaN != 1.0 is TRUE; NULL is UNKNOWN and excluded.
        assert set(bitmap.positions().tolist()) == {1, 2}

    def test_dictionary_encoding_round_trip(self, clustered_table):
        encoding = DictionaryEncoding.encode(clustered_table.column("cat"))
        assert encoding.num_values == 4
        decoded = encoding.values[encoding.codes]
        assert list(decoded) == list(clustered_table.column("cat").data)

    def test_auto_kind_uses_distinct_count(self, clustered_table):
        assert build_index(clustered_table.column("cat")).kind == "bitmap"
        big = Table("big", [Column("v", list(range(20_000)))])
        assert build_index(big.column("v")).kind == "sorted"

    @pytest.mark.parametrize("kind", ["bitmap", "sorted"])
    def test_array_round_trip(self, clustered_table, kind):
        index = build_index(clustered_table.column("ts"), kind=kind)
        cls = BitmapIndex if kind == "bitmap" else SortedIndex
        clone = cls.from_arrays(index.to_arrays())
        predicate = col("e", "ts") >= lit(150)
        assert clone.lookup(predicate) == index.lookup(predicate)


# --------------------------------------------------------------------------- #
# Implied predicates
# --------------------------------------------------------------------------- #
class TestImpliedPredicate:
    def test_conjunct_extraction(self):
        predicate = and_(col("a", "x") < lit(1), col("b", "y") < lit(2))
        implied = implied_alias_predicate(predicate, "a")
        assert implied is not None and implied.key() == "(a.x < 1)"

    def test_disjunction_requires_every_branch(self):
        covered = or_(col("a", "x") < lit(1), col("a", "y") < lit(2))
        assert implied_alias_predicate(covered, "a") is not None
        uncovered = or_(col("a", "x") < lit(1), col("b", "y") < lit(2))
        assert implied_alias_predicate(uncovered, "a") is None

    def test_negation_is_conservative(self):
        predicate = not_(col("a", "x") < lit(1))
        assert implied_alias_predicate(predicate, "a") is None

    def test_or_of_ands_mixes_aliases(self):
        predicate = or_(
            and_(col("a", "x") < lit(1), col("b", "y") < lit(2)),
            and_(col("a", "x") > lit(9), col("b", "z") < lit(3)),
        )
        implied = implied_alias_predicate(predicate, "a")
        assert implied is not None
        assert implied.key() == "((a.x < 1) OR (a.x > 9))"


# --------------------------------------------------------------------------- #
# Manager: laziness, caching, invalidation
# --------------------------------------------------------------------------- #
class TestManager:
    def test_zone_maps_build_lazily_and_cache(self, clustered_table):
        catalog = Catalog([clustered_table])
        manager = AccessPathManager(catalog)
        assert manager.stats.zone_maps_built == 0
        first = manager.zone_map("events", "ts")
        again = manager.zone_map("events", "ts")
        assert first is again
        assert manager.stats.zone_maps_built == 1

    def test_table_replace_invalidates_structures(self, clustered_table):
        catalog = Catalog([clustered_table])
        manager = ensure_access_manager(catalog)
        manager.create_index("events", "cat", kind="bitmap")
        old_index = manager.index_for("events", "cat")
        predicate = col("e", "cat").eq("c1")
        old_bitmap = manager.candidates("events", predicate)

        replacement = Table(
            "events",
            [_column("id", [0, 1]), _column("ts", [5, 6]), _column("cat", ["c9", "c1"])],
        )
        catalog.replace(replacement)
        new_index = manager.index_for("events", "cat")
        assert new_index is not old_index  # definition survived, structure rebuilt
        new_bitmap = manager.candidates("events", predicate)
        assert new_bitmap != old_bitmap
        assert set(new_bitmap.positions().tolist()) == {1}
        assert manager.stats.invalidations >= 1

    def test_duplicate_create_rejected_and_drop_unregisters(self, clustered_table):
        catalog = Catalog([clustered_table])
        manager = ensure_access_manager(catalog)
        version = manager.version
        manager.create_index("events", "cat")
        assert manager.version > version
        with pytest.raises(ValueError):
            manager.create_index("events", "cat")
        manager.drop_index("events", "cat")
        assert not manager.has_index("events", "cat")
        with pytest.raises(KeyError):
            manager.drop_index("events", "cat")

    def test_candidates_compose_and_or(self, clustered_table):
        catalog = Catalog([clustered_table])
        manager = ensure_access_manager(catalog)
        manager.create_index("events", "cat", kind="bitmap")
        predicate = or_(
            and_(col("e", "cat").eq("c1"), col("e", "ts") < lit(120)),
            col("e", "ts") >= lit(190),
        )
        bitmap = manager.candidates("events", predicate)
        assert bitmap is not None
        kept = set(bitmap.positions().tolist())
        assert _true_rows(clustered_table, predicate) <= kept
        assert len(kept) < clustered_table.num_rows


# --------------------------------------------------------------------------- #
# Chooser
# --------------------------------------------------------------------------- #
class TestChooser:
    def _plan(self, catalog, sql):
        query = parse_query(sql)
        session = Session(catalog)
        context = session._planner_context(query, naive_tags=False)
        return context.estimates.access_plan(), context.estimates

    def test_selective_indexed_leaf_chooses_index(self, clustered_table):
        catalog = Catalog([clustered_table])
        ensure_access_manager(catalog).create_index("events", "ts", kind="sorted")
        plan, estimates = self._plan(
            catalog, "SELECT * FROM events AS e WHERE e.ts < 104"
        )
        choice = plan.choice("e")
        assert choice.kind == "index"
        assert choice.est_pages < choice.total_pages
        assert estimates.scan_pages("e") == pytest.approx(choice.est_pages)

    def test_unindexed_selective_leaf_chooses_zonemap(self, clustered_table):
        catalog = Catalog([clustered_table])
        plan, _ = self._plan(catalog, "SELECT * FROM events AS e WHERE e.ts < 104")
        assert plan.choice("e").kind == "zonemap"

    def test_unselective_predicate_falls_back_to_full(self, clustered_table):
        catalog = Catalog([clustered_table])
        plan, estimates = self._plan(
            catalog, "SELECT * FROM events AS e WHERE e.ts > 105"
        )
        choice = plan.choice("e")
        assert choice.kind == "full"
        assert estimates.scan_pages("e") == float(clustered_table.num_pages)

    def test_access_disabled_yields_no_plan(self, clustered_table):
        catalog = Catalog([clustered_table])
        session = Session(catalog, access_paths=False)
        context = session._planner_context(
            parse_query("SELECT * FROM events AS e WHERE e.ts < 104"), naive_tags=False
        )
        assert context.estimates.access_plan() is None

    def test_chooser_classification_matches_resolution(self, clustered_table):
        catalog = Catalog([clustered_table])
        manager = ensure_access_manager(catalog)
        query = parse_query(
            "SELECT * FROM events AS e WHERE e.ts < 104 OR e.cat = 'zzz'"
        )
        chooser = AccessPathChooser(query, manager)
        assert chooser._classify("events", query.predicate) == "zone"


# --------------------------------------------------------------------------- #
# Execution: pruning accounting + explain-analyze + morsel skipping
# --------------------------------------------------------------------------- #
class TestPrunedExecution:
    SQL = "SELECT e.id FROM events AS e WHERE e.ts < 110 ORDER BY e.id"

    def _catalog(self, clustered_table):
        return Catalog([clustered_table])

    def test_pruned_pages_are_not_read(self, clustered_table):
        catalog = self._catalog(clustered_table)
        pruned = Session(catalog, access_paths=True).execute(self.SQL)
        unpruned = Session(catalog, access_paths=False).execute(self.SQL)
        assert pruned.rows == unpruned.rows
        assert pruned.metrics.pages_pruned > 0

        def total_io(result):
            return result.iostats.pages_read + result.iostats.pages_hit

        assert total_io(pruned) < total_io(unpruned)
        # A pruned page contributes to neither misses nor hits.
        assert total_io(pruned) + pruned.metrics.pages_pruned <= total_io(
            unpruned
        ) + clustered_table.num_pages  # slack: output materialization reads

    def test_explain_analyze_reports_pruning(self, clustered_table):
        catalog = self._catalog(clustered_table)
        session = Session(catalog)
        prepared = session.prepare(self.SQL, planner="tcombined")
        result = session.execute_prepared(prepared, collect_feedback=True)
        report = explain_analyze_report(prepared, result)
        assert "pruned" in report
        assert "zonemap est_pages=" in report
        assert "pages_pruned=" in report

    def test_morsel_driver_skips_fully_pruned_partitions(self, clustered_table):
        catalog = self._catalog(clustered_table)
        session = Session(catalog)
        serial = session.execute(self.SQL)
        parallel = session.execute(self.SQL, parallelism=4, partitions=6)
        assert parallel.rows == serial.rows
        # Candidates live in the first 2 of 12 pages; partitions 2..5 hold none.
        assert parallel.metrics.partitions_skipped > 0
        assert (
            parallel.metrics.morsels_executed + parallel.metrics.partitions_skipped == 6
        )

    def test_empty_candidate_set_still_returns_output_shape(self, clustered_table):
        catalog = self._catalog(clustered_table)
        session = Session(catalog)
        result = session.execute(
            "SELECT e.id FROM events AS e WHERE e.ts < 0", parallelism=2, partitions=3
        )
        assert result.row_count == 0
        assert result.column_names == ["e.id"]


class TestPruningSoundnessRegressions:
    def test_like_prefix_on_numeric_column_is_not_pruned(self):
        """str(99) > str(112): numeric bounds cannot answer LIKE lexically."""
        table = Table("t", [_column("x", list(range(1, 1001)))])
        zone_map = build_zone_map(table.column("x"))
        assert zone_map.page_mask(like(col("t", "x"), "99%")) is None
        catalog = Catalog([table])
        sql = "SELECT t.x FROM t AS t WHERE t.x LIKE '99%'"
        pruned = Session(catalog, access_paths=True).execute(sql)
        unpruned = Session(catalog, access_paths=False).execute(sql)
        assert pruned.rows == unpruned.rows
        assert pruned.row_count == 11  # 99 and 990..999

    def test_like_prefix_on_string_column_still_prunes(self, clustered_table):
        zone_map = build_zone_map(clustered_table.column("cat"))
        assert zone_map.page_mask(like(col("e", "cat"), "c2%")) is not None

    def test_pruned_alias_is_excluded_from_predicate_feedback(self, clustered_table):
        """An index-pruned scan makes its own clause look ~100% selective;
        such conditioned observations must not feed the feedback loop."""
        catalog = Catalog([clustered_table])
        ensure_access_manager(catalog).create_index("events", "ts", kind="sorted")
        sql = "SELECT e.id FROM events AS e WHERE e.ts < 110"
        clause_key = "(e.ts < 110)"

        session = Session(catalog, access_paths=True)
        prepared = session.prepare(sql)
        pruned = session.execute_prepared(prepared, collect_feedback=True)
        assert pruned.metrics.pages_pruned > 0
        assert clause_key not in pruned.metrics.predicate_counts

        plain = Session(catalog, access_paths=False)
        unpruned = plain.execute_prepared(
            plain.prepare(sql), collect_feedback=True
        )
        evaluated, matched = unpruned.metrics.predicate_counts[clause_key]
        assert evaluated == clustered_table.num_rows
        assert matched == 10


def test_core_planner_never_imports_access_layer():
    """Access-path choices must flow through EstimateProvider exclusively."""
    import pathlib

    import repro.core.planner as planner_package

    package_dir = pathlib.Path(planner_package.__file__).parent
    for module_path in package_dir.glob("*.py"):
        source = module_path.read_text(encoding="utf-8")
        assert "repro.access" not in source, (
            f"{module_path.name} references repro.access; planners must consume "
            "access paths through the EstimateProvider only"
        )


# --------------------------------------------------------------------------- #
# Service integration: index DDL retires cached plans
# --------------------------------------------------------------------------- #
class TestServiceIntegration:
    def test_index_create_changes_fingerprint(self, clustered_table):
        from repro import QueryService

        catalog = Catalog([clustered_table])
        manager = ensure_access_manager(catalog)
        sql = "SELECT e.id FROM events AS e WHERE e.ts < 110"
        with QueryService(Session(catalog)) as service:
            first = service.execute(sql)
            warm = service.execute(sql)
            assert warm.cache_hit
            manager.create_index("events", "ts", kind="sorted")
            after = service.execute(sql)
            assert not after.cache_hit  # access version changed -> re-planned
            assert after.rows == first.rows

"""Tests for the differential-testing toolkit itself (datagen, querygen, oracle)."""

from __future__ import annotations

import pytest

from repro import Catalog, Table
from repro.expr.builders import and_, between, col, ilike, in_, is_null, lit, not_, or_
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN
from repro.plan.query import JoinCondition, Query
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.oracle import OracleError, evaluate_oracle, evaluate_predicate_row
from repro.testing.querygen import RandomQueryConfig, generate_random_query


# --------------------------------------------------------------------------- #
# Data generation
# --------------------------------------------------------------------------- #
class TestDatagen:
    def test_schema_shape(self):
        catalog = generate_random_catalog(RandomCatalogConfig(seed=1, num_dimensions=3))
        assert set(catalog.table_names) == {"F", "D1", "D2", "D3"}
        fact = catalog.get("F")
        assert "id" in fact.column_names
        assert "A1" in fact.column_names and "category" in fact.column_names
        dimension = catalog.get("D1")
        assert "fid" in dimension.column_names

    def test_deterministic_for_same_seed(self):
        first = generate_random_catalog(RandomCatalogConfig(seed=7))
        second = generate_random_catalog(RandomCatalogConfig(seed=7))
        assert first.get("D1").column("fid").values_list() == second.get("D1").column(
            "fid"
        ).values_list()

    def test_different_seeds_differ(self):
        first = generate_random_catalog(RandomCatalogConfig(seed=1))
        second = generate_random_catalog(RandomCatalogConfig(seed=2))
        assert first.get("D1").column("fid").values_list() != second.get("D1").column(
            "fid"
        ).values_list()

    def test_null_fraction_respected(self):
        catalog = generate_random_catalog(
            RandomCatalogConfig(seed=3, null_fraction=0.5, fact_rows=400)
        )
        column = catalog.get("F").column("A1")
        null_count = int(column.null_mask.sum())
        assert 100 < null_count < 300

    def test_zero_null_fraction(self):
        catalog = generate_random_catalog(RandomCatalogConfig(seed=3, null_fraction=0.0))
        assert not catalog.get("F").column("A1").has_nulls()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RandomCatalogConfig(num_dimensions=0)
        with pytest.raises(ValueError):
            RandomCatalogConfig(null_fraction=1.0)
        with pytest.raises(ValueError):
            RandomCatalogConfig(fact_rows=0)


# --------------------------------------------------------------------------- #
# Query generation
# --------------------------------------------------------------------------- #
class TestQuerygen:
    @pytest.fixture(scope="class")
    def star_catalog(self) -> Catalog:
        return generate_random_catalog(RandomCatalogConfig(seed=5, num_dimensions=2))

    def test_query_targets_star_schema(self, star_catalog):
        query = generate_random_query(star_catalog, RandomQueryConfig(seed=1))
        assert query.tables == {"f": "F", "d1": "D1", "d2": "D2"}
        assert len(query.join_conditions) == 2
        assert query.predicate is not None

    def test_deterministic_for_same_seed(self, star_catalog):
        first = generate_random_query(star_catalog, RandomQueryConfig(seed=9))
        second = generate_random_query(star_catalog, RandomQueryConfig(seed=9))
        assert first.predicate.key() == second.predicate.key()

    def test_different_seeds_give_different_predicates(self, star_catalog):
        keys = {
            generate_random_query(star_catalog, RandomQueryConfig(seed=seed)).predicate.key()
            for seed in range(8)
        }
        assert len(keys) > 1

    def test_reuse_probability_produces_duplicates(self, star_catalog):
        from repro.expr.ast import iter_base_predicates

        config = RandomQueryConfig(seed=3, reuse_probability=0.9, max_depth=4, max_fanout=3)
        found_duplicate = False
        for seed in range(12):
            query = generate_random_query(
                star_catalog,
                RandomQueryConfig(
                    seed=seed, reuse_probability=0.9, max_depth=4, max_fanout=3
                ),
            )
            occurrences = [expr.key() for expr in iter_base_predicates(query.predicate)]
            if len(occurrences) != len(set(occurrences)):
                found_duplicate = True
                break
        assert found_duplicate, config

    def test_requires_star_catalog(self):
        plain = Catalog([Table.from_dict("x", {"id": [1]})])
        with pytest.raises(ValueError, match="star-schema"):
            generate_random_query(plain)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RandomQueryConfig(max_depth=0)
        with pytest.raises(ValueError):
            RandomQueryConfig(max_fanout=1)


# --------------------------------------------------------------------------- #
# Scalar predicate evaluation
# --------------------------------------------------------------------------- #
class TestScalarEvaluation:
    def test_comparison_and_nulls(self):
        expr = col("t", "x") > lit(5)
        assert evaluate_predicate_row(expr, {("t", "x"): 6}) is TRUE
        assert evaluate_predicate_row(expr, {("t", "x"): 3}) is FALSE
        assert evaluate_predicate_row(expr, {("t", "x"): None}) is UNKNOWN

    def test_and_or_three_valued(self):
        left = col("t", "x") > lit(5)
        right = col("t", "y") > lit(5)
        both = and_(left, right)
        either = or_(left, right)
        row = {("t", "x"): 10, ("t", "y"): None}
        assert evaluate_predicate_row(both, row) is UNKNOWN
        assert evaluate_predicate_row(either, row) is TRUE
        row = {("t", "x"): 1, ("t", "y"): None}
        assert evaluate_predicate_row(both, row) is FALSE
        assert evaluate_predicate_row(either, row) is UNKNOWN

    def test_not_unknown_stays_unknown(self):
        expr = not_(col("t", "x") > lit(5))
        assert evaluate_predicate_row(expr, {("t", "x"): None}) is UNKNOWN
        assert evaluate_predicate_row(expr, {("t", "x"): 1}) is TRUE

    def test_is_null(self):
        assert evaluate_predicate_row(is_null(col("t", "x")), {("t", "x"): None}) is TRUE
        assert (
            evaluate_predicate_row(is_null(col("t", "x"), negated=True), {("t", "x"): None})
            is FALSE
        )

    def test_between_in_like(self):
        assert (
            evaluate_predicate_row(between(col("t", "x"), 1, 3), {("t", "x"): 2}) is TRUE
        )
        assert (
            evaluate_predicate_row(in_(col("t", "s"), ["a", "b"]), {("t", "s"): "c"}) is FALSE
        )
        assert (
            evaluate_predicate_row(ilike(col("t", "s"), "%AR%"), {("t", "s"): "dark"}) is TRUE
        )

    def test_missing_column_raises(self):
        with pytest.raises(OracleError):
            evaluate_predicate_row(col("t", "x") > lit(1), {("t", "y"): 2})


# --------------------------------------------------------------------------- #
# Full oracle evaluation
# --------------------------------------------------------------------------- #
class TestOracle:
    def test_oracle_matches_paper_example(self, paper_catalog, paper_query):
        rows = evaluate_oracle(paper_catalog, paper_query)
        assert len(rows) == 4

    def test_oracle_matches_engine_on_paper_query(
        self, paper_catalog, paper_query, paper_session
    ):
        expected = evaluate_oracle(paper_catalog, paper_query)
        result = paper_session.execute(paper_query, planner="tcombined")
        assert result.sorted_rows() == expected

    def test_oracle_respects_projection(self, paper_catalog, paper_query):
        projected = Query(
            tables=paper_query.tables,
            join_conditions=paper_query.join_conditions,
            predicate=paper_query.predicate,
            select=[col("t", "title")],
        )
        rows = evaluate_oracle(paper_catalog, projected)
        assert all(len(row) == 1 for row in rows)
        assert {row[0] for row in rows} == {
            "The Dark Knight",
            "Avatar",
            "The Shawshank Redemption",
            "Pulp Fiction",
        }

    def test_oracle_null_join_keys_never_match(self):
        catalog = Catalog(
            [
                Table.from_dict("a", {"id": [1, None, 3]}),
                Table.from_dict("b", {"aid": [1, None, 3]}),
            ]
        )
        query = Query(
            tables={"a": "a", "b": "b"},
            join_conditions=[JoinCondition(col("a", "id"), col("b", "aid"))],
        )
        rows = evaluate_oracle(catalog, query)
        assert len(rows) == 2

    def test_oracle_cross_join_without_conditions(self):
        catalog = Catalog(
            [
                Table.from_dict("a", {"x": [1, 2]}),
                Table.from_dict("b", {"y": [10, 20, 30]}),
            ]
        )
        query = Query(tables={"a": "a", "b": "b"})
        rows = evaluate_oracle(catalog, query)
        assert len(rows) == 6

    def test_oracle_rejects_output_shaping(self, paper_catalog, paper_query):
        shaped = Query(
            tables=paper_query.tables,
            join_conditions=paper_query.join_conditions,
            predicate=paper_query.predicate,
            limit=1,
        )
        with pytest.raises(OracleError):
            evaluate_oracle(paper_catalog, shaped)

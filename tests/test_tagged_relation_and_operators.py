"""Unit tests for tagged relations and the tagged operators on the paper's example."""

import pytest

from repro.core.operators import (
    TaggedFilterOperator,
    TaggedJoinOperator,
    TaggedProjectOperator,
)
from repro.core.predtree import PredicateTree
from repro.core.tagged_relation import TaggedRelation
from repro.core.tagmap import FilterEntry, FilterTagMap, JoinTagMap, ProjectionTagSet, TagMapBuilder
from repro.core.tags import Tag
from repro.engine.metrics import ExecContext
from repro.expr.builders import col, lit
from repro.expr.three_valued import FALSE, TRUE
from repro.plan.logical import FilterNode, JoinNode, ProjectNode, TableScanNode
from repro.plan.query import JoinCondition
from repro.storage.bitmap import Bitmap


@pytest.fixture
def title_table(paper_catalog):
    return paper_catalog.get("title")


@pytest.fixture
def mi_table(paper_catalog):
    return paper_catalog.get("movie_info_idx")


class TestTaggedRelation:
    def test_from_base_table(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        assert relation.num_rows == 7
        assert relation.tags() == [Tag.empty()]
        assert relation.slice_cardinality(Tag.empty()) == 7
        assert relation.total_tuples() == 7

    def test_empty_slices_are_dropped(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        derived = relation.with_slices({Tag({"p": TRUE}): Bitmap.empty(7)})
        assert derived.tags() == []

    def test_mutual_exclusivity_check(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        overlapping = relation.with_slices(
            {
                Tag({"p": TRUE}): Bitmap.from_positions(7, [0, 1]),
                Tag({"p": FALSE}): Bitmap.from_positions(7, [1, 2]),
            }
        )
        assert not overlapping.check_mutually_exclusive()
        disjoint = relation.with_slices(
            {
                Tag({"p": TRUE}): Bitmap.from_positions(7, [0, 1]),
                Tag({"p": FALSE}): Bitmap.from_positions(7, [2]),
            }
        )
        assert disjoint.check_mutually_exclusive()

    def test_bitmap_size_mismatch_rejected(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        with pytest.raises(ValueError):
            relation.with_slices({Tag.empty(): Bitmap.empty(3)})

    def test_slice_bitmap_of_absent_tag_is_empty(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        assert relation.slice_bitmap(Tag({"p": TRUE})).is_empty()

    def test_materialize_rows(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        rows = relation.materialize_rows()
        assert rows[0] == {"t": 0}
        assert len(rows) == 7

    def test_active_bitmap_unions_slices(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table).with_slices(
            {
                Tag({"p": TRUE}): Bitmap.from_positions(7, [0]),
                Tag({"p": FALSE}): Bitmap.from_positions(7, [3, 4]),
            }
        )
        assert relation.active_bitmap().count() == 3


class TestTaggedFilter:
    def test_filter_splits_by_predicate(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        predicate = col("t", "production_year") > lit(2000)
        pos = Tag({predicate.key(): TRUE})
        neg = Tag({predicate.key(): FALSE})
        tag_map = FilterTagMap({Tag.empty(): FilterEntry(pos_tag=pos, neg_tag=neg)})
        context = ExecContext()
        output = TaggedFilterOperator(predicate, tag_map).execute(relation, context)
        # Movies after 2000: rows 0, 1, 6 (Dark Knight, Evolution, Avatar).
        assert set(output.slice_bitmap(pos).positions().tolist()) == {0, 1, 6}
        assert output.slice_cardinality(neg) == 4
        assert context.metrics.predicate_rows_evaluated == 7
        assert output.check_mutually_exclusive()

    def test_filter_drops_rows_when_output_tag_missing(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        predicate = col("t", "production_year") > lit(2000)
        pos = Tag({predicate.key(): TRUE})
        tag_map = FilterTagMap({Tag.empty(): FilterEntry(pos_tag=pos, neg_tag=None)})
        output = TaggedFilterOperator(predicate, tag_map).execute(relation, ExecContext())
        assert output.total_tuples() == 3

    def test_filter_passes_unmatched_slices_untouched(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        other_tag = Tag({"(x)": TRUE})
        relation = relation.with_slices({other_tag: Bitmap.from_positions(7, [2, 3])})
        predicate = col("t", "production_year") > lit(2000)
        tag_map = FilterTagMap({})  # no entries at all
        context = ExecContext()
        output = TaggedFilterOperator(predicate, tag_map).execute(relation, context)
        assert output.slice_cardinality(other_tag) == 2
        assert context.metrics.predicate_rows_evaluated == 0

    def test_filter_merges_slices_sharing_output_tag(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        a = Tag({"(a)": TRUE})
        b = Tag({"(b)": TRUE})
        relation = relation.with_slices(
            {a: Bitmap.from_positions(7, [0, 1]), b: Bitmap.from_positions(7, [2, 6])}
        )
        predicate = col("t", "production_year") > lit(2000)
        merged = Tag({"(merged)": TRUE})
        tag_map = FilterTagMap(
            {
                a: FilterEntry(pos_tag=merged),
                b: FilterEntry(pos_tag=merged),
            }
        )
        output = TaggedFilterOperator(predicate, tag_map).execute(relation, ExecContext())
        # Rows 0, 1 from slice a and row 6 from slice b pass the predicate.
        assert output.slice_cardinality(merged) == 3

    def test_filter_requires_alias_present(self, mi_table):
        relation = TaggedRelation.from_base_table("mi_idx", mi_table)
        predicate = col("t", "production_year") > lit(2000)
        tag_map = FilterTagMap({Tag.empty(): FilterEntry(pos_tag=Tag({"x": TRUE}))})
        with pytest.raises(ValueError, match="aliases"):
            TaggedFilterOperator(predicate, tag_map).execute(relation, ExecContext())


class TestTaggedJoin:
    def _filtered_sides(self, title_table, mi_table):
        """Build the paper's Example 2 and Example 3 tagged relations."""
        p1 = col("t", "production_year") > lit(2000)
        p2 = col("t", "production_year") > lit(1980)
        p3 = col("mi_idx", "info") > lit(8.0)
        p4 = col("mi_idx", "info") > lit(7.0)

        left = TaggedRelation.from_base_table("t", title_table).with_slices(
            {
                Tag({p1.key(): TRUE}): Bitmap.from_positions(7, [0, 1, 6]),
                Tag({p1.key(): FALSE, p2.key(): TRUE}): Bitmap.from_positions(7, [2, 3, 5]),
            }
        )
        right = TaggedRelation.from_base_table("mi_idx", mi_table).with_slices(
            {
                Tag({p3.key(): TRUE}): Bitmap.from_positions(6, [0, 1, 2, 3]),
                Tag({p3.key(): FALSE, p4.key(): TRUE}): Bitmap.from_positions(6, [4, 5]),
            }
        )
        return left, right, p1, p2, p3, p4

    def test_join_follows_tag_map_and_skips_dead_pairing(self, title_table, mi_table):
        left, right, p1, p2, p3, p4 = self._filtered_sides(title_table, mi_table)
        out_a = Tag({"(clause1) = T": TRUE})
        out_b = Tag({"(clause2 only) = T": TRUE})
        tag_map = JoinTagMap(
            {
                (Tag({p1.key(): TRUE}), Tag({p3.key(): TRUE})): out_a,
                (Tag({p1.key(): TRUE}), Tag({p3.key(): FALSE, p4.key(): TRUE})): out_a,
                (Tag({p1.key(): FALSE, p2.key(): TRUE}), Tag({p3.key(): TRUE})): out_b,
            }
        )
        condition = JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))
        context = ExecContext()
        output = TaggedJoinOperator([condition], tag_map).execute(left, right, context)

        # Example 4: Dark Knight and Avatar under clause 1; Shawshank and Pulp
        # Fiction under the clause-2-only tag.  Beetlejuice (1988, score 7.5)
        # is never joined.
        assert output.slice_cardinality(out_a) == 2
        assert output.slice_cardinality(out_b) == 2
        assert output.total_tuples() == 4
        assert context.metrics.join_output_rows == 4
        title_indices = set(output.indices["t"].tolist())
        assert 5 not in title_indices  # Beetlejuice's row never materialized

    def test_join_with_no_matching_tags_is_empty(self, title_table, mi_table):
        left, right, p1, _p2, p3, _p4 = self._filtered_sides(title_table, mi_table)
        tag_map = JoinTagMap({(Tag({"(zzz)": TRUE}), Tag({p3.key(): TRUE})): Tag.empty()})
        condition = JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))
        output = TaggedJoinOperator([condition], tag_map).execute(left, right, ExecContext())
        assert output.total_tuples() == 0

    def test_join_requires_conditions(self):
        with pytest.raises(ValueError):
            TaggedJoinOperator([], JoinTagMap({}))

    def test_join_output_indices_reference_base_tables(self, title_table, mi_table):
        left, right, p1, p2, p3, p4 = self._filtered_sides(title_table, mi_table)
        out = Tag.empty()
        tag_map = JoinTagMap(
            {
                (Tag({p1.key(): TRUE}), Tag({p3.key(): TRUE})): out,
            }
        )
        condition = JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))
        output = TaggedJoinOperator([condition], tag_map).execute(left, right, ExecContext())
        for position in range(output.num_rows):
            title_row = output.indices["t"][position]
            mi_row = output.indices["mi_idx"][position]
            assert title_table.row(title_row)["id"] == mi_table.row(mi_row)["movie_id"]


class TestTaggedProjection:
    def test_projection_selects_allowed_tags_only(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table).with_slices(
            {
                Tag({"(keep)": TRUE}): Bitmap.from_positions(7, [0, 2]),
                Tag({"(drop)": TRUE}): Bitmap.from_positions(7, [1]),
            }
        )
        projection = ProjectionTagSet(allowed={Tag({"(keep)": TRUE})})
        positions = TaggedProjectOperator(projection).execute(relation, ExecContext())
        assert positions.tolist() == [0, 2]

    def test_projection_residual_evaluates_predicate(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        predicate = col("t", "production_year") > lit(2000)
        projection = ProjectionTagSet(allowed=set(), residual={Tag.empty()})
        context = ExecContext()
        positions = TaggedProjectOperator(projection, residual_predicate=predicate).execute(
            relation, context
        )
        assert set(positions.tolist()) == {0, 1, 6}
        assert context.metrics.residual_rows_evaluated == 7

    def test_projection_residual_without_predicate_raises(self, title_table):
        relation = TaggedRelation.from_base_table("t", title_table)
        projection = ProjectionTagSet(allowed=set(), residual={Tag.empty()})
        with pytest.raises(ValueError):
            TaggedProjectOperator(projection).execute(relation, ExecContext())


class TestFullTaggedPipeline:
    def test_query1_pipeline_matches_paper_example4(self, paper_catalog, paper_query):
        """Run the Figure 1 plan manually through the tagged operators."""
        tree = PredicateTree(paper_query.predicate)
        p1 = col("t", "production_year") > lit(2000)
        p2 = col("t", "production_year") > lit(1980)
        p3 = col("mi_idx", "info") > lit(8.0)
        p4 = col("mi_idx", "info") > lit(7.0)
        left = FilterNode(p2, FilterNode(p1, TableScanNode("t", "title")))
        right = FilterNode(p4, FilterNode(p3, TableScanNode("mi_idx", "movie_info_idx")))
        join = JoinNode(left, right, [JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))])
        plan = ProjectNode(join)

        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        from repro.engine.executor import TaggedExecutor

        executor = TaggedExecutor(paper_catalog, paper_query, annotations, tree)
        output = executor.execute(plan, ExecContext())
        titles = {
            row[output.names.index("t.title")]
            for row in zip(*[values.tolist() for values, _ in output.columns])
        }
        assert titles == {
            "The Dark Knight",
            "Avatar",
            "The Shawshank Redemption",
            "Pulp Fiction",
        }

"""Unit tests for the tagged planners, benefit score, join ordering and cost model."""

import pytest

from repro.core.planner.base import PlannerContext
from repro.core.planner.benefit import benefit_score, benefiting_order
from repro.core.planner.combined import TCombinedPlanner
from repro.core.planner.cost import CostParams, estimate_plan_cost
from repro.core.planner.iterpush import TIterPushPlanner, push_filter_to_alias
from repro.core.planner.joinorder import greedy_join_tree
from repro.core.planner.pullup import TPullupPlanner, pullup_once
from repro.core.planner.pushconj import TPushConjPlanner
from repro.core.planner.pushdown import TPushdownPlanner
from repro.core.predtree import PredicateTree
from repro.expr.builders import and_, col, ilike, lit, or_
from repro.plan.logical import (
    FilterNode,
    JoinNode,
    ProjectNode,
    TableScanNode,
    collect_filters,
    collect_joins,
    plan_to_string,
)
from repro.plan.query import JoinCondition, Query


class _StubEstimates:
    """Minimal estimates object for driving benefit scoring in isolation."""

    def __init__(self, selectivity, cost_factor=lambda expr: 1.0):
        self.selectivity = selectivity
        self.cost_factor = cost_factor


@pytest.fixture
def context(paper_catalog, paper_query):
    return PlannerContext.for_query(paper_query, paper_catalog)


class TestBenefitScore:
    @pytest.fixture
    def tree(self):
        self.p1 = col("t", "a") > lit(1)
        self.p2 = col("t", "b") > lit(2)
        self.p3 = col("t", "c") > lit(3)
        self.p4 = col("t", "d") > lit(4)
        return PredicateTree(or_(and_(self.p1, self.p2), and_(self.p3, self.p4)))

    def test_and_sibling_gets_and_benefit(self, tree):
        score = benefit_score(tree, self.p1, [self.p2], lambda expr: 0.25)
        assert score == pytest.approx(0.75)

    def test_other_or_branch_contributes_nothing(self, tree):
        # p3 is not a descendant of p1's (AND) parent, so applying p1 first
        # does not reduce p3's input at all.
        score = benefit_score(tree, self.p1, [self.p3], lambda expr: 0.25)
        assert score == pytest.approx(0.0)

    def test_or_parent_gets_or_benefit(self):
        p1 = col("t", "a") > lit(1)
        p3 = col("t", "c") > lit(3)
        p4 = col("t", "d") > lit(4)
        tree = PredicateTree(or_(p1, and_(p3, p4)))
        # p1's parent is the OR root and p3 is a descendant of it: applying p1
        # first removes the tuples that already satisfy the disjunction.
        score = benefit_score(tree, p1, [p3], lambda expr: 0.25)
        assert score == pytest.approx(0.25)

    def test_multiple_unapplied_sum(self, tree):
        score = benefit_score(tree, self.p1, [self.p2, self.p3], lambda expr: 0.25)
        assert score == pytest.approx(0.75)

    def test_self_excluded(self, tree):
        assert benefit_score(tree, self.p1, [self.p1], lambda expr: 0.25) == 0.0

    def test_root_predicate_scores_zero(self):
        only = col("t", "a") > lit(1)
        tree = PredicateTree(only)
        assert benefit_score(tree, only, [only], lambda expr: 0.5) == 0.0

    def test_benefiting_order_prefers_high_benefit_low_cost(self, tree):
        selectivities = {self.p1.key(): 0.1, self.p2.key(): 0.9, self.p3.key(): 0.5, self.p4.key(): 0.5}
        estimates = _StubEstimates(lambda expr: selectivities[expr.key()])
        order = benefiting_order(tree, [self.p2, self.p1, self.p3, self.p4], estimates)
        assert order[0].key() == self.p1.key()

    def test_benefiting_order_without_tree_sorts_by_selectivity(self):
        a = col("t", "a") > lit(1)
        b = col("t", "b") > lit(2)
        estimates = _StubEstimates(lambda e: 0.9 if e.key() == a.key() else 0.1)
        order = benefiting_order(None, [a, b], estimates)
        assert order[0].key() == b.key()


class TestJoinOrdering:
    def test_smallest_output_first(self, paper_catalog):
        query = Query(
            tables={"a": "title", "b": "movie_info_idx", "c": "movie_info_idx"},
            join_conditions=[
                JoinCondition(col("a", "id"), col("b", "movie_id")),
                JoinCondition(col("a", "id"), col("c", "movie_id")),
            ],
        )
        context = PlannerContext.for_query(query, paper_catalog)
        leaf_plans = {alias: TableScanNode(alias, query.tables[alias]) for alias in query.aliases}
        rows = {"a": 1000.0, "b": 10.0, "c": 500.0}
        tree = greedy_join_tree(query, leaf_plans, rows, context.estimates)
        joins = collect_joins(tree)
        # The first (deepest) join must involve the small 'b' input.
        deepest = joins[-1]
        assert "b" in deepest.aliases

    def test_disconnected_graph_raises(self, paper_catalog):
        query = Query(tables={"a": "title", "b": "movie_info_idx"})
        context = PlannerContext.for_query(query, paper_catalog)
        leaf_plans = {alias: TableScanNode(alias, query.tables[alias]) for alias in query.aliases}
        with pytest.raises(ValueError, match="disconnected"):
            greedy_join_tree(query, leaf_plans, {"a": 1.0, "b": 1.0}, context.estimates)

    def test_single_input(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        scan = TableScanNode("t", "title")
        assert greedy_join_tree(paper_query, {"t": scan}, {"t": 7.0}, context.estimates) is scan


class TestCostModel:
    def test_pushdown_cheaper_than_no_pushdown_for_disjunction(self, context):
        pushdown = TPushdownPlanner(context).build_plan()
        pushconj = TPushConjPlanner(context).build_plan()
        annotations_a = context.tag_map_builder().build(pushdown)
        annotations_b = context.tag_map_builder().build(pushconj)
        cost_a = estimate_plan_cost(pushdown, annotations_a, context.estimates).total
        cost_b = estimate_plan_cost(pushconj, annotations_b, context.estimates).total
        assert cost_a > 0 and cost_b > 0

    def test_cost_breakdown_components(self, context):
        plan = TPushdownPlanner(context).build_plan()
        annotations = context.tag_map_builder().build(plan)
        breakdown = estimate_plan_cost(plan, annotations, context.estimates)
        assert breakdown.total == pytest.approx(
            breakdown.filter_cost + breakdown.join_cost + breakdown.scan_cost
        )
        assert breakdown.join_cost > 0
        assert breakdown.scan_cost > 0  # per-leaf access-path I/O term

    def test_alpha_scales_filter_cost(self, context):
        plan = TPushdownPlanner(context).build_plan()
        annotations = context.tag_map_builder().build(plan)
        cheap = estimate_plan_cost(plan, annotations, context.estimates, CostParams(alpha=1.0))
        expensive = estimate_plan_cost(
            plan, annotations, context.estimates, CostParams(alpha=10.0)
        )
        assert expensive.filter_cost == pytest.approx(10 * cheap.filter_cost)
        assert expensive.join_cost == pytest.approx(cheap.join_cost)


class TestTPushdown:
    def test_all_base_predicates_pushed(self, context):
        plan = TPushdownPlanner(context).build_plan()
        filters = collect_filters(plan)
        assert len(filters) == 4
        for filter_node in filters:
            # Every filter sits below the join, above a scan or another filter.
            assert isinstance(filter_node.child, (TableScanNode, FilterNode))

    def test_single_join(self, context):
        plan = TPushdownPlanner(context).build_plan()
        assert len(collect_joins(plan)) == 1

    def test_project_root(self, context):
        plan = TPushdownPlanner(context).build_plan()
        assert isinstance(plan, ProjectNode)

    def test_single_table_query(self, paper_catalog):
        query = Query(tables={"t": "title"}, predicate=col("t", "production_year") > lit(2000))
        context = PlannerContext.for_query(query, paper_catalog)
        plan = TPushdownPlanner(context).build_plan()
        assert len(collect_filters(plan)) == 1
        assert len(collect_joins(plan)) == 0

    def test_query_without_predicate(self, paper_catalog, paper_query):
        query = Query(
            tables=dict(paper_query.tables),
            join_conditions=list(paper_query.join_conditions),
        )
        context = PlannerContext.for_query(query, paper_catalog)
        plan = TPushdownPlanner(context).build_plan()
        assert collect_filters(plan) == []
        assert len(collect_joins(plan)) == 1


class TestPlanRewrites:
    def test_pullup_once_moves_filter_above_join(self, context):
        plan = TPushdownPlanner(context).build_plan()
        target = collect_filters(plan)[0].predicate
        # Pull the filter up until it sits directly above the join.
        current = plan
        for _ in range(4):
            rewritten = pullup_once(current, target.key())
            if rewritten is None:
                break
            current = rewritten
        filters_above_join = [
            node for node in collect_filters(current) if isinstance(node.child, JoinNode)
        ]
        assert any(node.predicate.key() == target.key() for node in filters_above_join)

    def test_pullup_preserves_filter_count(self, context):
        plan = TPushdownPlanner(context).build_plan()
        target = collect_filters(plan)[0].predicate
        rewritten = pullup_once(plan, target.key())
        assert rewritten is not None
        assert len(collect_filters(rewritten)) == len(collect_filters(plan))

    def test_pullup_of_missing_filter_returns_none(self, context):
        plan = TPushdownPlanner(context).build_plan()
        assert pullup_once(plan, "(no such predicate)") is None

    def test_pullup_stops_below_projection(self, context):
        plan = TPushdownPlanner(context).build_plan()
        target = collect_filters(plan)[0].predicate
        current = plan
        for _ in range(20):
            rewritten = pullup_once(current, target.key())
            if rewritten is None:
                break
            current = rewritten
        assert rewritten is None  # eventually it cannot go higher
        assert len(collect_filters(current)) == 4

    def test_push_filter_to_alias(self, context):
        iterpush = TIterPushPlanner(context)
        base = iterpush.build_plan()
        predicate = collect_filters(base)[0].predicate
        alias = next(iter(predicate.tables()))
        pushed = push_filter_to_alias(base, predicate, alias)
        target_filters = [
            node
            for node in collect_filters(pushed)
            if node.predicate.key() == predicate.key()
        ]
        assert len(target_filters) == 1
        assert isinstance(target_filters[0].child, TableScanNode)


class TestPlannersEndToEnd:
    @pytest.mark.parametrize(
        "planner_class",
        [TPushdownPlanner, TPullupPlanner, TIterPushPlanner, TPushConjPlanner, TCombinedPlanner],
    )
    def test_planner_produces_complete_plan(self, context, planner_class):
        result = planner_class(context).plan()
        assert isinstance(result.plan, ProjectNode)
        assert result.estimated_cost >= 0
        assert result.annotations.projection is not None
        # No planner may lose predicates: all four base predicates appear
        # (TPushConj keeps them inside one complex filter).
        rendered = plan_to_string(result.plan)
        for fragment in ("2000", "1980", "8.0", "7.0"):
            assert fragment in rendered

    def test_tcombined_picks_cheapest_candidate(self, context):
        combined = TCombinedPlanner(context)
        result = combined.plan()
        candidate_costs = [candidate.estimated_cost for candidate in combined.candidates()]
        assert result.estimated_cost == pytest.approx(min(candidate_costs))

    def test_tpullup_pulls_expensive_predicate_above_selective_join(self, paper_catalog):
        """The Section 4.2 motivating case: a very selective score predicate
        plus an expensive regex on title -> the regex should end up above the
        join in the TPullup (and TCombined) plan."""
        predicate = and_(
            col("mi_idx", "info") > lit(9.2),
            ilike(col("t", "title"), "%godfather%"),
        )
        query = Query(
            tables={"t": "title", "mi_idx": "movie_info_idx"},
            join_conditions=[JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))],
            predicate=predicate,
        )
        context = PlannerContext.for_query(query, paper_catalog)
        plan = TPullupPlanner(context).build_plan()
        filters_above_join = [
            node for node in collect_filters(plan) if isinstance(node.child, JoinNode)
        ]
        assert any("godfather" in node.predicate.key() for node in filters_above_join)

"""Cross-model agreement on the JOB-style workload.

The per-module tests exercise each execution model in isolation; these
integration tests assert that, on the workload the paper actually evaluates
(the combined JOB-style disjunctive query groups), every execution model and
every planner extension returns exactly the same rows — and that the work
counters move in the direction the paper's analysis predicts.
"""

from __future__ import annotations

import pytest

from repro.workloads.job import common_subexpression_keys, job_query

GROUPS = (1, 2, 5, 7)


@pytest.fixture(scope="module")
def reference_results(imdb_session):
    """TCombined results for the tested groups (shared across tests)."""
    return {
        group: imdb_session.execute(job_query(group), planner="tcombined")
        for group in GROUPS
    }


class TestModelAgreement:
    @pytest.mark.parametrize("group", GROUPS)
    def test_bypass_matches_tagged(self, imdb_session, reference_results, group):
        bypass = imdb_session.execute(job_query(group), planner="bypass")
        assert bypass.sorted_rows() == reference_results[group].sorted_rows()

    @pytest.mark.parametrize("group", GROUPS)
    def test_texhaustive_matches_tagged(self, imdb_session, reference_results, group):
        exhaustive = imdb_session.execute(job_query(group), planner="texhaustive")
        assert exhaustive.sorted_rows() == reference_results[group].sorted_rows()

    @pytest.mark.parametrize("group", GROUPS)
    def test_bdisj_matches_tagged(self, imdb_session, reference_results, group):
        bdisj = imdb_session.execute(job_query(group), planner="bdisj")
        assert bdisj.sorted_rows() == reference_results[group].sorted_rows()

    @pytest.mark.parametrize("group", GROUPS[:2])
    def test_histogram_stats_match_measured(self, imdb_catalog, reference_results, group):
        from repro import Session

        session = Session(imdb_catalog, stats_sample_size=4_000, selectivity_mode="histogram")
        result = session.execute(job_query(group), planner="tcombined")
        assert result.sorted_rows() == reference_results[group].sorted_rows()


class TestWorkCounterDirections:
    """The paper's qualitative claims, checked on a real JOB-style group."""

    @pytest.mark.parametrize("group", GROUPS[:2])
    def test_bdisj_needs_union_tagged_does_not(self, imdb_session, reference_results, group):
        bdisj = imdb_session.execute(job_query(group), planner="bdisj")
        tagged = reference_results[group]
        assert tagged.metrics.union_input_rows == 0
        if bdisj.row_count > 0:
            assert bdisj.metrics.union_input_rows >= bdisj.row_count

    @pytest.mark.parametrize("group", GROUPS[:2])
    def test_bdisj_reevaluates_shared_subexpressions(self, imdb_session, reference_results, group):
        query = job_query(group)
        shared = common_subexpression_keys(query)
        bdisj = imdb_session.execute(query, planner="bdisj")
        tagged = reference_results[group]
        if shared:
            assert (
                bdisj.metrics.predicate_rows_evaluated
                >= tagged.metrics.predicate_rows_evaluated
            )

    @pytest.mark.parametrize("group", GROUPS[:2])
    def test_bypass_builds_at_least_as_many_hash_tables(
        self, imdb_session, reference_results, group
    ):
        bypass = imdb_session.execute(job_query(group), planner="bypass")
        tagged = reference_results[group]
        assert bypass.metrics.hash_tables_built >= tagged.metrics.hash_tables_built

"""Disk format v3: the append log, snapshot loads, compaction, CLI verbs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Catalog, Session, Table
from repro.cli import main
from repro.mutation import MutationError
from repro.mutation.diskops import (
    append_rows_to_saved_catalog,
    compact_saved_catalog,
    delete_rows_from_saved_catalog,
)
from repro.storage.disk import (
    MANIFEST_NAME,
    CatalogFormatError,
    add_index_to_saved_catalog,
    load_catalog,
    save_catalog,
)


def _saved_dataset(tmp_path):
    catalog = Catalog(
        [
            Table.from_dict(
                "t",
                {
                    "id": list(range(30)),
                    "v": [float(i % 7) for i in range(30)],
                    "s": [f"n{i % 4}" for i in range(30)],
                },
            )
        ]
    )
    root = tmp_path / "data"
    save_catalog(catalog, root)
    return root


class TestAppendLog:
    def test_append_does_not_rewrite_base_files(self, tmp_path):
        root = _saved_dataset(tmp_path)
        base_file = root / "t" / "id.values.npy"
        before = base_file.stat().st_mtime_ns
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        assert base_file.stat().st_mtime_ns == before
        loaded = load_catalog(root)
        assert loaded.get("t").num_rows == 31

    def test_append_unknown_column_raises(self, tmp_path):
        root = _saved_dataset(tmp_path)
        with pytest.raises(MutationError, match="unknown columns"):
            append_rows_to_saved_catalog(root, "t", [{"nope": 1}])

    def test_delete_records_matching_positions(self, tmp_path):
        root = _saved_dataset(tmp_path)
        record = delete_rows_from_saved_catalog(root, "t", "t.v = 3.0")
        assert record["rows"] == len([i for i in range(30) if i % 7 == 3])
        loaded = load_catalog(root)
        result = Session(loaded).execute("SELECT t.id FROM t AS t WHERE t.v = 3.0")
        assert result.row_count == 0

    def test_consecutive_appends_coalesce_identically(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        append_rows_to_saved_catalog(root, "t", [{"id": 101, "v": 2.0, "s": "y"}])
        append_rows_to_saved_catalog(root, "t", [{"id": 102, "v": 3.0, "s": None}])
        table = load_catalog(root).get("t")
        assert table.num_rows == 33
        assert [table.row(position)["id"] for position in (30, 31, 32)] == [100, 101, 102]
        assert table.row(32)["s"] is None

    def test_interleaved_multi_table_appends_coalesce(self, tmp_path):
        catalog = Catalog(
            [
                Table.from_dict("a", {"id": [1, 2], "x": [1.0, 2.0]}),
                Table.from_dict("b", {"id": [1], "y": [0.5]}),
            ]
        )
        root = tmp_path / "multi"
        save_catalog(catalog, root)
        # a-appends interleaved with b-records must still all apply, and a
        # delete on b must not flush (or disturb) a's buffered appends.
        append_rows_to_saved_catalog(root, "a", [{"id": 10, "x": 10.0}])
        append_rows_to_saved_catalog(root, "b", [{"id": 20, "y": 0.9}])
        append_rows_to_saved_catalog(root, "a", [{"id": 11, "x": 11.0}])
        delete_rows_from_saved_catalog(root, "b", "b.y > 0.8")
        append_rows_to_saved_catalog(root, "a", [{"id": 12, "x": 12.0}])
        loaded = load_catalog(root)
        a = loaded.get("a")
        assert [a.row(p)["id"] for p in range(a.num_rows)] == [1, 2, 10, 11, 12]
        b = loaded.get("b")
        assert b.num_live == 1 and b.row(0)["id"] == 1

    def test_filtered_load_reads_one_table(self, tmp_path):
        catalog = Catalog(
            [
                Table.from_dict("a", {"id": [1, 2]}),
                Table.from_dict("b", {"id": [3]}),
            ]
        )
        root = tmp_path / "filtered"
        save_catalog(catalog, root)
        append_rows_to_saved_catalog(root, "a", [{"id": 10}])
        only_a = load_catalog(root, tables=["a"])
        assert only_a.table_names == ["a"]
        assert only_a.get("a").num_rows == 3
        with pytest.raises(CatalogFormatError, match="unknown table"):
            load_catalog(root, tables=["nope"])

    def test_compact_preserves_zone_map_sidecars(self, tmp_path):
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root)
        from repro.access.manager import ensure_access_manager

        ensure_access_manager(catalog).zone_map("t", "v")  # materialize
        save_catalog(catalog, root)
        assert (root / "t" / "v.zonemap.npy").exists() or (
            root / "t" / "v.zonemap.npz"
        ).exists()
        delete_rows_from_saved_catalog(root, "t", "t.id < 3")
        compact_saved_catalog(root)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert any(
            entry["table"] == "t" and entry["column"] == "v"
            for entry in manifest.get("zone_maps", [])
        )
        # The rewritten sidecar must describe the compacted geometry.
        loaded = load_catalog(root)
        zone_map = loaded.access_manager.zone_map("t", "v")
        assert int(zone_map.row_counts.sum()) == 27

    def test_interleaved_log_replays_in_order(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 3.0, "s": "x"}])
        delete_rows_from_saved_catalog(root, "t", "t.v = 3.0")  # kills id=100 too
        append_rows_to_saved_catalog(root, "t", [{"id": 101, "v": 3.0, "s": "y"}])
        result = Session(load_catalog(root)).execute(
            "SELECT t.id FROM t AS t WHERE t.v = 3.0"
        )
        assert sorted(row[0] for row in result.rows) == [101]

    def test_snapshot_bounds_the_replay(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        delete_rows_from_saved_catalog(root, "t", "t.id < 5")
        assert load_catalog(root, snapshot=0).get("t").num_rows == 30
        middle = load_catalog(root, snapshot=1).get("t")
        assert middle.num_rows == 31 and not middle.has_deletes()
        full = load_catalog(root).get("t")
        assert full.num_rows == 31 and full.num_deleted == 5
        with pytest.raises(CatalogFormatError, match="out of range"):
            load_catalog(root, snapshot=9)

    def test_segment_stats_seed_merged_bounds(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 99.5, "s": "x"}])
        column = load_catalog(root).get("t").column("v")
        distinct, bounds, known = column.cached_statistics()
        assert known and bounds == (0.0, 99.5)
        assert distinct is not None


class TestSidecarCatchUp:
    def test_index_saved_before_appends_is_extended_on_load(self, tmp_path):
        root = _saved_dataset(tmp_path)
        add_index_to_saved_catalog(root, "t", "v", kind="sorted")
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 0.5, "s": "x"}])
        loaded = load_catalog(root)
        index = loaded.access_manager.index_for("t", "v")
        assert index.size == 31
        result = Session(loaded).execute("SELECT t.id FROM t AS t WHERE t.v = 0.5")
        assert 100 in {row[0] for row in result.rows}

    def test_bounded_snapshot_skips_future_sidecars(self, tmp_path):
        # Index created AFTER an append: the sidecar covers 31 rows, a
        # snapshot=0 load holds 30 — the sidecar postdates that point in
        # history and must be skipped, not treated as corruption.
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 0.5, "s": "x"}])
        add_index_to_saved_catalog(root, "t", "v", kind="sorted")
        base = load_catalog(root, snapshot=0)
        assert base.get("t").num_rows == 30
        manager = base.access_manager
        assert manager is None or not manager.has_index("t", "v")
        result = Session(base).execute("SELECT t.id FROM t AS t WHERE t.v = 0.5")
        assert 100 not in {row[0] for row in result.rows}

    def test_corrupt_row_count_raises(self, tmp_path):
        root = _saved_dataset(tmp_path)
        add_index_to_saved_catalog(root, "t", "v", kind="sorted")
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["indexes"][0]["rows"] = 999
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CatalogFormatError, match="covers"):
            load_catalog(root)


class TestDeleteMaskPersistence:
    def test_saving_a_mutated_catalog_round_trips_the_mask(self, tmp_path):
        catalog = Catalog(
            [Table.from_dict("t", {"id": list(range(10)), "v": [float(i) for i in range(10)]})]
        )
        batch = catalog.begin_mutation()
        batch.delete("t", positions=[2, 4])
        batch.commit()
        root = tmp_path / "masked"
        save_catalog(catalog, root)
        loaded = load_catalog(root)
        assert loaded.get("t").num_deleted == 2
        assert np.array_equal(loaded.get("t").delete_mask, catalog.get("t").delete_mask)


class TestCompaction:
    def test_compact_folds_log_and_preserves_results(self, tmp_path):
        root = _saved_dataset(tmp_path)
        add_index_to_saved_catalog(root, "t", "v", kind="sorted")
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 2.0, "s": "x"}])
        delete_rows_from_saved_catalog(root, "t", "t.v = 5.0")
        sql = "SELECT t.id, t.v FROM t AS t WHERE t.v = 2.0 OR t.v = 5.0"
        before = Session(load_catalog(root)).execute(sql).rows
        summary = compact_saved_catalog(root)
        assert summary["records_folded"] == 2
        assert summary["rows_reclaimed"] == len([i for i in range(30) if i % 7 == 5])
        after_catalog = load_catalog(root)
        after_table = after_catalog.get("t")
        assert not after_table.has_deletes()
        assert Session(after_catalog).execute(sql).rows == before
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert not manifest.get("mutations")
        assert manifest.get("indexes")
        assert not list((root / "t").glob("segment-*"))
        assert not list((root / "t").glob("delete-*"))


class TestMutationCli:
    def test_insert_delete_query_snapshot_compact(self, tmp_path, capsys):
        root = str(_saved_dataset(tmp_path))
        assert main(
            ["insert", "--data", root, "--table", "t",
             "--values", '[{"id": 100, "v": 2.0, "s": "x"}]']
        ) == 0
        assert "appended 1 rows" in capsys.readouterr().out
        assert main(["delete", "--data", root, "--table", "t", "--where", "t.v = 2.0"]) == 0
        assert "deleted" in capsys.readouterr().out
        assert main(
            ["query", "--data", root, "--sql", "SELECT t.id FROM t AS t WHERE t.v = 2.0"]
        ) == 0
        assert "0 rows" in capsys.readouterr().out
        assert main(
            ["query", "--data", root, "--snapshot", "1",
             "--sql", "SELECT t.id FROM t AS t WHERE t.id = 100"]
        ) == 0
        assert "1 rows" in capsys.readouterr().out
        assert main(["compact", "--data", root]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_insert_requires_exactly_one_source(self, tmp_path, capsys):
        root = str(_saved_dataset(tmp_path))
        assert main(["insert", "--data", root, "--table", "t"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_insert_from_csv(self, tmp_path, capsys):
        root = _saved_dataset(tmp_path)
        csv_path = tmp_path / "rows.csv"
        csv_path.write_text("id,v,s\n200,4.5,zz\n201,,\n")
        assert main(
            ["insert", "--data", str(root), "--table", "t", "--csv", str(csv_path)]
        ) == 0
        assert "appended 2 rows" in capsys.readouterr().out
        table = load_catalog(root).get("t")
        assert table.row(31) == {"id": 201, "v": None, "s": None}

    def test_table_stats_subcommand(self, tmp_path, capsys):
        root = str(_saved_dataset(tmp_path))
        assert main(["delete", "--data", root, "--table", "t", "--where", "t.id < 3"]) == 0
        capsys.readouterr()
        assert main(["table", "stats", "t", "--data", root]) == 0
        out = capsys.readouterr().out
        assert "27 rows (3 deleted)" in out
        assert "distinct" in out and "v" in out

    def test_table_stats_unknown_table(self, tmp_path, capsys):
        root = str(_saved_dataset(tmp_path))
        assert main(["table", "stats", "nope", "--data", root]) == 2
        assert "unknown table" in capsys.readouterr().err

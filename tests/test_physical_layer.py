"""Tests for the physical-operator layer, partitioning, and merge-safe metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Session, Table
from repro.engine.metrics import ExecContext, ExecutionMetrics
from repro.engine.parallel import choose_partition_alias, execute_plan
from repro.physical.batches import (
    merge_output_columns,
    merge_relations,
    merge_stream_sets,
    merge_tagged_relations,
)
from repro.baseline.relation import Relation
from repro.bypass.streams import BypassStream, StreamSet
from repro.core.tagged_relation import TaggedRelation
from repro.core.tags import Tag
from repro.engine.result import OutputColumns
from repro.physical.compile import compile_plan
from repro.physical.operators import ScanPhysical
from repro.storage.bitmap import Bitmap
from repro.storage.table import TablePartition


@pytest.fixture()
def small_table() -> Table:
    return Table.from_dict("t", {"id": list(range(10)), "v": [x * 2 for x in range(10)]})


class TestTablePartitions:
    def test_partitions_cover_all_rows_without_overlap(self, small_table):
        parts = small_table.partitions(3)
        assert [part.index for part in parts] == [0, 1, 2]
        assert parts[0].start == 0 and parts[-1].stop == 10
        covered = np.concatenate([part.positions() for part in parts])
        assert covered.tolist() == list(range(10))

    def test_partitions_balanced(self, small_table):
        sizes = [part.num_rows for part in small_table.partitions(3)]
        assert sizes == [4, 3, 3]

    def test_count_clamped_to_rows(self, small_table):
        parts = small_table.partitions(100)
        assert len(parts) == 10
        assert all(part.num_rows == 1 for part in parts)

    def test_empty_table_yields_single_empty_partition(self):
        from repro.storage.column import Column, ColumnType

        empty = Table("empty", [Column("id", [], ctype=ColumnType.INT)])
        parts = empty.partitions(4)
        assert len(parts) == 1
        assert parts[0].num_rows == 0

    def test_invalid_count_rejected(self, small_table):
        with pytest.raises(ValueError):
            small_table.partitions(0)

    def test_out_of_bounds_partition_rejected(self, small_table):
        with pytest.raises(ValueError):
            TablePartition(small_table, 0, 5, 99)


class TestPhysicalProtocol:
    def test_scan_emits_one_batch_then_exhausts(self, small_table):
        scan = ScanPhysical("traditional", "t", small_table)
        context = ExecContext()
        scan.open(context)
        batch = scan.next_batch()
        assert batch.num_rows == 10
        assert scan.next_batch() is None
        scan.close()
        # Reopening resets the operator.
        scan.open(context)
        assert scan.next_batch().num_rows == 10
        scan.close()

    def test_partitioned_scan_restricted_to_range(self, small_table):
        partition = small_table.partitions(2)[1]
        scan = ScanPhysical("traditional", "t", small_table, partition)
        scan.open(ExecContext())
        batch = scan.next_batch()
        assert batch.indices["t"].tolist() == list(range(partition.start, partition.stop))

    def test_next_batch_before_open_raises(self, small_table):
        scan = ScanPhysical("traditional", "t", small_table)
        with pytest.raises(RuntimeError, match="open"):
            scan.next_batch()

    def test_scan_kinds_produce_model_batches(self, small_table):
        for kind, expected in (
            ("traditional", Relation),
            ("tagged", TaggedRelation),
            ("bypass", StreamSet),
        ):
            scan = ScanPhysical(kind, "t", small_table)
            scan.open(ExecContext())
            assert isinstance(scan.next_batch(), expected)

    def test_unknown_kind_rejected(self, small_table):
        with pytest.raises(ValueError, match="kind"):
            ScanPhysical("mystery", "t", small_table)


class TestBatchMerging:
    def test_merge_relations_preserves_order(self, small_table):
        first = Relation({"t": small_table}, {"t": np.array([0, 1])})
        second = Relation({"t": small_table}, {"t": np.array([5, 6])})
        merged = merge_relations([first, second])
        assert merged.indices["t"].tolist() == [0, 1, 5, 6]

    def test_merge_tagged_relations_offsets_slices(self, small_table):
        tag = Tag.empty()
        first = TaggedRelation(
            {"t": small_table}, {"t": np.array([0, 1])}, {tag: Bitmap.full(2)}
        )
        second = TaggedRelation(
            {"t": small_table}, {"t": np.array([5, 6, 7])}, {tag: Bitmap.from_mask(np.array([True, False, True]))}
        )
        merged = merge_tagged_relations([first, second])
        assert merged.num_rows == 5
        assert merged.slices[tag].positions().tolist() == [0, 1, 2, 4]
        assert merged.indices["t"].tolist() == [0, 1, 5, 6, 7]

    def test_merge_stream_sets_merges_equal_tags(self, small_table):
        tag = Tag.empty()
        first = StreamSet([BypassStream(tag, Relation({"t": small_table}, {"t": np.array([0])}))])
        second = StreamSet([BypassStream(tag, Relation({"t": small_table}, {"t": np.array([1])}))])
        merged = merge_stream_sets([first, second])
        assert merged.num_streams == 1
        assert merged.total_rows == 2

    def test_merge_output_columns_concatenates(self):
        def block(values):
            data = np.array(values)
            return OutputColumns(
                names=["t.v"],
                columns=[(data, np.zeros(len(values), dtype=np.bool_))],
                row_count=len(values),
            )

        merged = merge_output_columns([block([1, 2]), block([3]), block([])])
        assert merged.row_count == 3
        assert merged.columns[0][0].tolist() == [1, 2, 3]

    def test_merge_output_columns_all_empty_keeps_schema(self):
        empty = OutputColumns(names=["t.v"], columns=[(np.array([]), np.array([], dtype=np.bool_))], row_count=0)
        merged = merge_output_columns([empty, OutputColumns.empty()])
        assert merged.names == ["t.v"]
        assert merged.row_count == 0


class TestMergeSafeMetrics:
    def test_fork_and_absorb_do_not_double_count(self):
        parent = ExecContext()
        parent.metrics.operators_executed = 5
        children = [parent.fork() for _ in range(3)]
        for child in children:
            assert child.metrics.operators_executed == 0
            assert child.cache is parent.cache
            child.metrics.operators_executed += 2
            child.iostats.record_values(7)
        for child in children:
            parent.absorb(child)
        assert parent.metrics.operators_executed == 5 + 3 * 2
        assert parent.iostats.values_read == 3 * 7

    def test_parallel_metrics_equal_serial_metrics(self):
        """Regression: per-morsel metrics reduce to exactly the serial totals.

        The same partitioned plan run with 1 worker and with 4 workers must
        report identical work counters — concurrency must never lose or
        double-count increments.
        """
        catalog = Catalog(
            [
                Table.from_dict(
                    "big", {"id": list(range(300)), "v": [i % 17 for i in range(300)]}
                ),
                Table.from_dict("dim", {"fid": list(range(0, 300, 3))}),
            ]
        )
        session = Session(catalog, stats_sample_size=300)
        sql = (
            "SELECT big.id FROM big AS big JOIN dim AS dim ON big.id = dim.fid "
            "WHERE big.v < 9 OR big.v > 15"
        )
        prepared = session.prepare(sql, planner="tcombined")
        serial = session.execute_prepared(prepared, parallelism=1, partitions=5)
        parallel = session.execute_prepared(prepared, parallelism=4, partitions=5)
        assert serial.metrics.as_dict() == parallel.metrics.as_dict()
        assert serial.metrics.morsels_executed == 5
        assert serial.iostats.values_read == parallel.iostats.values_read
        assert serial.rows == parallel.rows

    def test_execution_metrics_merge_covers_every_counter(self):
        """merge() must accumulate every dataclass field (none forgotten)."""
        source = ExecutionMetrics()
        for index, name in enumerate(vars(source), start=1):
            if isinstance(getattr(source, name), dict):
                continue  # observation maps are exercised below
            setattr(source, name, index)
        source.record_predicate("t.a > 1", 10, 4)
        source.record_operator(3, 8, 2)
        target = ExecutionMetrics()
        target.merge(source)
        assert vars(target) == vars(source)
        target.merge(source)
        assert target.predicate_counts == {"t.a > 1": [20, 8]}
        assert target.operator_actuals == {3: [16, 4]}
        assert target.observed_selectivity("t.a > 1") == pytest.approx(0.4)
        scalar_fields = {
            name for name, value in vars(source).items() if not isinstance(value, dict)
        }
        assert set(source.as_dict()) == scalar_fields


class TestPartitionAliasChoice:
    def test_largest_table_chosen_deterministically(self):
        catalog = Catalog(
            [
                Table.from_dict("big", {"id": list(range(50)), "v": list(range(50))}),
                Table.from_dict("small", {"fid": list(range(5))}),
            ]
        )
        session = Session(catalog, stats_sample_size=50)
        prepared = session.prepare(
            "SELECT big.id FROM big AS big JOIN small AS small ON big.id = small.fid",
            planner="bpushconj",
        )
        alias = choose_partition_alias(prepared.kind, prepared.plan, catalog)
        assert alias == "big"

    def test_invalid_parallelism_rejected(self):
        catalog = Catalog([Table.from_dict("t", {"id": [1, 2]})])
        session = Session(catalog, stats_sample_size=2)
        prepared = session.prepare("SELECT t.id FROM t AS t", planner="bpushconj")
        with pytest.raises(ValueError, match="parallelism"):
            execute_plan(
                prepared.kind, prepared.plan, catalog, ExecContext(), parallelism=0
            )
        with pytest.raises(ValueError, match="partitions"):
            execute_plan(
                prepared.kind, prepared.plan, catalog, ExecContext(), partitions=0
            )

    def test_session_validates_knobs(self):
        catalog = Catalog([Table.from_dict("t", {"id": [1]})])
        with pytest.raises(ValueError):
            Session(catalog, parallelism=0)
        with pytest.raises(ValueError):
            Session(catalog, partitions=0)


class TestCompiledPlanReuse:
    def test_compiled_tree_reusable_across_contexts(self):
        """A PhysicalPlan can be executed repeatedly (open/close resets it)."""
        catalog = Catalog([Table.from_dict("t", {"id": [1, 2, 3], "v": [1.0, 2.0, 3.0]})])
        session = Session(catalog, stats_sample_size=3)
        prepared = session.prepare(
            "SELECT t.id FROM t AS t WHERE t.v < 2.5", planner="bpushconj"
        )
        physical = compile_plan(prepared.kind, prepared.plan, catalog)
        first = physical.execute(ExecContext())
        second = physical.execute(ExecContext())
        assert first.row_count == second.row_count == 2

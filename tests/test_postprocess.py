"""Tests for output shaping: aggregation, DISTINCT, ORDER BY, LIMIT."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AggregateFunction, AggregateSpec, OrderItem
from repro.engine.postprocess import (
    OutputShapingError,
    aggregate,
    apply_output_shaping,
    distinct,
    limit,
    order_by,
)
from repro.engine.result import OutputColumns
from repro.expr.builders import col
from repro.plan.query import Query


def _output(names: list[str], columns: list[list]) -> OutputColumns:
    """Helper building OutputColumns from Python value lists (None = NULL)."""
    built = []
    for values in columns:
        nulls = np.array([value is None for value in values], dtype=np.bool_)
        cleaned = [0 if value is None else value for value in values]
        if any(isinstance(value, str) for value in values if value is not None):
            cleaned = ["" if value is None else value for value in values]
            data = np.array(cleaned, dtype=object)
        else:
            data = np.array(cleaned)
        built.append((data, nulls))
    row_count = len(columns[0]) if columns else 0
    return OutputColumns(names=names, columns=built, row_count=row_count)


class TestAggregate:
    def test_count_star_without_group_by(self):
        output = _output(["t.x"], [[1, 2, 3, 4]])
        spec = AggregateSpec(AggregateFunction.COUNT)
        result = aggregate(output, [], [spec])
        assert result.names == ["COUNT(*)"]
        assert result.row_count == 1
        assert result.columns[0][0][0] == 4

    def test_count_star_on_empty_input_returns_zero_row(self):
        output = _output(["t.x"], [[]])
        result = aggregate(output, [], [AggregateSpec(AggregateFunction.COUNT)])
        assert result.row_count == 1
        assert result.columns[0][0][0] == 0

    def test_count_column_skips_nulls(self):
        output = _output(["t.x"], [[1, None, 3, None]])
        spec = AggregateSpec(AggregateFunction.COUNT, col("t", "x"))
        result = aggregate(output, [], [spec])
        assert result.columns[0][0][0] == 2

    def test_count_distinct(self):
        output = _output(["t.x"], [[1, 1, 2, None, 2]])
        spec = AggregateSpec(AggregateFunction.COUNT, col("t", "x"), distinct=True)
        result = aggregate(output, [], [spec])
        assert result.names == ["COUNT(DISTINCT t.x)"]
        assert result.columns[0][0][0] == 2

    def test_sum_avg_min_max(self):
        output = _output(["t.x"], [[1.0, 2.0, 3.0, None]])
        specs = [
            AggregateSpec(AggregateFunction.SUM, col("t", "x")),
            AggregateSpec(AggregateFunction.AVG, col("t", "x")),
            AggregateSpec(AggregateFunction.MIN, col("t", "x")),
            AggregateSpec(AggregateFunction.MAX, col("t", "x")),
        ]
        result = aggregate(output, [], specs)
        values = [column[0][0] for column in result.columns]
        assert values == [6.0, 2.0, 1.0, 3.0]

    def test_sum_of_all_nulls_is_null(self):
        output = _output(["t.x"], [[None, None]])
        result = aggregate(output, [], [AggregateSpec(AggregateFunction.SUM, col("t", "x"))])
        assert bool(result.columns[0][1][0]) is True  # null flag set

    def test_group_by_groups_and_preserves_first_seen_order(self):
        output = _output(
            ["t.category", "t.x"],
            [["b", "a", "b", "a", "c"], [1, 2, 3, 4, 5]],
        )
        result = aggregate(
            output,
            [col("t", "category")],
            [
                AggregateSpec(AggregateFunction.COUNT),
                AggregateSpec(AggregateFunction.SUM, col("t", "x")),
            ],
        )
        assert result.names == ["t.category", "COUNT(*)", "SUM(t.x)"]
        categories = list(result.columns[0][0])
        counts = list(result.columns[1][0])
        sums = list(result.columns[2][0])
        assert categories == ["b", "a", "c"]
        assert counts == [2, 2, 1]
        assert sums == [4, 6, 5]

    def test_group_by_null_key_forms_its_own_group(self):
        output = _output(["t.k", "t.x"], [[None, "a", None], [1, 2, 3]])
        result = aggregate(
            output, [col("t", "k")], [AggregateSpec(AggregateFunction.COUNT)]
        )
        assert result.row_count == 2

    def test_min_max_on_strings(self):
        output = _output(["t.s"], [["pear", "apple", "fig"]])
        result = aggregate(
            output,
            [],
            [
                AggregateSpec(AggregateFunction.MIN, col("t", "s")),
                AggregateSpec(AggregateFunction.MAX, col("t", "s")),
            ],
        )
        assert result.columns[0][0][0] == "apple"
        assert result.columns[1][0][0] == "pear"

    def test_unknown_column_raises(self):
        output = _output(["t.x"], [[1]])
        with pytest.raises(OutputShapingError, match="not found"):
            aggregate(output, [col("t", "missing")], [AggregateSpec(AggregateFunction.COUNT)])

    def test_aggregate_spec_validation(self):
        with pytest.raises(ValueError):
            AggregateSpec(AggregateFunction.SUM)
        with pytest.raises(ValueError):
            AggregateSpec(AggregateFunction.MIN, col("t", "x"), distinct=True)


class TestDistinctOrderLimit:
    def test_distinct_keeps_first_occurrence(self):
        output = _output(["t.x", "t.y"], [[1, 1, 2, 1], ["a", "a", "b", "a"]])
        result = distinct(output)
        assert result.row_count == 2

    def test_distinct_treats_nulls_as_equal(self):
        output = _output(["t.x"], [[None, None, 1]])
        result = distinct(output)
        assert result.row_count == 2

    def test_order_by_ascending_and_descending(self):
        output = _output(["t.x"], [[3, 1, 2]])
        ascending = order_by(output, [OrderItem("t.x")])
        descending = order_by(output, [OrderItem("t.x", descending=True)])
        assert list(ascending.columns[0][0]) == [1, 2, 3]
        assert list(descending.columns[0][0]) == [3, 2, 1]

    def test_order_by_nulls_always_last(self):
        output = _output(["t.x"], [[3, None, 1]])
        ascending = order_by(output, [OrderItem("t.x")])
        descending = order_by(output, [OrderItem("t.x", descending=True)])
        assert bool(ascending.columns[0][1][-1]) is True
        assert bool(descending.columns[0][1][-1]) is True

    def test_order_by_multiple_keys(self):
        output = _output(
            ["t.a", "t.b"],
            [[1, 2, 1, 2], ["x", "y", "y", "x"]],
        )
        result = order_by(
            output, [OrderItem("t.a"), OrderItem("t.b", descending=True)]
        )
        rows = list(zip(result.columns[0][0].tolist(), result.columns[1][0].tolist()))
        assert rows == [(1, "y"), (1, "x"), (2, "y"), (2, "x")]

    def test_order_by_unknown_column_raises(self):
        output = _output(["t.x"], [[1]])
        with pytest.raises(OutputShapingError):
            order_by(output, [OrderItem("t.missing")])

    def test_limit_truncates(self):
        output = _output(["t.x"], [[1, 2, 3]])
        assert limit(output, 2).row_count == 2
        assert limit(output, 0).row_count == 0
        assert limit(output, 10).row_count == 3

    def test_limit_negative_raises(self):
        output = _output(["t.x"], [[1]])
        with pytest.raises(OutputShapingError):
            limit(output, -1)


class TestApplyOutputShaping:
    def test_full_pipeline(self):
        output = _output(
            ["t.category", "t.x"],
            [["a", "b", "a", "b", "c"], [1, 5, 3, 1, 9]],
        )
        query = Query(
            tables={"t": "t"},
            select=[col("t", "category")],
            aggregates=[AggregateSpec(AggregateFunction.SUM, col("t", "x"))],
            group_by=[col("t", "category")],
            order_by=[OrderItem("SUM(t.x)", descending=True)],
            limit=2,
        )
        result = apply_output_shaping(output, query)
        assert result.names == ["t.category", "SUM(t.x)"]
        assert result.row_count == 2
        assert list(result.columns[0][0]) == ["c", "b"]
        assert list(result.columns[1][0]) == [9, 6]

    def test_plain_distinct_order_limit(self):
        output = _output(["t.x"], [[2, 2, 3, 1, 3]])
        query = Query(
            tables={"t": "t"},
            select=[col("t", "x")],
            distinct=True,
            order_by=[OrderItem("t.x")],
            limit=2,
        )
        result = apply_output_shaping(output, query)
        assert list(result.columns[0][0]) == [1, 2]


class TestQueryValidation:
    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ValueError, match="GROUP BY"):
            Query(tables={"t": "t"}, group_by=[col("t", "x")])

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="LIMIT"):
            Query(tables={"t": "t"}, limit=-1)

    def test_group_by_unknown_alias_rejected(self):
        with pytest.raises(ValueError, match="unknown alias"):
            Query(
                tables={"t": "t"},
                aggregates=[AggregateSpec(AggregateFunction.COUNT)],
                group_by=[col("z", "x")],
            )

    def test_aggregate_unknown_alias_rejected(self):
        with pytest.raises(ValueError, match="unknown alias"):
            Query(
                tables={"t": "t"},
                aggregates=[AggregateSpec(AggregateFunction.SUM, col("z", "x"))],
            )

    def test_output_names(self):
        query = Query(
            tables={"t": "t"},
            aggregates=[
                AggregateSpec(AggregateFunction.COUNT),
                AggregateSpec(AggregateFunction.MIN, col("t", "x")),
            ],
            group_by=[col("t", "category")],
        )
        assert query.output_names() == ["t.category", "COUNT(*)", "MIN(t.x)"]
        assert query.has_output_shaping

"""Tests of the metrics registry: instruments, Prometheus exposition, CLI.

The format checker here is deliberately strict — it re-parses ``render()``
line by line against the Prometheus text exposition grammar (HELP/TYPE
headers, sample-line shape, cumulative non-decreasing buckets, ``+Inf``
bucket equal to ``_count``) rather than grepping for substrings, so a
malformed exposition fails loudly.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_VALUE = r"(?:[+-]?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)"
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.+)$")
_TYPE_RE = re.compile(rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(?:\{{le=\"({_VALUE})\"\}})? ({_VALUE})$"
)


def check_prometheus_text(text: str) -> list[str]:
    """Validate Prometheus text exposition; returns the family names seen."""
    assert text.endswith("\n"), "exposition must end with a newline"
    lines = text.splitlines()
    families: list[str] = []
    index = 0
    while index < len(lines):
        help_match = _HELP_RE.match(lines[index])
        assert help_match, f"expected # HELP, got {lines[index]!r}"
        name = help_match.group(1)
        assert index + 1 < len(lines), f"family {name} has no TYPE line"
        type_match = _TYPE_RE.match(lines[index + 1])
        assert type_match, f"expected # TYPE, got {lines[index + 1]!r}"
        assert type_match.group(1) == name, "TYPE names a different metric"
        kind = type_match.group(2)
        index += 2
        samples = []
        while index < len(lines) and not lines[index].startswith("#"):
            sample = _SAMPLE_RE.match(lines[index])
            assert sample, f"malformed sample line {lines[index]!r}"
            samples.append(sample)
            index += 1
        if kind in ("counter", "gauge"):
            assert len(samples) == 1, f"{name}: expected one sample"
            assert samples[0].group(1) == name
            assert samples[0].group(2) is None, f"{name}: unexpected le label"
            if kind == "counter":
                assert float(samples[0].group(3)) >= 0.0
        else:
            buckets = [s for s in samples if s.group(1) == f"{name}_bucket"]
            sums = [s for s in samples if s.group(1) == f"{name}_sum"]
            counts = [s for s in samples if s.group(1) == f"{name}_count"]
            assert len(buckets) >= 2, f"{name}: need at least one bound + +Inf"
            assert len(sums) == 1 and len(counts) == 1
            assert all(s.group(2) is not None for s in buckets)
            assert buckets[-1].group(2) == "+Inf", f"{name}: last bucket not +Inf"
            cumulative = [float(s.group(3)) for s in buckets]
            assert cumulative == sorted(cumulative), f"{name}: buckets decrease"
            assert cumulative[-1] == float(counts[0].group(3))
            bounds = [float(s.group(2)) for s in buckets[:-1]]
            assert bounds == sorted(bounds), f"{name}: bounds out of order"
        families.append(name)
    assert families == sorted(families), "families must render in sorted order"
    return families


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value == 0

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g", "help")
        gauge.set(2.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 3.0

    def test_histogram_buckets_observations(self):
        hist = Histogram("h", "help", buckets=(1.0, 10.0))
        for value in (0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 56.0
        assert hist.cumulative_counts() == [2, 3, 4]

    def test_histogram_boundary_lands_in_its_bucket(self):
        # le="1.0" means <= 1.0: an observation exactly on the bound counts.
        hist = Histogram("h", "help", buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.cumulative_counts() == [1, 1, 1]

    def test_histogram_rejects_degenerate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1.0, 1.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total")
        assert first is second

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.gauge("has space")

    def test_render_is_valid_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "a counter").inc(3)
        registry.gauge("a_gauge", "a gauge").set(1.5)
        hist = registry.histogram("c_seconds", "a histogram", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        families = check_prometheus_text(registry.render())
        assert families == ["a_gauge", "b_total", "c_seconds"]

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(2)
        hist = registry.histogram("h_seconds", buckets=(1.0,))
        hist.observe(0.5)
        snapshot = json.loads(registry.snapshot_json())
        assert snapshot["n_total"] == 2
        assert snapshot["h_seconds"] == {"buckets": {"1": 1}, "count": 1, "sum": 0.5}

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(9)
        registry.histogram("h_seconds").observe(1.0)
        registry.reset()
        assert registry.snapshot()["n_total"] == 0
        assert registry.snapshot()["h_seconds"]["count"] == 0

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestCli:
    def _dataset(self, tmp_path) -> str:
        root = tmp_path / "data"
        assert main(
            ["generate", "synthetic", "--out", str(root), "--table-size", "200"]
        ) == 0
        return str(root)

    def test_metrics_verb_emits_required_series(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        sql = "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid WHERE T1.A1 < 0.2"
        capsys.readouterr()
        assert main(["metrics", "--data", data, "--sql", f"{sql}; {sql}"]) == 0
        out = capsys.readouterr().out
        families = check_prometheus_text(out)
        for required in (
            "repro_plan_cache_hit_rate",
            "repro_page_cache_hits_total",
            "repro_page_cache_misses_total",
            "repro_wal_fsyncs_total",
            "repro_query_seconds",
            "repro_queries_total",
        ):
            assert required in families, f"missing metric family {required}"
        # The two identical statements make the second a plan-cache hit.
        assert re.search(r"^repro_plan_cache_hits_total [1-9]", out, re.M)
        assert re.search(r"^repro_query_seconds_count [1-9]", out, re.M)

    def test_wal_status_json_uses_registry_snapshot(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        row = {f"A{i}": 0.5 for i in range(1, 8)}
        row["fid"] = 1
        assert main(
            ["insert", "--data", data, "--table", "T1", "--values", json.dumps([row])]
        ) == 0
        capsys.readouterr()
        assert main(["wal", "status", "--data", data, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["repro_wal_exists"] == 1
        assert document["repro_wal_committed_txns"] == 1
        assert document["repro_wal_pending_txns"] == 0
        assert document["repro_wal_size_bytes"] > 0

    def test_wal_status_json_without_wal(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        capsys.readouterr()
        assert main(["wal", "status", "--data", data, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["repro_wal_exists"] == 0

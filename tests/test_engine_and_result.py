"""Unit tests for execution metrics, query results and executor edge cases."""

import numpy as np
import pytest

from repro.baseline.planners import TraditionalPlan
from repro.core.tagmap import TagMapBuilder
from repro.engine.executor import TaggedExecutor, TraditionalExecutor
from repro.engine.metrics import ExecContext, ExecutionMetrics, Stopwatch
from repro.engine.result import OutputColumns, QueryResult, materialize_output
from repro.plan.logical import JoinNode, ProjectNode, TableScanNode
from repro.plan.query import JoinCondition, Query
from repro.expr.builders import col


class TestExecutionMetrics:
    def test_merge_accumulates_all_fields(self):
        first = ExecutionMetrics(predicate_rows_evaluated=5, join_output_rows=2)
        second = ExecutionMetrics(predicate_rows_evaluated=3, union_output_rows=7)
        first.merge(second)
        assert first.predicate_rows_evaluated == 8
        assert first.join_output_rows == 2
        assert first.union_output_rows == 7

    def test_as_dict_round_trip(self):
        metrics = ExecutionMetrics(tuples_materialized=4)
        assert metrics.as_dict()["tuples_materialized"] == 4
        assert set(metrics.as_dict()) >= {
            "predicate_rows_evaluated",
            "join_probe_rows",
            "union_input_rows",
            "output_rows",
        }

    def test_stopwatch_measures_elapsed(self):
        stopwatch = Stopwatch()
        assert stopwatch.elapsed() >= 0.0
        first = stopwatch.restart()
        assert first >= 0.0
        assert stopwatch.elapsed() < first + 1.0

    def test_exec_context_timer(self):
        context = ExecContext()
        assert context.timer().elapsed() >= 0.0


class TestQueryResult:
    def _result(self, paper_catalog):
        table = paper_catalog.get("title")
        indices = {"t": np.arange(table.num_rows, dtype=np.int64)}
        output = materialize_output({"t": table}, indices, np.array([0, 4]), [col("t", "title")])
        return QueryResult(
            planner_name="tcombined",
            output=output,
            planning_seconds=0.25,
            execution_seconds=0.5,
        )

    def test_lazy_rows_and_counts(self, paper_catalog):
        result = self._result(paper_catalog)
        assert result.row_count == 2
        assert result.rows == [("The Dark Knight",), ("The Godfather",)]
        assert result.rows is result.rows  # cached

    def test_total_seconds(self, paper_catalog):
        result = self._result(paper_catalog)
        assert result.total_seconds == pytest.approx(0.75)

    def test_to_dicts_and_sorted_rows(self, paper_catalog):
        result = self._result(paper_catalog)
        assert result.to_dicts()[0] == {"t.title": "The Dark Knight"}
        assert result.sorted_rows()[0] == ("The Dark Knight",)

    def test_repr(self, paper_catalog):
        assert "rows=2" in repr(self._result(paper_catalog))

    def test_materialize_output_star_expands_all_columns(self, paper_catalog):
        table = paper_catalog.get("title")
        indices = {"t": np.arange(table.num_rows, dtype=np.int64)}
        output = materialize_output({"t": table}, indices, np.array([1]), [])
        assert output.names == ["t.id", "t.title", "t.production_year"]
        assert output.row_count == 1

    def test_nulls_become_none_in_rows(self):
        from repro.storage.table import Table

        table = Table.from_dict("n", {"x": [1, None]})
        indices = {"n": np.arange(2, dtype=np.int64)}
        output = materialize_output({"n": table}, indices, np.array([0, 1]), [])
        result = QueryResult("x", output, 0.0, 0.0)
        assert result.rows[1] == (None,)

    def test_empty_output_columns(self):
        empty = OutputColumns.empty()
        result = QueryResult("x", empty, 0.0, 0.0)
        assert result.row_count == 0
        assert result.rows == []


class TestExecutorEdgeCases:
    def test_tagged_executor_requires_project_root(self, paper_catalog, paper_query):
        builder = TagMapBuilder(None)
        scan = TableScanNode("t", "title")
        annotations = builder.build(ProjectNode(scan))
        executor = TaggedExecutor(paper_catalog, paper_query, annotations, None)
        with pytest.raises(ValueError, match="ProjectNode"):
            executor.execute(scan, ExecContext())

    def test_traditional_executor_requires_subplans(self, paper_catalog, paper_query):
        executor = TraditionalExecutor(paper_catalog, paper_query)
        with pytest.raises(ValueError):
            executor.execute(TraditionalPlan("bdisj", []), ExecContext())

    def test_tagged_executor_without_predicate_tree(self, paper_catalog):
        query = Query(
            tables={"t": "title", "mi_idx": "movie_info_idx"},
            join_conditions=[JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))],
        )
        join = JoinNode(
            TableScanNode("t", "title"),
            TableScanNode("mi_idx", "movie_info_idx"),
            query.join_conditions,
        )
        plan = ProjectNode(join)
        annotations = TagMapBuilder(None).build(plan)
        executor = TaggedExecutor(paper_catalog, query, annotations, None)
        output = executor.execute(plan, ExecContext())
        assert output.row_count == 6

    def test_traditional_union_of_disjoint_clause_results(self, paper_session):
        """BDisj's union keeps results from clauses that do not overlap."""
        result = paper_session.execute(
            "SELECT t.title FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
            "WHERE (t.production_year > 2005 AND mi.info > 7.0) "
            "   OR (t.production_year < 1975 AND mi.info > 9.0)",
            planner="bdisj",
        )
        assert {row[0] for row in result.rows} == {
            "The Dark Knight",
            "Avatar",
            "The Godfather",
        }

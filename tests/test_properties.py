"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, Session, Table
from repro.core.generalize import generalize_tag
from repro.core.predtree import PredicateTree
from repro.core.tags import Tag
from repro.expr import three_valued as tv
from repro.expr.ast import AndExpr, BooleanExpr, NotExpr, OrExpr
from repro.expr.builders import col, lit
from repro.storage.bitmap import Bitmap
from repro.utils.join import equi_join_indices

# --------------------------------------------------------------------------- #
# Bitmaps
# --------------------------------------------------------------------------- #
bitmap_sizes = st.integers(min_value=0, max_value=64)


@st.composite
def bitmap_pairs(draw):
    size = draw(bitmap_sizes)
    bits_a = draw(st.lists(st.booleans(), min_size=size, max_size=size))
    bits_b = draw(st.lists(st.booleans(), min_size=size, max_size=size))
    return Bitmap.from_mask(np.array(bits_a, dtype=bool)), Bitmap.from_mask(
        np.array(bits_b, dtype=bool)
    )


class TestBitmapProperties:
    @given(bitmap_pairs())
    def test_union_is_commutative(self, pair):
        a, b = pair
        assert a | b == b | a

    @given(bitmap_pairs())
    def test_intersection_is_commutative(self, pair):
        a, b = pair
        assert (a & b) == (b & a)

    @given(bitmap_pairs())
    def test_de_morgan(self, pair):
        a, b = pair
        assert ~(a | b) == (~a & ~b)
        assert ~(a & b) == (~a | ~b)

    @given(bitmap_pairs())
    def test_difference_is_intersection_with_complement(self, pair):
        a, b = pair
        assert (a - b) == (a & ~b)

    @given(bitmap_pairs())
    def test_counts_are_consistent(self, pair):
        a, b = pair
        assert (a | b).count() + (a & b).count() == a.count() + b.count()


# --------------------------------------------------------------------------- #
# Three-valued logic
# --------------------------------------------------------------------------- #
truth_values = st.sampled_from([tv.TRUE, tv.FALSE, tv.UNKNOWN])


class TestThreeValuedProperties:
    @given(truth_values, truth_values)
    def test_commutativity(self, a, b):
        assert tv.scalar_and(a, b) is tv.scalar_and(b, a)
        assert tv.scalar_or(a, b) is tv.scalar_or(b, a)

    @given(truth_values, truth_values, truth_values)
    def test_associativity(self, a, b, c):
        assert tv.scalar_and(tv.scalar_and(a, b), c) is tv.scalar_and(a, tv.scalar_and(b, c))
        assert tv.scalar_or(tv.scalar_or(a, b), c) is tv.scalar_or(a, tv.scalar_or(b, c))

    @given(truth_values)
    def test_double_negation(self, a):
        assert tv.scalar_not(tv.scalar_not(a)) is a

    @given(truth_values, truth_values)
    def test_de_morgan(self, a, b):
        assert tv.scalar_not(tv.scalar_and(a, b)) is tv.scalar_or(tv.scalar_not(a), tv.scalar_not(b))

    @given(st.booleans(), st.booleans())
    def test_agrees_with_boolean_logic_without_unknown(self, a, b):
        ta, tb = tv.TruthValue.from_bool(a), tv.TruthValue.from_bool(b)
        assert tv.scalar_and(ta, tb) is tv.TruthValue.from_bool(a and b)
        assert tv.scalar_or(ta, tb) is tv.TruthValue.from_bool(a or b)


# --------------------------------------------------------------------------- #
# Join kernel
# --------------------------------------------------------------------------- #
key_arrays = st.lists(st.integers(min_value=-1, max_value=8), min_size=0, max_size=40)


class TestJoinKernelProperties:
    @given(key_arrays, key_arrays)
    def test_matches_brute_force(self, left, right):
        left_arr = np.array(left, dtype=np.int64)
        right_arr = np.array(right, dtype=np.int64)
        li, ri = equi_join_indices(left_arr, right_arr)
        produced = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv and lv >= 0
        )
        assert produced == expected

    @given(key_arrays, key_arrays)
    def test_pairs_actually_match(self, left, right):
        left_arr = np.array(left, dtype=np.int64)
        right_arr = np.array(right, dtype=np.int64)
        li, ri = equi_join_indices(left_arr, right_arr)
        assert np.array_equal(left_arr[li], right_arr[ri])


# --------------------------------------------------------------------------- #
# Tag generalization soundness
# --------------------------------------------------------------------------- #
NUM_VARIABLES = 4
_VARIABLE_PREDICATES = [col("t", f"v{i}") > lit(0.5) for i in range(NUM_VARIABLES)]


@st.composite
def boolean_expressions(draw, depth=3):
    """Random predicate expressions over a small pool of base predicates."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(_VARIABLE_PREDICATES))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return NotExpr(draw(boolean_expressions(depth=depth - 1)))
    children = draw(
        st.lists(boolean_expressions(depth=depth - 1), min_size=2, max_size=3)
    )
    return AndExpr(children) if kind == "and" else OrExpr(children)


def _evaluate(expr: BooleanExpr, assignment: dict[str, bool]) -> bool:
    """Evaluate an expression under a total truth assignment to the base predicates."""
    if isinstance(expr, NotExpr):
        return not _evaluate(expr.child, assignment)
    if isinstance(expr, AndExpr):
        return all(_evaluate(child, assignment) for child in expr.children())
    if isinstance(expr, OrExpr):
        return any(_evaluate(child, assignment) for child in expr.children())
    return assignment[expr.key()]


partial_assignments = st.dictionaries(
    st.sampled_from([predicate.key() for predicate in _VARIABLE_PREDICATES]),
    st.booleans(),
    max_size=NUM_VARIABLES,
)


class TestGeneralizationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(boolean_expressions(), partial_assignments)
    def test_generalized_assignments_are_entailed(self, expr, partial):
        """Every assignment in a generalized tag must hold under every total
        assignment consistent with the original tag — the defining property of
        tag generalization (a generalized tag may be used in place of any tag
        that implies it)."""
        tree = PredicateTree(expr)
        tag = Tag({key: tv.TruthValue.from_bool(value) for key, value in partial.items()})
        generalized = generalize_tag(tree, tag)

        keys = [predicate.key() for predicate in _VARIABLE_PREDICATES]
        free = [key for key in keys if key not in partial]
        for bits in range(2 ** len(free)):
            total = dict(partial)
            for position, key in enumerate(free):
                total[key] = bool((bits >> position) & 1)
            for assigned_key, assigned_value in generalized.items():
                if assigned_value is tv.UNKNOWN:
                    continue
                if assigned_key not in tree:
                    continue
                actual = _evaluate(tree.expr_for(assigned_key), total)
                assert actual == (assigned_value is tv.TRUE)

    @settings(max_examples=60, deadline=None)
    @given(boolean_expressions(), partial_assignments)
    def test_generalized_keys_are_tree_nodes(self, expr, partial):
        tree = PredicateTree(expr)
        tag = Tag({key: tv.TruthValue.from_bool(value) for key, value in partial.items()})
        generalized = generalize_tag(tree, tag)
        for key in generalized.keys():
            # Either a node of the tree, or an assignment the input tag made
            # to an expression outside the tree (preserved verbatim).
            assert key in tree or key in tag

    @settings(max_examples=30, deadline=None)
    @given(boolean_expressions(), partial_assignments)
    def test_generalization_is_idempotent(self, expr, partial):
        tree = PredicateTree(expr)
        tag = Tag({key: tv.TruthValue.from_bool(value) for key, value in partial.items()})
        once = generalize_tag(tree, tag)
        twice = generalize_tag(tree, once)
        assert once == twice


# --------------------------------------------------------------------------- #
# End-to-end: tagged execution equals brute force on random single-table data
# --------------------------------------------------------------------------- #
@st.composite
def single_table_workloads(draw):
    num_rows = draw(st.integers(min_value=1, max_value=25))
    values = {
        f"v{i}": draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=num_rows,
                max_size=num_rows,
            )
        )
        for i in range(NUM_VARIABLES)
    }
    expr = draw(boolean_expressions())
    return values, expr


class TestEndToEndProperty:
    @settings(max_examples=40, deadline=None)
    @given(single_table_workloads())
    def test_tagged_execution_equals_brute_force(self, workload):
        values, expr = workload
        columns = {"id": list(range(len(next(iter(values.values())))))}
        columns.update(values)
        table = Table.from_dict("t", columns)
        session = Session(Catalog([table]), stats_sample_size=50)

        from repro.plan.query import Query

        query = Query(tables={"t": "t"}, predicate=expr, select=[col("t", "id")])
        result = session.execute(query, planner="tcombined")

        expected = set()
        for row_index in range(table.num_rows):
            assignment = {
                predicate.key(): values[f"v{i}"][row_index] > 0.5
                for i, predicate in enumerate(_VARIABLE_PREDICATES)
            }
            if _evaluate(expr, assignment):
                expected.add(row_index)
        assert {row[0] for row in result.rows} == expected

"""Differential suite for the fused expression kernels.

Every kernel tier — ``off`` (legacy full-width truth arrays), ``numpy``
(fused selection-vector kernels with dictionary-aware string predicates) and
``jit`` (numba-compiled numeric loops; auto-skipped when numba is absent) —
must return byte-identical rows under every planner, at parallelism
{1, 4} x partitions {1, 3}, with and without secondary indexes.  Plus the
targeted satellites: NaN/NULL three-valued edge cases, dictionary-miss
constants, zero-I/O empty-input early exits, AST memoization, automatic jit
downgrade, and the kernel tier in plan fingerprints and explain output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, Session, Table
from repro.access.manager import ensure_access_manager
from repro.engine.metrics import ExecContext
from repro.kernels import KernelConfig, jit_available, resolve_tier, validate_tier
from repro.physical.expressions import evaluate_predicate, read_join_keys
from repro.service.fingerprint import query_fingerprint
from repro.sql import parse_query
from repro.testing.differential import DEFAULT_PLANNERS
from repro.testing.oracle import evaluate_oracle

PAGE = 16

TIERS = (
    "off",
    "numpy",
    pytest.param("jit", marks=pytest.mark.skipif(not jit_available(), reason="numba not installed")),
)

#: Predicate-heavy disjunctive workload over dictionary-eligible string
#: columns (status/region are low-cardinality), NULLs in both string and
#: float columns, genuine NaN cells, LIKE/IN, a cross-table comparison, and
#: a constant absent from every dictionary.
QUERIES = [
    (
        "and_chain_strings",
        "SELECT o.id, c.name FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE o.status = 'gold' AND o.amount < 70 AND c.region IN ('n', 's')",
    ),
    (
        "or_tree_like",
        "SELECT o.id, o.status FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE (o.status LIKE 'go%' AND o.amount IS NOT NULL) "
        "   OR (c.region = 'w' AND o.amount > 90) OR o.status = 'bronze'",
    ),
    (
        "dictionary_miss",
        "SELECT o.id FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE o.status = 'no_such_status' OR c.region IN ('zz', 'n') "
        "   OR o.status LIKE 'zz%'",
    ),
    (
        "nan_null_edges",
        "SELECT o.id, o.amount FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE (o.amount > 50 AND o.status != 'silver') "
        "   OR (o.amount IS NULL AND c.region = 'e') OR c.score > o.amount",
    ),
]


def _catalog(with_indexes: bool) -> Catalog:
    rng = np.random.default_rng(23)
    n, m = 400, 60
    amounts = rng.uniform(0, 100, n).round(1).tolist()
    for position in range(0, n, 13):
        amounts[position] = None  # NULL floats
    for position in range(5, n, 29):
        amounts[position] = float("nan")  # genuine (non-NULL) NaN cells
    statuses = [["gold", "silver", "bronze", None][i % 4] for i in range(n)]
    orders = Table(
        "orders",
        [
            Column("id", list(range(n)), page_size=PAGE),
            Column("cust", rng.integers(0, m, n).tolist(), page_size=PAGE),
            Column("status", statuses, page_size=PAGE),
            Column("amount", amounts, page_size=PAGE),
        ],
    )
    customers = Table(
        "customers",
        [
            Column("cid", list(range(m)), page_size=PAGE),
            Column("name", [f"cust_{i}" for i in range(m)], page_size=PAGE),
            Column("region", [["n", "s", "e", "w"][i % 4] for i in range(m)], page_size=PAGE),
            Column("score", rng.uniform(0, 10, m).tolist(), page_size=PAGE),
        ],
    )
    catalog = Catalog([orders, customers])
    if with_indexes:
        manager = ensure_access_manager(catalog)
        manager.create_index("orders", "status", kind="bitmap")
        manager.create_index("customers", "region", kind="bitmap")
    return catalog


@pytest.fixture(scope="module")
def catalogs():
    return {True: _catalog(with_indexes=True), False: _catalog(with_indexes=False)}


@pytest.fixture(scope="module")
def oracle_rows(catalogs):
    return {
        name: evaluate_oracle(catalogs[False], parse_query(sql)) for name, sql in QUERIES
    }


# --------------------------------------------------------------------------- #
# The matrix: tiers x planners x parallelism/partitions x indexes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("planner", DEFAULT_PLANNERS + ("tmin",))
@pytest.mark.parametrize(
    "parallelism,partitions,indexed",
    [(1, 1, False), (1, 3, True), (4, 1, True), (4, 3, False)],
)
def test_all_tiers_byte_identical(
    catalogs, oracle_rows, planner, parallelism, partitions, indexed
):
    tiers = ["off", "numpy"] + (["jit"] if jit_available() else [])
    sessions = {
        tier: Session(
            catalogs[indexed],
            parallelism=parallelism,
            partitions=partitions,
            access_paths=indexed,
            kernels=tier,
        )
        for tier in tiers
    }
    for name, sql in QUERIES:
        results = {tier: sessions[tier].execute(sql, planner=planner) for tier in tiers}
        assert results["off"].sorted_rows() == oracle_rows[name], (planner, name)
        for tier in tiers[1:]:
            # Byte-identical: same rows in the same order, not just the set.
            assert results[tier].rows == results["off"].rows, (planner, name, tier)


# --------------------------------------------------------------------------- #
# Satellites
# --------------------------------------------------------------------------- #
def test_zero_row_predicate_skips_all_reads(catalogs):
    """Empty inputs must not build batches or touch storage at all."""
    catalog = catalogs[False]
    orders = catalog.get("orders")
    predicate = parse_query(
        "SELECT o.id FROM orders AS o WHERE o.status = 'gold' AND o.amount < 50"
    ).predicate
    for config in (None, KernelConfig()):
        context = ExecContext(kernels=config)
        truth = evaluate_predicate(
            predicate,
            {"o": orders},
            {"o": np.zeros(0, dtype=np.int64)},
            context,
        )
        assert truth.shape == (0,) and truth.dtype == np.uint8
        assert context.iostats.pages_read == 0
        assert context.iostats.pages_hit == 0
        assert context.iostats.values_read == 0
        assert context.iostats.sequential_scans == 0


def test_zero_row_join_keys_skip_all_reads(catalogs):
    catalog = catalogs[False]
    orders, customers = catalog.get("orders"), catalog.get("customers")
    conditions = list(
        parse_query(
            "SELECT o.id FROM orders AS o JOIN customers AS c ON o.cust = c.cid"
        ).join_conditions
    )
    some_rows = np.arange(10, dtype=np.int64)
    empty = np.zeros(0, dtype=np.int64)
    for left_rows, right_rows in [(empty, some_rows), (some_rows, empty), (empty, empty)]:
        context = ExecContext()
        left_keys, right_keys = read_join_keys(
            conditions,
            {"o": orders},
            {"o": left_rows},
            {"c": customers},
            {"c": right_rows},
            context,
        )
        assert left_keys.shape == left_rows.shape
        assert right_keys.shape == right_rows.shape
        assert (left_keys == -1).all() and (right_keys == -1).all()
        assert context.iostats.pages_read == 0
        assert context.iostats.values_read == 0
        assert context.iostats.sequential_scans == 0


def test_ast_memoization():
    predicate = parse_query(
        "SELECT o.id FROM orders AS o WHERE o.status = 'gold' AND o.amount < 50"
    ).predicate
    assert predicate.key() is predicate.key()
    assert predicate.tables() is predicate.tables()
    child = predicate.children()[0]
    assert child.key() is child.key()


def test_dictionary_miss_is_no_match_not_error(catalogs):
    session = Session(catalogs[False], kernels="numpy")
    legacy = Session(catalogs[False], kernels="off")
    sql = (
        "SELECT o.id FROM orders AS o "
        "WHERE o.status = 'absent' OR o.status IN ('nope', 'nada') "
        "   OR o.status LIKE 'qq%'"
    )
    assert session.execute(sql).rows == legacy.execute(sql).rows == []


def test_validate_and_resolve_tier():
    assert validate_tier("NumPy") == "numpy"
    with pytest.raises(ValueError, match="unknown kernel tier"):
        validate_tier("cuda")
    if not jit_available():
        assert resolve_tier("jit") == "numpy"
    assert resolve_tier("off") == "off"


def test_jit_downgrades_without_numba(catalogs):
    session = Session(catalogs[False], kernels="jit")
    result = session.execute(QUERIES[0][1], planner="tcombined")
    expected_tier = "jit" if jit_available() else "numpy"
    assert result.kernel_tier == expected_tier


def test_kernels_off_runs_legacy_path(catalogs):
    result = Session(catalogs[False], kernels="off").execute(QUERIES[0][1])
    assert result.kernel_tier == "off"
    # Legacy clause accounting: every clause of the tree charged every row.
    assert result.metrics.clause_rows_evaluated > 0


def test_fused_does_less_clause_work(catalogs):
    """A multi-clause AND evaluated as one predicate short-circuits."""
    orders = catalogs[False].get("orders")
    predicate = parse_query(
        "SELECT o.id FROM orders AS o "
        "WHERE o.status = 'gold' AND o.amount < 50 AND o.id < 300"
    ).predicate
    rows = np.arange(400, dtype=np.int64)
    legacy_context = ExecContext()
    legacy_truth = evaluate_predicate(predicate, {"o": orders}, {"o": rows}, legacy_context)
    fused_context = ExecContext(kernels=KernelConfig())
    fused_truth = evaluate_predicate(predicate, {"o": orders}, {"o": rows}, fused_context)
    assert np.array_equal(legacy_truth, fused_truth)
    assert legacy_context.metrics.clause_rows_evaluated == 3 * 400
    # The first clause sees all rows; later clauses only the still-alive.
    assert fused_context.metrics.clause_rows_evaluated < 3 * 400


def test_fingerprint_differs_by_tier():
    sql = "SELECT o.id FROM orders AS o WHERE o.status = 'gold'"
    prints = {
        query_fingerprint(sql, "tcombined", catalog_version=1, kernels=tier)
        for tier in ("off", "numpy", "jit")
    }
    assert len(prints) == 3


def test_explain_analyze_shows_tier_and_clause_order(catalogs):
    from repro.optimizer import explain_analyze_report

    session = Session(catalogs[False], kernels="numpy")
    # A cross-table OR cannot be pushed below the join, so it survives
    # planning as one multi-clause FilterNode — the annotation target.
    sql = (
        "SELECT o.id FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE o.amount > 90 OR c.region = 'w'"
    )
    prepared = session.prepare(sql, planner="bpushconj")
    result = session.execute_prepared(prepared, collect_feedback=True)
    report = explain_analyze_report(prepared, result)
    assert "kernels=numpy" in report
    assert "clause order:" in report
    legacy_result = session.execute_prepared(prepared, collect_feedback=True, kernels="off")
    legacy_report = explain_analyze_report(prepared, legacy_result)
    assert "kernels=off" in legacy_report
    assert "clause order:" not in legacy_report

"""Shard-shippability: everything a worker needs must pickle faithfully.

The scatter–gather engine re-creates compiled physical trees inside worker
processes from the *logical* plan plus its frozen configuration — a
:class:`~repro.engine.shard.ShardSpec` carries the plan, tag annotations,
predicate tree, kernel config, snapshot/table-version pins and resolved
access-path candidates across the process boundary.  These tests pin that
contract down:

* every component of a :class:`~repro.engine.session.PreparedPlan` that the
  spec ships survives ``pickle`` and re-compiles to an identical physical
  plan (same structure, same output);
* the one deliberately *unshippable* component — the access-path manager
  reachable from ``PreparedPlan.access_plan`` — is excluded by design: the
  coordinator resolves candidates and ships plain bitmaps instead;
* worker processes load on-disk datasets read-only: no WAL writer, no
  recovery side effects, mutations refused.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.metrics import ExecContext
from repro.engine.shard import ShardSpec
from repro.kernels.config import KernelConfig
from repro.physical.compile import compile_plan
from repro.engine.session import Session
from repro.storage.disk import load_catalog, save_catalog
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.querygen import RandomQueryConfig, generate_random_query

SQL = (
    "SELECT f.id, f.category, d1.A1 FROM F AS f JOIN D1 AS d1 ON f.id = d1.fid "
    "WHERE (f.A1 > 0.2 AND d1.A2 < 0.9) OR (f.category = 'c1' AND f.A2 > 0.5)"
)


@pytest.fixture(scope="module")
def catalog():
    return generate_random_catalog(
        RandomCatalogConfig(seed=5, num_dimensions=2, fact_rows=160, dimension_rows=120)
    )


@pytest.fixture(scope="module")
def session(catalog):
    return Session(catalog, stats_sample_size=200)


@pytest.mark.parametrize("planner", ("tcombined", "texhaustive", "bdisj", "bypass"))
def test_prepared_components_pickle_and_recompile(session, catalog, planner):
    prepared = session.prepare(SQL, planner=planner)
    # What execute_plan hands the shard layer (bypass wraps its ProjectNode).
    logical = prepared.plan.plan if prepared.kind == "bypass" else prepared.plan
    shipped = pickle.loads(
        pickle.dumps(
            (
                prepared.kind,
                logical,
                prepared.annotations,
                prepared.predicate_tree,
                prepared.query,
            )
        )
    )
    kind, plan, annotations, predicate_tree, query = shipped
    assert kind == prepared.kind
    assert query.aliases == prepared.query.aliases

    original = compile_plan(
        prepared.kind,
        logical,
        catalog,
        annotations=prepared.annotations,
        predicate_tree=prepared.predicate_tree,
    )
    recompiled = compile_plan(
        kind, plan, catalog, annotations=annotations, predicate_tree=predicate_tree
    )
    assert type(recompiled.root) is type(original.root)
    base = original.execute(ExecContext())
    again = recompiled.execute(ExecContext())
    assert again.names == base.names
    assert again.row_count == base.row_count


def test_snapshot_pins_pickle(session):
    prepared = session.prepare(SQL, planner="tcombined")
    snapshot = prepared.snapshot
    pins = pickle.loads(
        pickle.dumps((snapshot.version, dict(snapshot.table_versions)))
    )
    assert pins == (snapshot.version, dict(snapshot.table_versions))


def test_kernel_config_pickles_with_any_mapping():
    """clause_selectivities is normalized to a plain dict at construction."""
    import types

    proxy = types.MappingProxyType({"f.A1>0.2": 0.25})
    config = KernelConfig(tier="numpy", clause_selectivities=proxy)
    assert isinstance(config.clause_selectivities, dict)
    clone = pickle.loads(pickle.dumps(config))
    assert clone == config


def test_selectivity_overrides_replan_identically(session):
    overrides = {"f.A1": 0.1}
    first = session.prepare(SQL, planner="tcombined", selectivity_overrides=overrides)
    second = session.prepare(
        SQL,
        planner="tcombined",
        selectivity_overrides=pickle.loads(pickle.dumps(overrides)),
    )
    assert first.plan_description == second.plan_description
    assert first.clause_selectivities == second.clause_selectivities


def test_shard_spec_pickles_without_access_plan(session, catalog):
    """The spec ships resolved candidate bitmaps, never the access manager."""
    prepared = session.prepare(SQL, planner="tcombined")
    spec = ShardSpec(
        kind=prepared.kind,
        plan=prepared.plan,
        annotations=prepared.annotations,
        predicate_tree=prepared.predicate_tree,
        three_valued=True,
        kernels=KernelConfig(tier="numpy"),
        collect_feedback=False,
        feedback_excluded_aliases=frozenset(),
        scan_candidates={},
        partition_alias="f",
        partition_table="F",
        snapshot_version=catalog.version,
        table_versions={"F": catalog.table_version("F")},
        push_mode="none",
        query=None,
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.kind == spec.kind
    assert clone.partition_alias == "f"
    assert clone.table_versions == spec.table_versions


def test_access_plan_is_not_shippable(session):
    """Documents *why* the spec excludes it: the manager holds an RLock."""
    import threading

    prepared = session.prepare(SQL, planner="tcombined")
    if prepared.access_plan is None:
        pytest.skip("no access plan without access paths enabled")
    lock = threading.RLock()
    with pytest.raises(TypeError):
        pickle.dumps(lock)


def test_read_only_load_refuses_mutations(tmp_path, catalog):
    save_catalog(catalog, tmp_path)
    loaded = load_catalog(tmp_path, read_only=True)
    assert loaded.read_only
    assert loaded.table_names == catalog.table_names
    with pytest.raises(PermissionError):
        loaded.begin_mutation()
    # Reads are unaffected.
    session = Session(loaded)
    result = session.execute("SELECT COUNT(*) FROM F AS f", planner="tcombined")
    assert result.rows == [(catalog.get("F").num_rows,)]


def test_read_only_excludes_durable(tmp_path, catalog):
    save_catalog(catalog, tmp_path)
    with pytest.raises(ValueError):
        load_catalog(tmp_path, read_only=True, durable=True)

"""The mutation differential suite.

Acceptance property of the mutation subsystem: after N interleaved
insert/delete batches, every query answers **byte-identically** to the same
query over a freshly built catalog holding the same live rows — across all
planners x parallelism {1, 4} x partitions {1, 3} x indexes on/off.  At
``partitions=1`` the raw row order must match too; at higher partition
counts join output may legally group by partition of a holey table, so rows
are compared in canonical (sorted) order there — the same convention the
fuzz harness uses.

A second property: a plan prepared *before* a commit keeps reading its
original snapshot, at every parallelism/partitions setting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, Session, Table
from repro.access.manager import ensure_access_manager
from repro.testing.differential import DEFAULT_PLANNERS
from repro.testing.oracle import evaluate_oracle
from repro.sql import parse_query

FACT_ROWS = 1_200
DIM_ROWS = 60
PAGE_SIZE = 128

QUERIES = [
    (
        "single-table disjunction",
        "SELECT f.id, f.a FROM fact AS f "
        "WHERE (f.a < 0.2 AND f.k > 10) OR f.a > 0.9 OR f.k = 3",
    ),
    (
        "join with disjunctive predicate",
        "SELECT f.id, d.w FROM fact AS f JOIN dim AS d ON f.k = d.did "
        "WHERE (f.a < 0.35 AND d.w > 0.3) OR (f.a > 0.8 AND d.w < 0.6)",
    ),
]


def _base_tables(seed: int = 11) -> list[Table]:
    rng = np.random.default_rng(seed)
    fact = Table(
        "fact",
        [
            Column("id", np.arange(FACT_ROWS), page_size=PAGE_SIZE),
            Column("k", rng.integers(0, DIM_ROWS, FACT_ROWS), page_size=PAGE_SIZE),
            Column("a", rng.uniform(0.0, 1.0, FACT_ROWS), page_size=PAGE_SIZE),
        ],
    )
    dim = Table(
        "dim",
        [
            Column("did", np.arange(DIM_ROWS), page_size=PAGE_SIZE),
            Column("w", rng.uniform(0.0, 1.0, DIM_ROWS), page_size=PAGE_SIZE),
        ],
    )
    return [fact, dim]


def _apply_mutation_stream(catalog: Catalog) -> None:
    """Five interleaved insert/delete batches across both tables."""
    rng = np.random.default_rng(99)
    next_id = FACT_ROWS
    for step in range(5):
        batch = catalog.begin_mutation()
        rows = [
            {
                "id": int(next_id + i),
                "k": int(rng.integers(0, DIM_ROWS)),
                "a": float(rng.uniform(0.0, 1.0)),
            }
            for i in range(60)
        ]
        next_id += 60
        batch.insert("fact", rows)
        if step % 2 == 0:
            batch.delete("fact", where=f"fact.a > 0.9{step} AND fact.id < {FACT_ROWS}")
        else:
            live = np.flatnonzero(~catalog.get("fact").delete_mask)
            batch.delete("fact", positions=live[:: 37][:25])
        if step == 2:
            batch.insert("dim", [{"did": 1000, "w": 0.5}, {"did": 1001, "w": 0.05}])
        if step == 4:
            batch.delete("dim", where="dim.w > 0.97")
        batch.commit()


def _fresh_equivalent(mutated: Catalog) -> Catalog:
    """A catalog built directly at the mutated catalog's live state."""
    tables = []
    for table in mutated:
        live = (
            ~table.delete_mask
            if table.delete_mask is not None
            else np.ones(table.num_rows, dtype=np.bool_)
        )
        tables.append(
            Table(
                table.name,
                [
                    Column(
                        column.name,
                        column.data[live],
                        ctype=column.ctype,
                        null_mask=column.null_mask[live],
                        page_size=column.page_size,
                    )
                    for column in table.columns()
                ],
            )
        )
    return Catalog(tables)


def _with_indexes(catalog: Catalog) -> Catalog:
    manager = ensure_access_manager(catalog)
    manager.create_index("fact", "k", kind="bitmap")
    manager.create_index("fact", "a", kind="sorted")
    return catalog


@pytest.fixture(scope="module")
def mutated_and_fresh():
    plain = Catalog(_base_tables())
    _apply_mutation_stream(plain)
    indexed = _with_indexes(Catalog(_base_tables()))
    _apply_mutation_stream(indexed)  # indexes extend through the stream
    fresh_plain = _fresh_equivalent(plain)
    fresh_indexed = _with_indexes(_fresh_equivalent(indexed))
    return {
        False: (plain, fresh_plain),
        True: (indexed, fresh_indexed),
    }


def test_oracle_agrees_on_fresh_state(mutated_and_fresh):
    """Independent check: the naive oracle on the mutated catalog matches."""
    mutated, fresh = mutated_and_fresh[False]
    for _name, sql in QUERIES:
        query = parse_query(sql)
        assert evaluate_oracle(mutated, query) == evaluate_oracle(fresh, query)


@pytest.mark.parametrize("indexed", [False, True], ids=["no-indexes", "indexes"])
@pytest.mark.parametrize("parallelism,partitions", [(1, 1), (1, 3), (4, 1), (4, 3)])
@pytest.mark.parametrize("planner", DEFAULT_PLANNERS)
def test_mutated_equals_fresh(mutated_and_fresh, indexed, parallelism, partitions, planner):
    mutated, fresh = mutated_and_fresh[indexed]
    mutated_session = Session(mutated, parallelism=parallelism, partitions=partitions)
    fresh_session = Session(fresh, parallelism=parallelism, partitions=partitions)
    for name, sql in QUERIES:
        result_mutated = mutated_session.execute(sql, planner=planner)
        result_fresh = fresh_session.execute(sql, planner=planner)
        if partitions == 1:
            assert result_mutated.rows == result_fresh.rows, name
        assert result_mutated.sorted_rows() == result_fresh.sorted_rows(), name


@pytest.mark.parametrize("parallelism,partitions", [(1, 1), (4, 3)])
def test_prepared_plan_reads_its_snapshot(parallelism, partitions):
    catalog = _with_indexes(Catalog(_base_tables()))
    session = Session(catalog, parallelism=parallelism, partitions=partitions)
    prepared = {sql: session.prepare(sql) for _name, sql in QUERIES}
    before = {
        sql: session.execute_prepared(plan).sorted_rows()
        for sql, plan in prepared.items()
    }
    _apply_mutation_stream(catalog)
    for sql, plan in prepared.items():
        replay = session.execute_prepared(plan)
        assert replay.sorted_rows() == before[sql]
    # A fresh prepare sees the mutated state (and differs from the snapshot).
    changed = any(
        session.execute(sql).sorted_rows() != before[sql] for _name, sql in QUERIES
    )
    assert changed

"""Integration tests for the Session API on the paper's running example."""

import pytest

from repro import Catalog, Session, Table
from repro.engine.session import ALL_PLANNERS, TAGGED_PLANNERS
from tests.conftest import PAPER_QUERY_MATCHES


class TestSessionBasics:
    def test_unknown_planner_rejected(self, paper_session, paper_query_sql):
        with pytest.raises(ValueError, match="unknown planner"):
            paper_session.execute(paper_query_sql, planner="nope")

    def test_sql_and_programmatic_queries_agree(self, paper_session, paper_query, paper_query_sql):
        from_sql = paper_session.execute(paper_query_sql, planner="tcombined")
        programmatic = paper_session.execute(paper_query, planner="tcombined")
        assert from_sql.row_count == programmatic.row_count == 4

    def test_explain_tagged(self, paper_session, paper_query_sql):
        rendered = paper_session.explain(paper_query_sql, planner="tpushdown")
        assert "Scan(title AS t)" in rendered
        assert "Join" in rendered

    def test_explain_traditional(self, paper_session, paper_query_sql):
        rendered = paper_session.explain(paper_query_sql, planner="bdisj")
        assert rendered.count("---") == 1  # two subplans separated once

    def test_result_metadata(self, paper_session, paper_query_sql):
        result = paper_session.execute(paper_query_sql, planner="tcombined")
        assert result.total_seconds >= result.execution_seconds
        assert result.column_names == ["t.title", "t.production_year", "mi_idx.info"]
        assert result.plan_description
        assert len(result.to_dicts()) == 4

    def test_select_star_returns_all_columns(self, paper_session):
        result = paper_session.execute(
            "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id",
            planner="tcombined",
        )
        assert set(result.column_names) == {
            "t.id", "t.title", "t.production_year", "mi_idx.movie_id", "mi_idx.info",
        }
        assert result.row_count == 6

    def test_query_without_where(self, paper_session):
        result = paper_session.execute(
            "SELECT t.title FROM title AS t JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id",
            planner="bpushconj",
        )
        assert result.row_count == 6

    def test_single_table_query(self, paper_session):
        result = paper_session.execute(
            "SELECT t.title FROM title AS t WHERE t.production_year > 2000",
            planner="tcombined",
        )
        assert result.row_count == 3

    def test_single_table_disjunction(self, paper_session):
        result = paper_session.execute(
            "SELECT t.title FROM title AS t "
            "WHERE t.production_year > 2005 OR t.production_year < 1980",
            planner="tcombined",
        )
        titles = {row[0] for row in result.rows}
        assert titles == {"The Dark Knight", "Avatar", "The Godfather"}

    def test_empty_result(self, paper_session):
        result = paper_session.execute(
            "SELECT t.title FROM title AS t WHERE t.production_year > 2050",
            planner="tcombined",
        )
        assert result.row_count == 0
        assert result.rows == []


class TestAllPlannersAgree:
    @pytest.mark.parametrize("planner", sorted(ALL_PLANNERS))
    def test_paper_query_under_every_planner(self, paper_session, paper_query_sql, planner):
        result = paper_session.execute(paper_query_sql, planner=planner)
        titles = {row[0] for row in result.rows}
        assert titles == PAPER_QUERY_MATCHES

    @pytest.mark.parametrize("planner", sorted(TAGGED_PLANNERS))
    def test_naive_tags_give_same_answers(self, paper_session, paper_query_sql, planner):
        result = paper_session.execute(paper_query_sql, planner=planner, naive_tags=True)
        titles = {row[0] for row in result.rows}
        assert titles == PAPER_QUERY_MATCHES


class TestWorkCounters:
    def test_tagged_evaluates_each_predicate_once(self, paper_session, paper_query_sql):
        """Tagged execution evaluates fewer predicate rows than BDisj, which
        re-evaluates shared subexpressions per root clause."""
        tagged = paper_session.execute(paper_query_sql, planner="tpushdown")
        bdisj = paper_session.execute(paper_query_sql, planner="bdisj")
        assert tagged.metrics.predicate_rows_evaluated < bdisj.metrics.predicate_rows_evaluated

    def test_tagged_materializes_fewer_tuples_than_bdisj(self, paper_session, paper_query_sql):
        tagged = paper_session.execute(paper_query_sql, planner="tpushdown")
        bdisj = paper_session.execute(paper_query_sql, planner="bdisj")
        assert tagged.metrics.tuples_materialized < bdisj.metrics.tuples_materialized

    def test_tagged_needs_no_union(self, paper_session, paper_query_sql):
        tagged = paper_session.execute(paper_query_sql, planner="tcombined")
        bdisj = paper_session.execute(paper_query_sql, planner="bdisj")
        assert tagged.metrics.union_input_rows == 0
        assert bdisj.metrics.union_input_rows > 0

    def test_output_row_metric_matches_result(self, paper_session, paper_query_sql):
        result = paper_session.execute(paper_query_sql, planner="tcombined")
        assert result.metrics.output_rows == result.row_count


class TestThreeValuedIntegration:
    @pytest.fixture(scope="class")
    def null_session(self):
        catalog = Catalog(
            [
                Table.from_dict(
                    "title",
                    {
                        "id": [1, 2, 3, 4, 5, 6],
                        "title": ["A", "B", "C", "D", "E", "F"],
                        "production_year": [2010, None, 1985, 2004, None, 1995],
                    },
                ),
                Table.from_dict(
                    "movie_info_idx",
                    {
                        "movie_id": [1, 2, 3, 4, 5, 6],
                        "info": [8.4, 9.1, None, 7.2, 6.8, None],
                    },
                ),
            ]
        )
        return Session(catalog, three_valued=True)

    NULL_QUERY = (
        "SELECT t.title FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
        "WHERE (t.production_year > 2000 AND mi.info > 7.0) "
        "   OR (t.production_year > 1980 AND mi.info > 8.0)"
    )

    @pytest.mark.parametrize("planner", ("tcombined", "tpushdown", "bdisj"))
    def test_unknown_rows_excluded(self, null_session, planner):
        result = null_session.execute(self.NULL_QUERY, planner=planner)
        titles = {row[0] for row in result.rows}
        # Only rows whose predicate is definitely TRUE survive.
        assert titles == {"A", "D"}

    def test_is_null_predicate_end_to_end(self, null_session):
        result = null_session.execute(
            "SELECT t.title FROM title AS t WHERE t.production_year IS NULL",
            planner="tcombined",
        )
        assert {row[0] for row in result.rows} == {"B", "E"}

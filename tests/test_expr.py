"""Unit tests for the expression AST, builders and vectorized evaluation."""

import numpy as np
import pytest

from repro.expr import three_valued as tv
from repro.expr.ast import (
    AndExpr,
    Comparison,
    ExprError,
    InPredicate,
    Literal,
    NotExpr,
    OrExpr,
    count_nodes,
    flatten,
    iter_base_predicates,
)
from repro.expr.builders import and_, between, col, ilike, in_, is_null, like, lit, not_, or_
from repro.expr.eval import RowBatch
from repro.storage.table import Table


@pytest.fixture
def batch() -> RowBatch:
    table = Table.from_dict(
        "t",
        {
            "year": [2008, 2001, 1994, None],
            "score": [9.0, None, 8.9, 7.5],
            "title": ["The Dark Knight", "Evolution", "Pulp Fiction", "Beetlejuice"],
        },
    )
    return RowBatch.for_base_table("t", table)


def truth(expr, batch):
    return [tv.TruthValue(int(v)) for v in expr.evaluate(batch)]


class TestValueExprs:
    def test_column_ref_key_and_tables(self):
        ref = col("t", "year")
        assert ref.key() == "t.year"
        assert ref.tables() == frozenset({"t"})

    def test_literal_keys(self):
        assert lit(5).key() == "5"
        assert lit("abc").key() == "'abc'"

    def test_literal_evaluate_null(self, batch):
        values, nulls = lit(None).evaluate(batch)
        assert nulls.all()
        assert len(values) == batch.num_rows

    def test_structural_equality_and_hash(self):
        assert col("t", "year") == col("t", "year")
        assert hash(col("t", "year")) == hash(col("t", "year"))
        assert col("t", "year") != col("t", "score")


class TestComparisons:
    def test_greater_than(self, batch):
        assert truth(col("t", "year") > lit(2000), batch) == [
            tv.TRUE, tv.TRUE, tv.FALSE, tv.UNKNOWN,
        ]

    def test_less_equal(self, batch):
        assert truth(col("t", "score") <= lit(8.9), batch) == [
            tv.FALSE, tv.UNKNOWN, tv.TRUE, tv.TRUE,
        ]

    def test_equality_builder(self, batch):
        assert truth(col("t", "year").eq(1994), batch) == [
            tv.FALSE, tv.FALSE, tv.TRUE, tv.UNKNOWN,
        ]

    def test_inequality_builder(self, batch):
        assert truth(col("t", "year").ne(1994), batch)[2] is tv.FALSE

    def test_invalid_operator_rejected(self):
        with pytest.raises(ExprError):
            Comparison(col("t", "year"), "~", lit(3))

    def test_key_includes_operator(self):
        assert (col("t", "year") > lit(2000)).key() == "(t.year > 2000)"

    def test_tables_union_of_sides(self):
        expr = Comparison(col("a", "x"), "=", col("b", "y"))
        assert expr.tables() == frozenset({"a", "b"})


class TestOtherPredicates:
    def test_like_case_sensitive(self, batch):
        assert truth(like(col("t", "title"), "%Dark%"), batch) == [
            tv.TRUE, tv.FALSE, tv.FALSE, tv.FALSE,
        ]

    def test_ilike_case_insensitive(self, batch):
        assert truth(ilike(col("t", "title"), "%dark%"), batch)[0] is tv.TRUE

    def test_like_underscore_wildcard(self, batch):
        assert truth(like(col("t", "title"), "Evolutio_"), batch)[1] is tv.TRUE

    def test_like_escapes_regex_metacharacters(self, batch):
        # A '.' in the pattern must not act as a regex wildcard.
        assert truth(like(col("t", "title"), "Pulp.Fiction"), batch)[2] is tv.FALSE

    def test_in_predicate(self, batch):
        assert truth(in_(col("t", "year"), [1994, 2008]), batch) == [
            tv.TRUE, tv.FALSE, tv.TRUE, tv.UNKNOWN,
        ]

    def test_in_predicate_requires_values(self):
        with pytest.raises(ExprError):
            InPredicate(col("t", "year"), [])

    def test_between(self, batch):
        assert truth(between(col("t", "year"), 1990, 2005), batch) == [
            tv.FALSE, tv.TRUE, tv.TRUE, tv.UNKNOWN,
        ]

    def test_is_null(self, batch):
        assert truth(is_null(col("t", "score")), batch) == [
            tv.FALSE, tv.TRUE, tv.FALSE, tv.FALSE,
        ]

    def test_is_not_null(self, batch):
        assert truth(is_null(col("t", "score"), negated=True), batch)[1] is tv.FALSE


class TestBooleanCombinators:
    def test_and_evaluation(self, batch):
        expr = and_(col("t", "year") > lit(2000), col("t", "score") > lit(8.0))
        # Row 3 has year=NULL but score=7.5, and UNKNOWN AND FALSE = FALSE.
        assert truth(expr, batch) == [tv.TRUE, tv.UNKNOWN, tv.FALSE, tv.FALSE]

    def test_or_evaluation(self, batch):
        expr = or_(col("t", "year") > lit(2000), col("t", "score") > lit(8.0))
        assert truth(expr, batch) == [tv.TRUE, tv.TRUE, tv.TRUE, tv.UNKNOWN]

    def test_not_evaluation(self, batch):
        expr = not_(col("t", "year") > lit(2000))
        assert truth(expr, batch) == [tv.FALSE, tv.FALSE, tv.TRUE, tv.UNKNOWN]

    def test_nary_requires_two_children(self):
        with pytest.raises(ExprError):
            AndExpr([col("t", "year") > lit(2000)])

    def test_commutative_keys_are_canonical(self):
        a = col("t", "year") > lit(2000)
        b = col("t", "score") > lit(8.0)
        assert and_(a, b).key() == and_(b, a).key()

    def test_single_child_builders_collapse(self):
        predicate = col("t", "year") > lit(2000)
        assert and_(predicate) is predicate
        assert or_(predicate) is predicate

    def test_builders_require_children(self):
        with pytest.raises(ValueError):
            and_()
        with pytest.raises(ValueError):
            or_()


class TestStructuralHelpers:
    def test_flatten_merges_nested_ands(self):
        a, b, c = (col("t", "year") > lit(y) for y in (1, 2, 3))
        nested = AndExpr([a, AndExpr([b, c])])
        flattened = flatten(nested)
        assert isinstance(flattened, AndExpr)
        assert len(flattened.children()) == 3

    def test_flatten_merges_nested_ors(self):
        a, b, c = (col("t", "year") > lit(y) for y in (1, 2, 3))
        flattened = flatten(OrExpr([OrExpr([a, b]), c]))
        assert len(flattened.children()) == 3

    def test_flatten_removes_double_negation(self):
        predicate = col("t", "year") > lit(2000)
        assert flatten(NotExpr(NotExpr(predicate))) == predicate

    def test_flatten_preserves_mixed_nesting(self):
        a, b, c = (col("t", "year") > lit(y) for y in (1, 2, 3))
        expr = flatten(OrExpr([AndExpr([a, b]), c]))
        assert isinstance(expr, OrExpr)
        assert len(expr.children()) == 2

    def test_iter_base_predicates_counts_duplicates(self):
        a = col("t", "year") > lit(2000)
        b = col("t", "score") > lit(8.0)
        expr = or_(and_(a, b), and_(a, col("t", "score") > lit(7.0)))
        keys = [predicate.key() for predicate in iter_base_predicates(expr)]
        assert keys.count(a.key()) == 2

    def test_count_nodes(self):
        a = col("t", "year") > lit(2000)
        b = col("t", "score") > lit(8.0)
        assert count_nodes(and_(a, b)) == 3


class TestRowBatch:
    def test_alias_validation(self, batch):
        with pytest.raises(KeyError):
            batch.column("missing", "year")

    def test_column_memoization(self, batch):
        first = batch.column("t", "year")
        second = batch.column("t", "year")
        assert first[0] is second[0]

    def test_indices_for_unknown_alias(self, batch):
        with pytest.raises(KeyError):
            batch.indices_for("zzz")

    def test_mismatched_index_lengths_rejected(self):
        table = Table.from_dict("t", {"x": [1, 2]})
        with pytest.raises(ValueError):
            RowBatch({"a": table, "b": table}, {"a": np.array([0]), "b": np.array([0, 1])})

    def test_for_base_table_subset(self):
        table = Table.from_dict("t", {"x": [10, 20, 30]})
        batch = RowBatch.for_base_table("t", table, positions=np.array([2]))
        values, _ = batch.column("t", "x")
        assert list(values) == [30]

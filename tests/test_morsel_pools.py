"""Regression: process-wide execution pools must be shut down, not leaked.

The morsel thread-pool registry (`repro.engine.parallel._POOLS`) historically
grew one never-collected ThreadPoolExecutor per distinct worker count for the
life of the process.  `shutdown_morsel_pools()` drains it (and is registered
via ``atexit``, so embedders and shard worker processes tear down cleanly);
pools transparently re-create on next use.  The shard process-pool registry
follows the same contract.
"""

from __future__ import annotations

import atexit

from repro.engine import parallel, shard


def test_morsel_pool_reuse_and_shutdown():
    first = parallel._morsel_pool(2)
    assert parallel._morsel_pool(2) is first
    other = parallel._morsel_pool(3)
    assert other is not first
    assert set(parallel._POOLS) == {2, 3}

    parallel.shutdown_morsel_pools()
    assert parallel._POOLS == {}
    # A shut-down executor refuses new work; the registry must hand back a
    # fresh, usable pool instead.
    fresh = parallel._morsel_pool(2)
    assert fresh is not first
    assert fresh.submit(lambda: 41 + 1).result() == 42
    parallel.shutdown_morsel_pools()


def test_shutdown_idempotent_and_nowait():
    parallel._morsel_pool(2)
    parallel.shutdown_morsel_pools(wait=False)
    parallel.shutdown_morsel_pools()  # empty registry: no-op
    assert parallel._POOLS == {}


def test_shutdown_hooks_registered_atexit():
    """Both registries tear down at interpreter exit."""
    # atexit keeps registered callables in a private table; the public,
    # stable signal is that unregistering succeeds without error and the
    # functions are re-registerable (as module import did).
    atexit.unregister(parallel.shutdown_morsel_pools)
    atexit.register(parallel.shutdown_morsel_pools)
    atexit.unregister(shard.shutdown_shard_pools)
    atexit.register(shard.shutdown_shard_pools)


def test_shard_pool_registry_follows_same_contract():
    shard.shutdown_shard_pools()
    assert shard._SHARD_POOLS == {}
    pool = shard.shard_pool(2)
    assert shard.shard_pool(2) is pool
    shard.shutdown_shard_pools()
    assert shard._SHARD_POOLS == {}
    assert shard.shard_pool(2) is not pool
    shard.shutdown_shard_pools()

"""Unit tests for the workload generators (synthetic, IMDB-like, JOB groups)."""

import numpy as np
import pytest

from repro.core.factor import factor_common_subexpressions
from repro.expr.ast import AndExpr, OrExpr
from repro.workloads.imdb import BASE_SIZES, generate_imdb_catalog
from repro.workloads.job import common_subexpression_keys, job_query, job_query_groups
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_catalog,
    make_cnf_query,
    make_dnf_query,
)


class TestSyntheticData:
    def test_table_sizes(self, synthetic_catalog):
        for name in ("T0", "T1", "T2"):
            assert synthetic_catalog.get(name).num_rows == 800

    def test_t0_ids_are_unique_primary_keys(self, synthetic_catalog):
        ids = synthetic_catalog.get("T0").column("id").data
        assert len(np.unique(ids)) == 800
        assert ids.min() == 1 and ids.max() == 800

    def test_foreign_keys_within_range(self, synthetic_catalog):
        for name in ("T1", "T2"):
            fids = synthetic_catalog.get(name).column("fid").data
            assert fids.min() >= 1
            assert fids.max() <= 800

    def test_foreign_keys_are_skewed(self):
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=5000, seed=0))
        fids = catalog.get("T1").column("fid").data
        _values, counts = np.unique(fids, return_counts=True)
        # Zipf(1.5): the most frequent key should dominate the median key.
        assert counts.max() > 20 * np.median(counts)

    def test_attributes_uniform_in_unit_interval(self, synthetic_catalog):
        values = synthetic_catalog.get("T1").column("A1").data
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_reproducibility(self):
        a = generate_synthetic_catalog(SyntheticConfig(table_size=100, seed=5))
        b = generate_synthetic_catalog(SyntheticConfig(table_size=100, seed=5))
        assert np.array_equal(a.get("T1").column("fid").data, b.get("T1").column("fid").data)

    def test_different_seeds_differ(self):
        a = generate_synthetic_catalog(SyntheticConfig(table_size=100, seed=5))
        b = generate_synthetic_catalog(SyntheticConfig(table_size=100, seed=6))
        assert not np.array_equal(a.get("T1").column("fid").data, b.get("T1").column("fid").data)


class TestSyntheticQueries:
    def test_dnf_structure(self):
        query = make_dnf_query(num_root_clauses=3, selectivity=0.2)
        assert isinstance(query.predicate, OrExpr)
        assert len(query.predicate.children()) == 3
        for clause in query.predicate.children():
            assert isinstance(clause, AndExpr)

    def test_cnf_structure(self):
        query = make_cnf_query(num_root_clauses=3, selectivity=0.2)
        assert isinstance(query.predicate, AndExpr)
        assert len(query.predicate.children()) == 3

    def test_outer_factor_in_dnf_added_to_every_clause(self):
        query = make_dnf_query(num_root_clauses=2, selectivity=0.2, outer_factor=0.5)
        for clause in query.predicate.children():
            assert any("T0.A1" in child.key() for child in clause.children())

    def test_outer_factor_in_cnf_added_as_conjunct(self):
        query = make_cnf_query(num_root_clauses=2, selectivity=0.2, outer_factor=0.5)
        assert any("T0.A1" in child.key() for child in query.predicate.children())

    def test_invalid_clause_count(self):
        with pytest.raises(ValueError):
            make_dnf_query(num_root_clauses=0)
        with pytest.raises(ValueError):
            make_cnf_query(num_root_clauses=0)

    def test_queries_reference_declared_tables_only(self):
        query = make_dnf_query(num_root_clauses=7, selectivity=0.3)
        assert query.predicate.tables() <= set(query.tables)


class TestImdbCatalog:
    def test_schema_tables_present(self, imdb_catalog):
        for table_name in BASE_SIZES:
            assert table_name in imdb_catalog

    def test_scaling(self, imdb_catalog):
        assert imdb_catalog.get("title").num_rows == int(BASE_SIZES["title"] * 0.015)
        # Dimension tables are not scaled below their fixed sizes.
        assert imdb_catalog.get("kind_type").num_rows == BASE_SIZES["kind_type"]

    def test_foreign_keys_reference_titles(self, imdb_catalog):
        num_titles = imdb_catalog.get("title").num_rows
        for table_name in ("movie_info_idx", "cast_info", "movie_keyword", "movie_companies"):
            movie_ids = imdb_catalog.get(table_name).column("movie_id").data
            assert movie_ids.min() >= 1
            assert movie_ids.max() <= num_titles

    def test_ratings_in_valid_range(self, imdb_catalog):
        ratings = imdb_catalog.get("movie_info_idx").column("info").data
        assert ratings.min() >= 1.0
        assert ratings.max() <= 10.0

    def test_years_plausible(self, imdb_catalog):
        years = imdb_catalog.get("title").column("production_year").data
        assert years.min() >= 1930
        assert years.max() <= 2023

    def test_superhero_characters_exist(self, imdb_catalog):
        names = set(imdb_catalog.get("char_name").column("name").values_list())
        assert "Iron Man" in names

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_imdb_catalog(scale=0)

    def test_reproducible_for_same_seed(self):
        a = generate_imdb_catalog(scale=0.005, seed=3)
        b = generate_imdb_catalog(scale=0.005, seed=3)
        assert a.get("title").column("title").values_list() == b.get("title").column("title").values_list()


class TestJobGroups:
    def test_thirty_three_groups(self):
        queries = job_query_groups()
        assert len(queries) == 33
        assert [query.name for query in queries] == [f"job{i:02d}" for i in range(1, 34)]

    def test_every_group_is_disjunctive(self):
        for query in job_query_groups():
            assert isinstance(query.predicate, OrExpr)
            assert len(query.predicate.children()) >= 2

    def test_every_group_has_a_common_subexpression(self):
        for query in job_query_groups():
            assert common_subexpression_keys(query), query.name

    def test_every_group_is_factorable_into_and_root(self):
        for query in job_query_groups():
            factored = factor_common_subexpressions(query.predicate)
            assert isinstance(factored, AndExpr), query.name

    def test_clauses_span_multiple_tables(self):
        multi_table_groups = 0
        for query in job_query_groups():
            clause_tables = [clause.tables() for clause in query.predicate.children()]
            if any(len(tables) > 1 for tables in clause_tables):
                multi_table_groups += 1
        assert multi_table_groups == 33

    def test_join_graphs_are_connected(self, imdb_catalog):
        import networkx as nx

        for query in job_query_groups():
            graph = nx.Graph()
            graph.add_nodes_from(query.aliases)
            for condition in query.join_conditions:
                graph.add_edge(condition.left.alias, condition.right.alias)
            assert nx.is_connected(graph), query.name

    def test_queries_reference_existing_columns(self, imdb_catalog):
        from repro.expr.ast import iter_base_predicates

        for query in job_query_groups():
            for alias, table_name in query.tables.items():
                assert table_name in imdb_catalog
            table_by_alias = {alias: imdb_catalog.get(name) for alias, name in query.tables.items()}
            for predicate in iter_base_predicates(query.predicate):
                for alias in predicate.tables():
                    assert alias in table_by_alias
            for condition in query.join_conditions:
                for ref in (condition.left, condition.right):
                    assert ref.column in table_by_alias[ref.alias]

    def test_job_query_lookup(self):
        assert job_query(20).name == "job20"
        with pytest.raises(ValueError):
            job_query(0)
        with pytest.raises(ValueError):
            job_query(34)

    def test_group_templates_are_varied(self):
        alias_sets = {frozenset(query.tables.values()) for query in job_query_groups()}
        assert len(alias_sets) >= 5

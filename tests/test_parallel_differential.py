"""Differential tests: parallel execution vs. serial vs. the oracle.

The acceptance bar for the morsel driver is strict determinism:

* for every generated workload query and every execution model, results at
  ``parallelism ∈ {1, 2, 4}`` and ``partitions ∈ {1, 3, 7}`` match the naive
  oracle;
* at a fixed partition count, results are **byte-identical** (same rows in
  the same order) at every worker count — scheduling must never reorder the
  partition-order merge;
* the plan choice is identical at every setting, because parallelism is an
  execution-time knob that planning never sees.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.oracle import evaluate_oracle
from repro.testing.querygen import RandomQueryConfig, generate_random_query

#: One planner per execution model, plus the DP search planner.
PLANNERS = ("tcombined", "texhaustive", "bdisj", "bpushconj", "bypass")

PARALLELISM_LEVELS = (1, 2, 4)
PARTITION_COUNTS = (1, 3, 7)

QUERY_SEEDS = (11, 23, 47)


@pytest.fixture(scope="module")
def catalog():
    return generate_random_catalog(
        RandomCatalogConfig(seed=5, num_dimensions=2, fact_rows=160, dimension_rows=120)
    )


@pytest.fixture(scope="module")
def session(catalog):
    return Session(catalog, stats_sample_size=200)


@pytest.fixture(scope="module", params=QUERY_SEEDS)
def workload(request, catalog, session):
    """One generated query with its oracle answer and serial reference runs."""
    query = generate_random_query(catalog, RandomQueryConfig(seed=request.param))
    expected = evaluate_oracle(catalog, query)
    references = {
        planner: session.execute(query, planner=planner) for planner in PLANNERS
    }
    return query, expected, references


@pytest.mark.parametrize("planner", PLANNERS)
def test_parallel_matches_oracle_and_serial(workload, session, planner):
    query, expected, references = workload
    reference = references[planner]
    for partitions in PARTITION_COUNTS:
        per_worker_rows = {}
        for parallelism in PARALLELISM_LEVELS:
            result = session.execute(
                query, planner=planner, parallelism=parallelism, partitions=partitions
            )
            # Same answer as the oracle and as plain serial execution.
            assert result.sorted_rows() == expected, (
                f"{planner} at parallelism={parallelism}, partitions={partitions} "
                f"disagrees with the oracle"
            )
            assert result.row_count == reference.row_count
            # Identical plan: parallelism is invisible to the planner.
            assert result.plan_description == reference.plan_description
            per_worker_rows[parallelism] = result.rows
        # Byte-identical output at any worker count for a fixed partitioning.
        baseline = per_worker_rows[1]
        for parallelism, rows in per_worker_rows.items():
            assert rows == baseline, (
                f"{planner} output at parallelism={parallelism} differs from "
                f"serial at partitions={partitions}"
            )


def test_partitions_one_identical_to_legacy_serial(workload, session):
    """partitions=1 must be bit-for-bit the unpartitioned code path."""
    query, _expected, references = workload
    for planner in PLANNERS:
        result = session.execute(query, planner=planner, parallelism=1, partitions=1)
        assert result.rows == references[planner].rows


def test_parallelism_defaults_from_session(catalog):
    """Session-level knobs apply without per-call overrides."""
    parallel_session = Session(catalog, stats_sample_size=200, parallelism=4, partitions=7)
    serial_session = Session(catalog, stats_sample_size=200)
    query = generate_random_query(catalog, RandomQueryConfig(seed=3))
    parallel = parallel_session.execute(query, planner="tcombined")
    serial = serial_session.execute(query, planner="tcombined")
    assert parallel.metrics.morsels_executed == 7
    assert parallel.sorted_rows() == serial.sorted_rows()


def test_query_service_parallelism_does_not_mutate_session(catalog):
    """Service-level knobs apply per call; the wrapped session keeps its own."""
    from repro.service import QueryService

    session = Session(catalog, stats_sample_size=200)
    query = generate_random_query(catalog, RandomQueryConfig(seed=3))
    with QueryService(session, parallelism=4, partitions=7) as service:
        served = service.execute(query, planner="tcombined")
        assert session.parallelism == 1 and session.partitions is None
        direct = session.execute(query, planner="tcombined")
        assert served.metrics.morsels_executed == 7
        assert direct.metrics.morsels_executed == 1
        assert served.sorted_rows() == direct.sorted_rows()


def test_output_shaping_runs_once_after_merge(catalog):
    """ORDER BY / LIMIT / aggregates see the merged output, not the morsels."""
    session = Session(catalog, stats_sample_size=200)
    sql = (
        "SELECT f.id FROM F AS f JOIN D1 AS d1 ON f.id = d1.fid "
        "WHERE f.A1 < 0.8 OR d1.A1 < 0.4 ORDER BY f.id DESC LIMIT 10"
    )
    serial = session.execute(sql, planner="tcombined")
    parallel = session.execute(sql, planner="tcombined", parallelism=4, partitions=7)
    assert parallel.rows == serial.rows
    assert parallel.row_count <= 10

    count_sql = (
        "SELECT COUNT(*) FROM F AS f JOIN D1 AS d1 ON f.id = d1.fid "
        "WHERE f.A1 < 0.8 OR d1.A1 < 0.4"
    )
    serial_count = session.execute(count_sql, planner="bdisj")
    parallel_count = session.execute(count_sql, planner="bdisj", parallelism=2, partitions=3)
    assert parallel_count.rows == serial_count.rows

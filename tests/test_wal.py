"""WAL unit tests: record format, torn tails, recovery, compaction faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Table
from repro.mutation.diskops import (
    append_rows_to_saved_catalog,
    apply_ops_to_saved_catalog,
    compact_saved_catalog,
    delete_rows_from_saved_catalog,
)
from repro.mutation.recovery import recover_saved_catalog
from repro.mutation.wal import (
    WAL_NAME,
    WalError,
    WalTransaction,
    WalWriter,
    applied_txn,
    encode_record,
    json_safe,
    read_wal,
    rewrite_wal,
    wal_status,
)
from repro.storage.disk import _read_manifest, load_catalog, save_catalog
from repro.testing import faults


def _saved_dataset(tmp_path):
    catalog = Catalog(
        [
            Table.from_dict(
                "t",
                {
                    "id": list(range(30)),
                    "v": [float(i % 7) for i in range(30)],
                    "s": [f"n{i % 4}" for i in range(30)],
                },
            )
        ]
    )
    root = tmp_path / "data"
    save_catalog(catalog, root)
    return root


def _live_rows(root, table="t"):
    """The logical (live) rows of a saved table, order-independent."""
    catalog = load_catalog(root)
    tbl = catalog.get(table)
    mask = tbl.delete_mask
    positions = np.arange(tbl.num_rows) if mask is None else np.flatnonzero(~mask)
    return sorted(tuple(sorted(row.items())) for row in tbl.rows(positions))


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    faults.disarm()


class TestRecordFormat:
    def test_transaction_round_trip(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            txn = writer.append_transaction(
                [{"table": "t", "op": "append", "rows": [{"id": 1, "v": 2.5}]}]
            )
        assert txn == 1
        state = read_wal(tmp_path)
        assert state.base_txn == 0
        assert [t.txn for t in state.committed] == [1]
        assert state.committed[0].ops == [
            {"table": "t", "op": "append", "rows": [{"id": 1, "v": 2.5}]}
        ]
        assert state.tail_bytes == 0

    def test_txn_numbers_are_monotone(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            assert writer.append_transaction([{"table": "t", "op": "append", "rows": []}]) == 1
            assert writer.append_transaction([{"table": "t", "op": "append", "rows": []}]) == 2
        # A fresh writer continues where the last committed transaction ended.
        with WalWriter(tmp_path) as writer:
            assert writer.append_transaction([{"table": "t", "op": "append", "rows": []}]) == 3
        assert read_wal(tmp_path).last_txn == 3

    def test_torn_record_is_tail_not_error(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            writer.append_transaction([{"table": "t", "op": "append", "rows": [{"id": 1}]}])
        path = tmp_path / WAL_NAME
        intact = path.read_bytes()
        # Half a record appended after the commit marker: a torn tail.
        path.write_bytes(intact + encode_record({"kind": "op", "txn": 2, "x": 1})[:9])
        state = read_wal(tmp_path)
        assert [t.txn for t in state.committed] == [1]
        assert state.tail_bytes == 9
        assert state.valid_length == len(intact)

    def test_corrupt_checksum_stops_the_scan(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            writer.append_transaction([{"table": "t", "op": "append", "rows": [{"id": 1}]}])
            end_of_first = (tmp_path / WAL_NAME).stat().st_size
            writer.append_transaction([{"table": "t", "op": "append", "rows": [{"id": 2}]}])
        path = tmp_path / WAL_NAME
        data = bytearray(path.read_bytes())
        data[end_of_first + 20] ^= 0xFF  # flip a payload byte of txn 2
        path.write_bytes(bytes(data))
        state = read_wal(tmp_path)
        assert [t.txn for t in state.committed] == [1]
        assert state.tail_bytes == len(data) - state.valid_length > 0

    def test_uncommitted_transaction_is_tail(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            writer.append_transaction([{"table": "t", "op": "append", "rows": [{"id": 1}]}])
        path = tmp_path / WAL_NAME
        # Op records without a commit marker: the transaction never committed.
        orphan = encode_record({"kind": "op", "txn": 2, "table": "t", "op": "append", "rows": []})
        path.write_bytes(path.read_bytes() + orphan)
        state = read_wal(tmp_path)
        assert [t.txn for t in state.committed] == [1]
        assert state.tail_bytes == len(orphan)

    def test_unreadable_header_means_whole_file_is_tail(self, tmp_path):
        (tmp_path / WAL_NAME).write_bytes(b"not a wal file at all")
        state = read_wal(tmp_path)
        assert state.committed == []
        assert state.valid_length == 0
        assert state.tail_bytes == len(b"not a wal file at all")

    def test_no_wal_file_reads_as_none(self, tmp_path):
        assert read_wal(tmp_path) is None

    def test_json_safe_unwraps_numpy_scalars(self):
        safe = json_safe({"a": np.int64(3), "b": [np.float64(1.5)], "c": "s"})
        assert safe == {"a": 3, "b": [1.5], "c": "s"}
        assert type(safe["a"]) is int and type(safe["b"][0]) is float


class TestWriterTruncation:
    def test_open_truncates_torn_tail(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            writer.append_transaction([{"table": "t", "op": "append", "rows": [{"id": 1}]}])
        path = tmp_path / WAL_NAME
        clean_size = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x00garbage")
        with WalWriter(tmp_path) as writer:
            assert path.stat().st_size == clean_size
            assert writer.append_transaction([{"table": "t", "op": "append", "rows": []}]) == 2


class TestHeaderlessWal:
    """A wal.log with no readable header must be rewritten, not appended to."""

    def test_empty_wal_file_is_rewritten_with_a_header(self, tmp_path):
        root = _saved_dataset(tmp_path)
        (root / WAL_NAME).write_bytes(b"")
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        state = read_wal(root)
        assert state.base_txn == 0
        assert [t.txn for t in state.committed] == [1]
        assert len(_live_rows(root)) == 31  # the dataset still loads

    def test_torn_header_resumes_from_the_applied_watermark(self, tmp_path):
        # The review scenario: a crash during WAL creation leaves a partial
        # header; the next write must not extend the headerless file (that
        # made every later load_catalog raise WalError).
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        path = root / WAL_NAME
        path.write_bytes(path.read_bytes()[:7])  # no intact record at all
        append_rows_to_saved_catalog(root, "t", [{"id": 101, "v": 2.0, "s": "y"}])
        state = read_wal(root)
        assert state.base_txn == 1  # numbering stayed absolute and monotone
        assert [t.txn for t in state.committed] == [2]
        assert len(_live_rows(root)) == 32
        status = wal_status(root)
        assert status["pending_txns"] == 0
        assert status["tail_bytes"] == 0


class TestRewrite:
    def test_rewrite_advances_base_and_keeps_survivors(self, tmp_path):
        with WalWriter(tmp_path) as writer:
            for i in range(4):
                writer.append_transaction(
                    [{"table": "t", "op": "append", "rows": [{"id": i}]}]
                )
        state = read_wal(tmp_path)
        survivors = [t for t in state.committed if t.txn > 3]
        rewrite_wal(tmp_path, 3, survivors)
        state = read_wal(tmp_path)
        assert state.base_txn == 3
        assert [t.txn for t in state.committed] == [4]
        assert state.last_txn == 4
        # Absolute numbering continues past the rewrite.
        with WalWriter(tmp_path) as writer:
            assert writer.append_transaction([{"table": "t", "op": "append", "rows": []}]) == 5

    def test_rewrite_to_empty_keeps_the_watermark(self, tmp_path):
        rewrite_wal(tmp_path, 7, [])
        state = read_wal(tmp_path)
        assert state.base_txn == 7
        assert state.committed == []
        assert state.last_txn == 7

    def test_wal_transaction_survives_rewrite_round_trip(self, tmp_path):
        ops = [{"table": "t", "op": "delete", "positions": [1, 2]}]
        rewrite_wal(tmp_path, 0, [WalTransaction(txn=1, ops=ops)])
        assert read_wal(tmp_path).committed[0].ops == ops


class TestWalStatus:
    def test_fresh_dataset_has_no_wal(self, tmp_path):
        root = _saved_dataset(tmp_path)
        status = wal_status(root)
        assert status["exists"] is False
        assert status["pending_txns"] == 0

    def test_applied_tracks_committed_after_dml(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        delete_rows_from_saved_catalog(root, "t", "t.id = 0")
        status = wal_status(root)
        assert status["exists"] is True
        assert status["committed_txns"] == 2
        assert status["applied_txns"] == 2
        assert status["pending_txns"] == 0
        assert status["tail_bytes"] == 0
        assert applied_txn(_read_manifest(root)) == 2

    def test_committed_but_unapplied_txn_is_pending(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        # Hand-log a second transaction without applying it.
        with WalWriter(root) as writer:
            writer.append_transaction(
                [{"table": "t", "op": "append", "rows": [{"id": 101, "v": 2.0, "s": "y"}]}]
            )
        status = wal_status(root)
        assert status["committed_txns"] == 2
        assert status["applied_txns"] == 1
        assert status["pending_txns"] == 1


class TestRecovery:
    def test_no_wal_is_a_no_op(self, tmp_path):
        root = _saved_dataset(tmp_path)
        summary = recover_saved_catalog(root)
        assert summary == {
            "wal": False,
            "truncated_bytes": 0,
            "replayed_txns": 0,
            "last_txn": 0,
            "applied_txns": 0,
        }

    def test_torn_tail_is_truncated_and_batch_rolled_back(self, tmp_path):
        root = _saved_dataset(tmp_path)
        before = _live_rows(root)
        with faults.armed("wal.partial_record"):
            with pytest.raises(faults.InjectedCrash):
                append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        summary = recover_saved_catalog(root)
        assert summary["truncated_bytes"] > 0
        assert summary["replayed_txns"] == 0
        assert _live_rows(root) == before
        assert wal_status(root)["tail_bytes"] == 0

    def test_committed_unapplied_txn_is_replayed(self, tmp_path):
        root = _saved_dataset(tmp_path)
        with faults.armed("segment.partial_write"):
            with pytest.raises(faults.InjectedCrash):
                append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        assert wal_status(root)["pending_txns"] == 1
        summary = recover_saved_catalog(root)
        assert summary["replayed_txns"] == 1
        assert summary["truncated_bytes"] == 0
        rows = _live_rows(root)
        assert (("id", 100), ("s", "x"), ("v", 1.0)) in rows
        assert len(rows) == 31

    def test_load_catalog_recovers_automatically(self, tmp_path):
        root = _saved_dataset(tmp_path)
        with faults.armed("manifest.before_rename"):
            with pytest.raises(faults.InjectedCrash):
                delete_rows_from_saved_catalog(root, "t", "t.id < 5")
        assert wal_status(root)["pending_txns"] == 1
        catalog = load_catalog(root)  # recover=True is the default
        assert catalog.get("t").num_live == 25
        assert wal_status(root)["pending_txns"] == 0

    def test_recovery_is_idempotent(self, tmp_path):
        root = _saved_dataset(tmp_path)
        with faults.armed("segment.partial_write"):
            with pytest.raises(faults.InjectedCrash):
                append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        recover_saved_catalog(root)
        after_first = _live_rows(root)
        summary = recover_saved_catalog(root)
        assert summary["replayed_txns"] == 0
        assert _live_rows(root) == after_first

    def test_apply_ops_skips_already_applied_txns(self, tmp_path):
        root = _saved_dataset(tmp_path)
        ops = [{"table": "t", "op": "append", "rows": [{"id": 100, "v": 1.0, "s": "x"}]}]
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        # Re-applying transaction 1 must be a no-op: the manifest watermark
        # already covers it.
        apply_ops_to_saved_catalog(root, ops, wal_txn=1)
        assert len(_live_rows(root)) == 31


class TestCompactionFaults:
    """In-process regression tests for crashes inside the compaction swap."""

    def _dataset_with_history(self, tmp_path):
        root = _saved_dataset(tmp_path)
        append_rows_to_saved_catalog(root, "t", [{"id": 100, "v": 1.0, "s": "x"}])
        delete_rows_from_saved_catalog(root, "t", "t.id < 3")
        return root

    def test_crash_before_swap_preserves_old_state(self, tmp_path):
        root = self._dataset_with_history(tmp_path)
        before = _live_rows(root)
        generation = int(_read_manifest(root).get("generation", 0))
        with faults.armed("compact.before_swap"):
            with pytest.raises(faults.InjectedCrash):
                compact_saved_catalog(root)
        assert _live_rows(root) == before
        assert int(_read_manifest(root).get("generation", 0)) == generation
        # The dataset is fully usable: a later compaction succeeds.
        summary = compact_saved_catalog(root)
        assert summary["rows_reclaimed"] == 3
        assert _live_rows(root) == before

    def test_crash_before_wal_truncate_does_not_double_apply(self, tmp_path):
        # The PR-6 regression: the manifest swap has happened but the stale
        # WAL (and formerly the stale append log) is still readable.  Replay
        # must skip the folded transactions instead of applying them twice.
        root = self._dataset_with_history(tmp_path)
        before = _live_rows(root)
        with faults.armed("compact.before_wal_truncate"):
            with pytest.raises(faults.InjectedCrash):
                compact_saved_catalog(root)
        manifest = _read_manifest(root)
        assert int(manifest.get("generation", 0)) == 1  # swap happened
        state = read_wal(root)
        assert state.committed  # folded txns still in the WAL
        assert applied_txn(manifest) >= state.last_txn
        summary = recover_saved_catalog(root)
        assert summary["replayed_txns"] == 0  # nothing re-applied
        assert _live_rows(root) == before
        # The next DML and compaction proceed normally on the new generation.
        append_rows_to_saved_catalog(root, "t", [{"id": 200, "v": 2.0, "s": "z"}])
        assert len(_live_rows(root)) == len(before) + 1
        compact_saved_catalog(root)
        assert len(_live_rows(root)) == len(before) + 1


class TestDurableCatalog:
    def test_durable_commit_survives_reload(self, tmp_path):
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root, durable=True)
        assert catalog.durability is not None
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0, "s": "x"}])
        batch.delete("t", where="t.id < 2")
        batch.commit()
        assert catalog.get("t").num_live == 29
        reloaded = load_catalog(root)
        assert reloaded.get("t").num_live == 29
        assert _live_rows(root) == sorted(
            tuple(sorted(row.items()))
            for row in catalog.get("t").rows(
                np.flatnonzero(~catalog.get("t").delete_mask)
            )
        )

    def test_crashed_durable_commit_recovers_to_batch(self, tmp_path):
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root, durable=True)
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0, "s": "x"}])
        with faults.armed("manifest.before_rename"):
            with pytest.raises(faults.InjectedCrash):
                batch.commit()
        # The WAL committed before the crash, so the reopened dataset has the
        # batch even though the manifest write never finished.
        reloaded = load_catalog(root)
        assert reloaded.get("t").num_rows == 31

    def test_stale_writer_handle_is_reopened_after_external_rewrite(self, tmp_path):
        # A compaction in another process replaces wal.log by rename; the
        # cached writer handle is then bound to the unlinked inode and its
        # appends would be invisible to recovery.
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root, durable=True)
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0, "s": "x"}])
        batch.commit()  # caches the writer handle
        rewrite_wal(root, applied_txn(_read_manifest(root)), [])
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 101, "v": 2.0, "s": "y"}])
        batch.commit()
        state = read_wal(root)  # the live file, not the unlinked inode
        assert state.base_txn == 1
        assert [t.txn for t in state.committed] == [2]
        assert wal_status(root)["pending_txns"] == 0
        assert len(_live_rows(root)) == 32

    def test_failed_apply_after_wal_commit_poisons_the_controller(self, tmp_path):
        root = _saved_dataset(tmp_path)
        catalog = load_catalog(root, durable=True)
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0, "s": "x"}])
        with faults.armed("manifest.before_rename"):
            with pytest.raises(faults.InjectedCrash):
                batch.commit()
        # Disk durably committed the transaction, memory never applied it:
        # the controller must refuse further commits instead of diverging.
        assert catalog.durability.poisoned is not None
        retry = catalog.begin_mutation()
        retry.insert("t", [{"id": 101, "v": 2.0, "s": "y"}])
        with pytest.raises(WalError, match="poisoned"):
            retry.commit()
        # The documented way out: reload, which replays the WAL transaction.
        reloaded = load_catalog(root, durable=True)
        assert reloaded.get("t").num_rows == 31
        fresh = reloaded.begin_mutation()
        fresh.insert("t", [{"id": 101, "v": 2.0, "s": "y"}])
        fresh.commit()
        assert reloaded.get("t").num_rows == 32
        assert load_catalog(root).get("t").num_rows == 32

"""Tests for the figure-regeneration command line interface."""

import pytest

from repro.bench import figures


class TestFiguresCli:
    def test_fig4a_quick(self, capsys, monkeypatch):
        monkeypatch.setattr(figures, "run_selectivity_sweep", _fake_sweep)
        exit_code = figures.main(["fig4a", "--quick"])
        assert exit_code == 0
        assert "FAKE-SWEEP" in capsys.readouterr().out

    def test_fig3a_quick_uses_group_subset(self, capsys, monkeypatch):
        captured = {}

        def fake_run_job_figure(figure, scale, repetitions, groups):
            captured.update(figure=figure, scale=scale, repetitions=repetitions, groups=groups)
            return _FakeResult()

        monkeypatch.setattr(figures, "run_job_figure", fake_run_job_figure)
        exit_code = figures.main(["fig3a", "--quick", "--scale", "0.02"])
        assert exit_code == 0
        assert captured["figure"] == "fig3a"
        assert captured["scale"] == pytest.approx(0.02)
        assert captured["repetitions"] == 1
        assert captured["groups"] == list(range(1, 13))

    def test_explicit_groups_override_quick(self, monkeypatch, capsys):
        captured = {}

        def fake_run_job_figure(figure, scale, repetitions, groups):
            captured["groups"] = groups
            return _FakeResult()

        monkeypatch.setattr(figures, "run_job_figure", fake_run_job_figure)
        figures.main(["fig3b", "--quick", "--groups", "5", "6"])
        assert captured["groups"] == [5, 6]

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            figures.main(["fig9x"])

    def test_all_runs_every_figure(self, monkeypatch, capsys):
        calls = []
        monkeypatch.setattr(
            figures, "run_job_figure", lambda *args, **kwargs: calls.append("job") or _FakeResult()
        )
        for name in (
            "run_selectivity_sweep",
            "run_table_size_sweep",
            "run_root_clause_sweep",
            "run_outer_factor_sweep",
        ):
            monkeypatch.setattr(
                figures, name, lambda *args, **kwargs: calls.append("synthetic") or _FakeResult()
            )
        figures.main(["all", "--quick"])
        assert calls.count("job") == 4
        assert calls.count("synthetic") == 4


class _FakeResult:
    def to_table(self) -> str:
        return "FAKE-SWEEP"


def _fake_sweep(*args, **kwargs):
    return _FakeResult()

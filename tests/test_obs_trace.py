"""Tests of query tracing: span trees, differential no-op proofs, slow log.

The two load-bearing suites:

* ``TestSpanTreeInvariants`` — structural guarantees of the span tree
  (children nest inside their parents, operator self-times sum to no more
  than the execution span on a serial run).
* ``TestTracingIsANoOp`` — the differential proof that tracing never changes
  a result: byte-identical rows and identical IO accounting with tracing on
  vs. off, across planners × parallelism × shard counts.
"""

from __future__ import annotations

import json

import pytest

from repro import Catalog, QueryService, Session
from repro.cli import main
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.trace import Span, Tracer, ambient_span, current_tracer
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

SQL = (
    "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid "
    "WHERE T1.A1 < 0.2 OR (T1.A2 > 0.8 AND T0.A1 < 0.5)"
)

#: Nesting tolerance: a child's recorded bounds may exceed its parent's by
#: scheduler noise on the order of clock resolution, never more.
EPSILON = 1e-6


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return generate_synthetic_catalog(SyntheticConfig(table_size=1500, seed=11))


def spans_by_name(tracer: Tracer) -> dict[str, list[Span]]:
    out: dict[str, list[Span]] = {}
    for root in tracer.roots:
        for span in root.walk():
            out.setdefault(span.name, []).append(span)
    return out


class TestTracerUnit:
    def test_begin_end_builds_a_tree(self):
        tracer = Tracer()
        tracer.begin("a")
        tracer.begin("b")
        tracer.end()
        tracer.end(rows=3)
        assert [span.name for span in tracer.roots] == ["a"]
        (a,) = tracer.roots
        assert [child.name for child in a.children] == ["b"]
        assert a.attrs["rows"] == 3
        assert a.end is not None and a.children[0].end is not None

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_span_contextmanager_closes_leaked_children(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                tracer.begin("leaked")
                raise ValueError("boom")
        (outer,) = tracer.roots
        assert outer.end is not None
        assert outer.children[0].end is not None  # leaked child was closed

    def test_add_synthetic_pins_to_parent_start(self):
        tracer = Tracer()
        with tracer.span("parent"):
            synthetic = tracer.add_synthetic("plan", 0.25, cached=True)
        (parent,) = tracer.roots
        assert synthetic.start == parent.start
        assert synthetic.duration == pytest.approx(0.25)
        assert synthetic.attrs == {"synthetic": True, "cached": True}

    def test_operator_timing_self_excludes_children(self):
        tracer = Tracer()
        outer = tracer.op_enter()
        inner = tracer.op_enter()
        tracer.op_exit(2, "Inner", inner)
        tracer.op_exit(1, "Outer", outer)
        timings = tracer.operator_timings()
        assert timings[1]["seconds"] >= timings[2]["seconds"]
        assert timings[1]["self_seconds"] == pytest.approx(
            timings[1]["seconds"] - timings[2]["seconds"], abs=EPSILON
        )
        assert timings[1]["calls"] == timings[2]["calls"] == 1

    def test_fork_absorb_merges_spans_and_op_totals(self):
        parent = Tracer()
        parent.begin("query")
        child = parent.fork()
        with child.span("morsel"):
            started = child.op_enter()
            child.op_exit(7, "Scan", started)
        parent.absorb(child)
        parent.end()
        assert [s.name for s in parent.roots[0].children] == ["morsel"]
        assert parent.operator_timings()[7]["calls"] == 1

    def test_absorb_payload_reanchors_but_keeps_durations(self):
        remote = Tracer()
        with remote.span("shard"):
            pass
        payload = remote.to_payload()
        # Fake a foreign clock origin offset from ours (small enough that
        # float precision keeps sub-microsecond durations exact).
        payload["roots"][0]["start"] += 1000.0
        payload["roots"][0]["end"] += 1000.0
        local = Tracer()
        local.begin("execute")
        local.absorb_payload(payload)
        local.end()
        (execute,) = local.roots
        (shard,) = execute.children
        assert shard.start == pytest.approx(execute.start)
        assert shard.duration == pytest.approx(remote.roots[0].duration)

    def test_exports_are_well_formed(self):
        tracer = Tracer()
        with tracer.span("query", planner="tcombined"):
            with tracer.span("execute"):
                started = tracer.op_enter()
                tracer.op_exit(1, "Scan", started)
        document = json.loads(tracer.to_json())
        assert [span["name"] for span in document["spans"]] == ["query"]
        assert document["spans"][0]["children"][0]["name"] == "execute"
        assert document["operators"]["1"]["label"] == "Scan"
        chrome = tracer.to_chrome_trace()
        names = [event["name"] for event in chrome["traceEvents"]]
        assert names == ["query", "execute", "op:Scan#1"]
        for event in chrome["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0


class TestAmbientTracing:
    def test_ambient_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with ambient_span("anything") as span:
            assert span is None

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with ambient_span("work", size=1) as span:
                assert span is not None
        assert current_tracer() is None
        assert [s.name for s in tracer.roots] == ["work"]

    def test_mutation_path_emits_wal_and_compaction_spans(self, tmp_path, catalog):
        from repro.mutation.diskops import (
            append_rows_to_saved_catalog,
            compact_saved_catalog,
        )
        from repro.storage.disk import save_catalog

        root = tmp_path / "data"
        save_catalog(catalog, root)
        row = {f"A{i}": 0.5 for i in range(1, 8)}
        row["fid"] = 1
        tracer = Tracer()
        with tracer.activate():
            append_rows_to_saved_catalog(root, "T1", [row])
            compact_saved_catalog(root)
        names = spans_by_name(tracer)
        assert "wal.commit" in names
        assert names["wal.commit"][0].attrs["ops"] == 1
        assert "compaction" in names
        assert "recovery" in names  # load_catalog under the compactor


class TestSpanTreeInvariants:
    @pytest.fixture(scope="class")
    def traced(self, catalog) -> Tracer:
        session = Session(catalog, parallelism=1, shards=1)
        result = session.execute(SQL, planner="tcombined", trace=True)
        assert result.trace is not None
        return result.trace

    def test_every_span_is_closed(self, traced):
        for spans in spans_by_name(traced).values():
            for span in spans:
                assert span.end is not None

    def test_children_nest_within_parents(self, traced):
        def check(span: Span) -> None:
            for child in span.children:
                if child.attrs.get("synthetic"):
                    continue  # synthetic spans are pinned, not measured
                assert child.start >= span.start - EPSILON
                assert child.end <= span.end + EPSILON
                check(child)

        for root in traced.roots:
            check(root)

    def test_expected_span_names_present(self, traced):
        # partitions=1 takes the inline execution path, so no morsel spans.
        names = spans_by_name(traced)
        for expected in ("query", "plan", "execute"):
            assert expected in names, f"missing span {expected}"
        assert any(name.startswith("operator:") for name in names)

    def test_morsel_spans_appear_under_partitioned_execution(self, catalog):
        session = Session(catalog, parallelism=2, shards=1)
        result = session.execute(SQL, planner="tcombined", trace=True)
        names = spans_by_name(result.trace)
        assert len(names["morsel"]) == 2
        for span in names["morsel"]:
            assert {"start_row", "stop_row"} <= set(span.attrs)

    def test_operator_self_seconds_bounded_by_execute_span(self, traced):
        names = spans_by_name(traced)
        (execute,) = names["execute"]
        self_total = sum(
            timing["self_seconds"] for timing in traced.operator_timings().values()
        )
        assert self_total <= execute.duration + EPSILON

    def test_execute_span_carries_io_attributes(self, traced):
        (execute,) = spans_by_name(traced)["execute"]
        for key in ("pages_read", "pages_hit", "pages_pruned", "morsels"):
            assert key in execute.attrs

    def test_sharded_trace_merges_worker_spans(self, catalog):
        session = Session(catalog, parallelism=2, shards=2)
        result = session.execute(SQL, planner="tcombined", trace=True)
        names = spans_by_name(result.trace)
        assert "shard.scatter_gather" in names
        assert len(names["shard"]) == 2
        assert len(names["morsel"]) >= 2
        assert result.trace.operator_timings(), "worker op timings must merge"


class TestTracingIsANoOp:
    @pytest.mark.parametrize("planner", ["tcombined", "bdisj", "bypass"])
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_results_and_io_identical_in_process(self, catalog, planner, parallelism):
        session = Session(catalog, parallelism=parallelism, partitions=4, shards=1)
        plain = session.execute(SQL, planner=planner)
        traced = session.execute(SQL, planner=planner, trace=True)
        assert traced.trace is not None and plain.trace is None
        assert plain.rows == traced.rows  # byte-identical, same order
        assert plain.column_names == traced.column_names
        assert plain.iostats.as_dict() == traced.iostats.as_dict()
        assert plain.metrics.as_dict() == traced.metrics.as_dict()

    @pytest.mark.parametrize("shards", [1, 2])
    def test_results_and_io_identical_across_shards(self, catalog, shards):
        session = Session(catalog, parallelism=2, partitions=4, shards=shards)
        plain = session.execute(SQL, planner="tcombined")
        traced = session.execute(SQL, planner="tcombined", trace=True)
        assert plain.rows == traced.rows
        assert plain.iostats.as_dict() == traced.iostats.as_dict()
        assert plain.metrics.as_dict() == traced.metrics.as_dict()


class TestExplainAnalyzeTiming:
    def test_traced_report_shows_actual_seconds(self, catalog):
        from repro.optimizer import explain_analyze_report

        session = Session(catalog)
        prepared = session.prepare(SQL, planner="tcombined")
        result = session.execute_prepared(prepared, collect_feedback=True, trace=True)
        report = explain_analyze_report(prepared, result)
        assert "actual s" in report and "rows/s" in report
        scan_lines = [l for l in report.splitlines() if "Scan(" in l]
        assert scan_lines
        for line in scan_lines:
            columns = line.split()
            assert "-" not in columns[-3:-1], f"untimed operator in {line!r}"

    def test_untraced_report_shows_dashes(self, catalog):
        from repro.optimizer import explain_analyze_report

        session = Session(catalog)
        prepared = session.prepare(SQL, planner="tcombined")
        result = session.execute_prepared(prepared, collect_feedback=True)
        report = explain_analyze_report(prepared, result)
        assert "actual s" in report
        for line in report.splitlines():
            if "Scan(" in line:
                assert " - " in line  # the timing columns render as '-'


class TestSlowQueryLog:
    def _record(self, elapsed: float) -> SlowQueryRecord:
        return SlowQueryRecord(
            fingerprint="abc",
            planner="tcombined",
            elapsed_seconds=elapsed,
            planning_seconds=elapsed / 2,
            execution_seconds=elapsed / 2,
            rows=10,
            pages_read=4,
            pages_pruned=0,
            cache_hit=False,
            kernel_tier="numpy",
            shards=None,
        )

    def test_threshold_filters(self):
        log = SlowQueryLog(0.5)
        assert not log.observe(self._record(0.4))
        assert log.observe(self._record(0.6))
        assert len(log) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)

    def test_capacity_keeps_newest(self):
        log = SlowQueryLog(0.0, capacity=2)
        for elapsed in (1.0, 2.0, 3.0):
            log.observe(self._record(elapsed))
        assert [r.elapsed_seconds for r in log.records] == [2.0, 3.0]

    def test_broken_sink_never_fails_the_query(self):
        def sink(record):
            raise RuntimeError("sink down")

        log = SlowQueryLog(0.0, sink=sink)
        assert log.observe(self._record(1.0))
        assert len(log) == 1

    def test_record_serializes_to_one_json_line(self):
        text = self._record(1.0).as_json()
        assert "\n" not in text
        assert json.loads(text)["planner"] == "tcombined"

    def test_service_populates_the_log(self, catalog):
        sunk = []
        with QueryService(
            Session(catalog), slow_query_seconds=0.0, slow_query_sink=sunk.append
        ) as service:
            result = service.execute(SQL)
        assert len(service.slow_query_log) == 1
        (record,) = service.slow_query_log.records
        assert sunk == [record]
        assert record.rows == result.row_count
        assert record.planner == result.planner_name
        assert record.elapsed_seconds > 0.0
        assert record.pages_read == result.iostats.pages_read

    def test_service_without_threshold_has_no_log(self, catalog):
        with QueryService(Session(catalog)) as service:
            service.execute(SQL)
            assert service.slow_query_log is None


class TestTraceCli:
    def _dataset(self, tmp_path) -> str:
        root = tmp_path / "data"
        assert main(
            ["generate", "synthetic", "--out", str(root), "--table-size", "200"]
        ) == 0
        return str(root)

    def test_query_trace_writes_span_json(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        out_path = tmp_path / "trace.json"
        assert main(
            ["query", "--data", data, "--sql", SQL, "--trace", str(out_path)]
        ) == 0
        document = json.loads(out_path.read_text())
        assert document["spans"][0]["name"] == "query"
        assert document["operators"]

    def test_query_trace_chrome_format(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        out_path = tmp_path / "trace_chrome.json"
        assert main(
            [
                "query", "--data", data, "--sql", SQL,
                "--trace", str(out_path), "--trace-format", "chrome",
            ]
        ) == 0
        document = json.loads(out_path.read_text())
        assert {event["ph"] for event in document["traceEvents"]} == {"X"}
        assert any(event["name"] == "query" for event in document["traceEvents"])

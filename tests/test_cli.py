"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.storage.disk import load_catalog, save_catalog


@pytest.fixture()
def paper_data_dir(tmp_path, paper_catalog):
    """The paper's example catalog saved to disk for CLI commands."""
    root = tmp_path / "paper"
    save_catalog(paper_catalog, root)
    return str(root)


PAPER_SQL = (
    "SELECT t.title FROM title AS t "
    "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
    "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
    "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)"
)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "synthetic"])

    def test_query_rejects_unknown_planner(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data", "x", "--sql", "SELECT", "--planner", "nope"]
            )


class TestGenerate:
    def test_generate_synthetic(self, tmp_path, capsys):
        out = tmp_path / "synthetic"
        code = main(
            ["generate", "synthetic", "--out", str(out), "--table-size", "200", "--seed", "1"]
        )
        assert code == 0
        assert "wrote 3 tables" in capsys.readouterr().out
        catalog = load_catalog(out)
        assert set(catalog.table_names) == {"T0", "T1", "T2"}

    def test_generate_fuzz_schema(self, tmp_path, capsys):
        out = tmp_path / "fuzz"
        code = main(
            [
                "generate",
                "fuzz",
                "--out",
                str(out),
                "--table-size",
                "50",
                "--dimensions",
                "3",
            ]
        )
        assert code == 0
        catalog = load_catalog(out)
        assert set(catalog.table_names) == {"F", "D1", "D2", "D3"}

    def test_generate_imdb(self, tmp_path, capsys):
        out = tmp_path / "imdb"
        code = main(["generate", "imdb", "--out", str(out), "--scale", "0.01", "--seed", "2"])
        assert code == 0
        catalog = load_catalog(out)
        assert "title" in catalog and "movie_info_idx" in catalog


class TestQueryAndExplain:
    def test_query_prints_rows_and_timing(self, paper_data_dir, capsys):
        code = main(
            ["query", "--data", paper_data_dir, "--sql", PAPER_SQL, "--planner", "tcombined"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "The Dark Knight" in output
        assert "4 rows" in output
        assert "planner=tcombined" in output

    def test_query_with_metrics(self, paper_data_dir, capsys):
        code = main(["query", "--data", paper_data_dir, "--sql", PAPER_SQL, "--metrics"])
        assert code == 0
        output = capsys.readouterr().out
        assert "predicate_rows_evaluated" in output

    def test_query_max_rows_truncates(self, paper_data_dir, capsys):
        sql = "SELECT t.title FROM title AS t"
        code = main(["query", "--data", paper_data_dir, "--sql", sql, "--max-rows", "2"])
        assert code == 0
        assert "more rows" in capsys.readouterr().out

    def test_explain_prints_plan(self, paper_data_dir, capsys):
        code = main(
            ["explain", "--data", paper_data_dir, "--sql", PAPER_SQL, "--planner", "tpushdown"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Scan(title AS t)" in output
        assert "Join" in output

    def test_query_aggregate_sql(self, paper_data_dir, capsys):
        sql = (
            "SELECT t.production_year, COUNT(*) FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "GROUP BY t.production_year ORDER BY COUNT(*) DESC LIMIT 3"
        )
        code = main(["query", "--data", paper_data_dir, "--sql", sql])
        assert code == 0
        assert "COUNT(*)" in capsys.readouterr().out


class TestCompare:
    def test_compare_reports_speedups(self, paper_data_dir, capsys):
        code = main(
            [
                "compare",
                "--data",
                paper_data_dir,
                "--sql",
                PAPER_SQL,
                "--planners",
                "tcombined",
                "bdisj",
                "bypass",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "tcombined" in output and "bdisj" in output and "bypass" in output
        assert "speedup" in output


class TestFuzz:
    def test_fuzz_campaign_agrees(self, capsys):
        code = main(
            [
                "fuzz",
                "--queries",
                "2",
                "--seed",
                "11",
                "--table-size",
                "60",
                "--planners",
                "tcombined",
                "bdisj",
                "bypass",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "2/2 queries agreed" in output


class TestFigures:
    def test_figures_delegates(self, capsys):
        code = main(
            ["figures", "fig4a", "--quick"]
        )
        assert code == 0
        assert "selectivity" in capsys.readouterr().out.lower()


class TestSplitStatements:
    def test_splits_on_semicolons_and_drops_comments(self):
        from repro.cli import split_statements

        text = "-- a comment\nSELECT 1;\n\nSELECT 2 ;"
        assert split_statements(text) == ["SELECT 1", "SELECT 2"]

    def test_semicolon_inside_string_literal_is_preserved(self):
        from repro.cli import split_statements

        sql = "SELECT * FROM t AS t WHERE t.name LIKE '%;%'"
        assert split_statements(sql + ";" + sql) == [sql, sql]

    def test_escaped_quote_inside_literal(self):
        from repro.cli import split_statements

        sql = "SELECT * FROM t AS t WHERE t.name = 'it''s;fine'"
        assert split_statements(sql + ";") == [sql]

    def test_trailing_comment_after_terminator_is_not_a_statement(self):
        from repro.cli import split_statements

        assert split_statements("SELECT 1; -- warm-up\n") == ["SELECT 1"]
        assert split_statements("SELECT 1 -- inline note\n; SELECT 2") == [
            "SELECT 1",
            "SELECT 2",
        ]

    def test_scan_statements_keeps_unterminated_tail(self):
        from repro.cli import scan_statements

        statements, tail = scan_statements("SELECT 1; SELECT 2 WHERE x LIKE '%;%'")
        assert statements == ["SELECT 1"]
        assert tail.strip() == "SELECT 2 WHERE x LIKE '%;%'"


class TestServe:
    def _dataset(self, tmp_path):
        root = tmp_path / "data"
        assert main(
            ["generate", "synthetic", "--out", str(root), "--table-size", "120"]
        ) == 0
        return str(root)

    def test_serve_buffers_multiline_statement_until_terminator(
        self, tmp_path, capsys, monkeypatch
    ):
        import io

        data = self._dataset(tmp_path)
        capsys.readouterr()
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("SELECT T0.id FROM T0\nWHERE T0.A1 < 0.5;\n\\stats\n\\quit\n"),
        )
        assert main(["serve", "--data", data]) == 0
        out = capsys.readouterr().out
        assert "[plan cache miss | " in out
        assert "s elapsed]" in out
        assert "plan_cache" in out  # \stats table

    def test_serve_runs_unterminated_statement_at_eof(
        self, tmp_path, capsys, monkeypatch
    ):
        import io

        data = self._dataset(tmp_path)
        capsys.readouterr()
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("SELECT T0.id FROM T0 WHERE T0.A1 < 0.5")
        )
        assert main(["serve", "--data", data]) == 0
        assert "[plan cache miss | " in capsys.readouterr().out

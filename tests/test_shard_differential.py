"""Differential suite: sharded execution vs. serial vs. the oracle.

The acceptance bar for the scatter–gather engine is strict determinism:

* for every planner, at ``shards ∈ {1, 2, 4}`` × ``parallelism ∈ {1, 4}`` ×
  ``partitions ∈ {1, 3}``, with and without access paths, the output is
  **byte-identical** (same rows in the same order) to serial execution at
  the same partition count — and matches the naive oracle;
* merged execution metrics are identical to serial except for the
  coordinator-only ``shards_executed`` counter;
* merged IO statistics agree on the work done (``values_read``,
  ``sequential_scans``, ``selective_reads`` and total page accesses);
  only the hit/miss split may differ, because workers run private caches;
* ``shards=1`` is exactly the in-process path: no worker pool is created;
* aggregation and LIMIT pushdown never change the answer, whether or not
  they engage;
* a worker-side query error leaves the pool usable for the next query.
"""

from __future__ import annotations

import pytest

from repro.access.manager import ensure_access_manager
from repro.engine import shard
from repro.engine.metrics import ExecContext
from repro.engine.parallel import execute_plan
from repro.engine.partial_agg import aggregation_pushdown_supported
from repro.engine.session import Session
from repro.engine.shard import ShardExecutionError, ShardSpec, shard_pool
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.differential import DEFAULT_PLANNERS
from repro.testing.oracle import evaluate_oracle
from repro.testing.querygen import RandomQueryConfig, generate_random_query

#: Every planner of every execution model, plus the adaptive tmin planner.
ALL_PLANNERS = DEFAULT_PLANNERS + ("tmin",)

SHARD_COUNTS = (1, 2, 4)
PARALLELISM_LEVELS = (1, 4)
PARTITION_COUNTS = (1, 3)

QUERY_SEED = 23


def _strip_shards(metrics) -> dict:
    """Metrics dict without the coordinator-only shard counter."""
    counters = metrics.as_dict()
    counters.pop("shards_executed", None)
    return counters


def _catalog(with_indexes: bool):
    catalog = generate_random_catalog(
        RandomCatalogConfig(seed=5, num_dimensions=2, fact_rows=160, dimension_rows=120)
    )
    if with_indexes:
        manager = ensure_access_manager(catalog)
        manager.create_index("F", "id", kind="sorted")
        manager.create_index("F", "category", kind="bitmap")
        manager.create_index("D1", "fid", kind="sorted")
    return catalog


@pytest.fixture(scope="module")
def catalogs():
    return {True: _catalog(with_indexes=True), False: _catalog(with_indexes=False)}


@pytest.fixture(scope="module")
def sessions(catalogs):
    return {
        indexed: Session(catalogs[indexed], stats_sample_size=200, access_paths=indexed)
        for indexed in (True, False)
    }


@pytest.fixture(scope="module")
def workload(catalogs):
    query = generate_random_query(catalogs[False], RandomQueryConfig(seed=QUERY_SEED))
    expected = evaluate_oracle(catalogs[False], query)
    return query, expected


@pytest.mark.parametrize("indexed", (False, True), ids=("plain", "indexed"))
@pytest.mark.parametrize("planner", ALL_PLANNERS)
def test_sharded_byte_identical_to_serial(sessions, workload, planner, indexed):
    query, expected = workload
    session = sessions[indexed]
    for partitions in PARTITION_COUNTS:
        serial = session.execute(
            query, planner=planner, parallelism=1, partitions=partitions
        )
        assert serial.sorted_rows() == expected, (planner, partitions)
        serial_metrics = _strip_shards(serial.metrics)
        for parallelism in PARALLELISM_LEVELS:
            for shards in SHARD_COUNTS:
                result = session.execute(
                    query,
                    planner=planner,
                    parallelism=parallelism,
                    partitions=partitions,
                    shards=shards,
                )
                label = (planner, indexed, partitions, parallelism, shards)
                if planner == "tmin":
                    # tmin races every tagged candidate and keeps the
                    # wall-clock fastest, so *which* plan's row order wins is
                    # timing-dependent even without shards.  The guarantee is
                    # set-level: always the oracle answer.
                    assert result.sorted_rows() == expected, label
                    assert result.row_count == serial.row_count, label
                    continue
                # Byte-identical rows, identical plan choice.
                assert result.rows == serial.rows, label
                assert result.plan_description == serial.plan_description, label
                # Identical work counters (the shard counter is
                # coordinator-only and excluded by construction).
                assert _strip_shards(result.metrics) == serial_metrics, label
                # Identical IO *work*; only the hit/miss split may move,
                # because worker processes run private page caches.
                assert result.iostats.values_read == serial.iostats.values_read, label
                assert (
                    result.iostats.sequential_scans == serial.iostats.sequential_scans
                ), label
                assert (
                    result.iostats.selective_reads == serial.iostats.selective_reads
                ), label
                assert (
                    result.iostats.pages_read + result.iostats.pages_hit
                    == serial.iostats.pages_read + serial.iostats.pages_hit
                ), label


def test_shards_one_never_creates_a_pool(catalogs):
    """``shards=1`` must stay the exact in-process path."""
    shard.shutdown_shard_pools()
    session = Session(catalogs[False], stats_sample_size=200, shards=1)
    query = generate_random_query(catalogs[False], RandomQueryConfig(seed=3))
    result = session.execute(query, planner="tcombined", parallelism=2, partitions=4)
    assert result.metrics.shards_executed == 0
    assert shard._SHARD_POOLS == {}


def test_shard_counters_and_merge_accounting(sessions, workload):
    query, _expected = workload
    session = sessions[False]
    result = session.execute(
        query, planner="tcombined", parallelism=1, partitions=4, shards=2
    )
    assert result.metrics.shards_executed == 2
    assert result.metrics.morsels_executed == 4


AGGREGATE_SQLS = (
    # Exactly mergeable: COUNT, SUM/AVG over int, MIN/MAX over any type.
    (
        "SELECT f.category, COUNT(*), SUM(f.id), AVG(f.id), MIN(f.A1), MAX(f.category) "
        "FROM F AS f JOIN D1 AS d1 ON f.id = d1.fid "
        "WHERE (f.A1 > 0.2 AND d1.A2 < 0.9) OR (f.A2 > 0.7) GROUP BY f.category",
        True,
    ),
    # Float SUM is not exactly mergeable: stays on the gather path.
    (
        "SELECT f.category, SUM(f.A1) FROM F AS f "
        "WHERE (f.A1 > 0.2) OR (f.A3 < 0.4) GROUP BY f.category",
        False,
    ),
    # DISTINCT aggregates are never pushed.
    ("SELECT COUNT(DISTINCT f.category) FROM F AS f WHERE (f.A1 > 0.1) OR (f.A2 > 0.5)", False),
    # Global (no GROUP BY) aggregate over a near-empty match set.
    (
        "SELECT COUNT(*), SUM(f.id), MIN(f.A2) FROM F AS f "
        "WHERE (f.A1 > 0.999) OR (f.A2 > 0.9995)",
        True,
    ),
    # Zero matches anywhere: COUNT = 0 / NULL extremes on every path.
    ("SELECT COUNT(*), MAX(f.id) FROM F AS f WHERE (f.A1 > 2.0) OR (f.A2 > 2.0)", True),
    # Shaping after the fold: ORDER BY over the aggregated rows.
    (
        "SELECT f.category, COUNT(*) FROM F AS f WHERE (f.A1 > 0.3) OR (f.A2 > 0.3) "
        "GROUP BY f.category ORDER BY COUNT(*) DESC LIMIT 2",
        True,
    ),
)


@pytest.mark.parametrize("planner", ("tcombined", "bdisj", "bypass"))
def test_aggregate_pushdown_byte_identical(sessions, catalogs, planner):
    session = sessions[False]
    for sql, expect_push in AGGREGATE_SQLS:
        prepared = session.prepare(sql, planner="tcombined")
        assert (
            aggregation_pushdown_supported(prepared.query, catalogs[False]) == expect_push
        ), sql
        serial = session.execute(sql, planner=planner, parallelism=1, partitions=4)
        for shards in (2, 4):
            sharded = session.execute(
                sql, planner=planner, parallelism=1, partitions=4, shards=shards
            )
            assert sharded.rows == serial.rows, (planner, shards, sql)


def test_aggregate_pushdown_engages(sessions, catalogs):
    """The supported aggregate really is folded on the shards."""
    session = sessions[False]
    sql = AGGREGATE_SQLS[0][0]
    prepared = session.prepare(sql, planner="tcombined")
    context = ExecContext()
    execute_plan(
        prepared.kind,
        prepared.plan,
        prepared.snapshot,
        context,
        annotations=prepared.annotations,
        predicate_tree=prepared.predicate_tree,
        parallelism=1,
        partitions=4,
        shards=2,
        query=prepared.query,
    )
    assert context.aggregates_prefolded

    # The unsupported float SUM must not set the flag.
    context = ExecContext()
    prepared = session.prepare(AGGREGATE_SQLS[1][0], planner="tcombined")
    execute_plan(
        prepared.kind,
        prepared.plan,
        prepared.snapshot,
        context,
        annotations=prepared.annotations,
        predicate_tree=prepared.predicate_tree,
        parallelism=1,
        partitions=4,
        shards=2,
        query=prepared.query,
    )
    assert not context.aggregates_prefolded


def test_limit_pushdown_byte_identical(sessions):
    session = sessions[False]
    sql = (
        "SELECT f.id, f.category FROM F AS f "
        "WHERE (f.A1 > 0.2) OR (f.A2 > 0.6) LIMIT 7"
    )
    serial = session.execute(sql, planner="tcombined", parallelism=1, partitions=4)
    sharded = session.execute(
        sql, planner="tcombined", parallelism=1, partitions=4, shards=2
    )
    assert sharded.rows == serial.rows
    assert sharded.row_count == serial.row_count == 7

    # ORDER BY disables the prefix property: no pushdown, same answer.
    ordered = (
        "SELECT f.id FROM F AS f WHERE (f.A1 > 0.2) OR (f.A2 > 0.6) "
        "ORDER BY f.id DESC LIMIT 5"
    )
    serial = session.execute(ordered, planner="tcombined", parallelism=1, partitions=4)
    sharded = session.execute(
        ordered, planner="tcombined", parallelism=1, partitions=4, shards=2
    )
    assert sharded.rows == serial.rows


def test_worker_error_leaves_pool_usable(sessions, workload):
    """A query error inside a worker must not poison the pool."""
    query, _expected = workload
    session = sessions[False]
    good = session.execute(
        query, planner="tcombined", parallelism=1, partitions=4, shards=2
    )

    pool = shard_pool(2)
    catalog = session.catalog
    bogus = ShardSpec(
        kind="bogus-kind",
        plan=None,
        annotations=None,
        predicate_tree=None,
        three_valued=True,
        kernels=None,
        collect_feedback=False,
        feedback_excluded_aliases=frozenset(),
        scan_candidates={},
        partition_alias="f",
        partition_table="F",
        snapshot_version=catalog.version,
        table_versions={"F": catalog.table_version("F")},
        push_mode="none",
        query=None,
    )
    tables = {"F": catalog.get("F")}
    with pytest.raises(ShardExecutionError):
        pool.run(bogus, tables, [[(0, 0, 80)], [(1, 80, 160)]], 1)

    # Same pool object, next query succeeds with the same answer.
    assert shard_pool(2) is pool
    retry = session.execute(
        query, planner="tcombined", parallelism=1, partitions=4, shards=2
    )
    assert retry.rows == good.rows


def test_shard_pool_registry_shutdown(sessions, workload):
    """shutdown_shard_pools() empties the registry; pools recreate on demand."""
    query, _expected = workload
    session = sessions[False]
    session.execute(query, planner="tcombined", parallelism=1, partitions=4, shards=2)
    assert 2 in shard._SHARD_POOLS
    shard.shutdown_shard_pools()
    assert shard._SHARD_POOLS == {}
    result = session.execute(
        query, planner="tcombined", parallelism=1, partitions=4, shards=2
    )
    assert result.metrics.shards_executed == 2


def test_session_and_service_shard_knobs(catalogs, workload):
    """Session-level shards applies by default; the service overrides per call."""
    from repro.service import QueryService

    query, _expected = workload
    session = Session(catalogs[False], stats_sample_size=200, shards=2, partitions=4)
    serial_session = Session(catalogs[False], stats_sample_size=200, partitions=4)
    sharded = session.execute(query, planner="tcombined")
    serial = serial_session.execute(query, planner="tcombined")
    assert sharded.metrics.shards_executed == 2
    assert sharded.rows == serial.rows

    with QueryService(serial_session, shards=2, partitions=4) as service:
        served = service.execute(query, planner="tcombined")
        assert served.metrics.shards_executed == 2
        assert served.rows == serial.rows
        # The wrapped session keeps its own knob.
        assert serial_session.shards == 1


def test_invalid_shards_rejected(catalogs):
    with pytest.raises(ValueError):
        Session(catalogs[False], shards=0)
    session = Session(catalogs[False])
    query = generate_random_query(catalogs[False], RandomQueryConfig(seed=3))
    with pytest.raises(ValueError):
        session.execute(query, planner="tcombined", shards=0)

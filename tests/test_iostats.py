"""Unit tests for I/O accounting."""

from repro.storage.iostats import IOStats


class TestCounters:
    def test_initial_state_is_zero(self):
        stats = IOStats()
        assert stats.pages_read == 0
        assert stats.pages_hit == 0
        assert stats.values_read == 0

    def test_record_pages(self):
        stats = IOStats()
        stats.record_pages(misses=3, hits=2)
        assert stats.pages_read == 3
        assert stats.pages_hit == 2

    def test_record_sequential_scan(self):
        stats = IOStats()
        stats.record_sequential_scan(num_pages=7)
        assert stats.sequential_scans == 1
        assert stats.pages_read == 7

    def test_record_selective_read(self):
        stats = IOStats()
        stats.record_selective_read()
        assert stats.selective_reads == 1

    def test_record_values(self):
        stats = IOStats()
        stats.record_values(100)
        stats.record_values(50)
        assert stats.values_read == 150

    def test_reset(self):
        stats = IOStats()
        stats.record_pages(1, 1)
        stats.record_values(10)
        stats.reset()
        assert stats.as_dict() == {
            "pages_read": 0,
            "pages_hit": 0,
            "sequential_scans": 0,
            "selective_reads": 0,
            "values_read": 0,
        }


class TestSnapshots:
    def test_snapshot_is_independent(self):
        stats = IOStats()
        stats.record_values(5)
        snapshot = stats.snapshot()
        stats.record_values(5)
        assert snapshot.values_read == 5
        assert stats.values_read == 10

    def test_diff(self):
        stats = IOStats()
        stats.record_pages(2, 1)
        earlier = stats.snapshot()
        stats.record_pages(3, 4)
        delta = stats.diff(earlier)
        assert delta.pages_read == 3
        assert delta.pages_hit == 4

    def test_as_dict_keys(self):
        assert set(IOStats().as_dict()) == {
            "pages_read",
            "pages_hit",
            "sequential_scans",
            "selective_reads",
            "values_read",
        }

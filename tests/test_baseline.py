"""Unit tests for the traditional execution operators and planners."""

import numpy as np
import pytest

from repro.baseline.operators import FilterOperator, HashJoinOperator, ScanOperator, UnionOperator
from repro.baseline.planners import BDisjPlanner, BPushConjPlanner
from repro.baseline.relation import Relation
from repro.core.planner.base import PlannerContext
from repro.engine.metrics import ExecContext
from repro.expr.builders import and_, col, lit, or_
from repro.plan.logical import JoinNode, ProjectNode, TableScanNode, collect_filters
from repro.plan.query import JoinCondition, Query


@pytest.fixture
def title_relation(paper_catalog):
    return Relation.from_base_table("t", paper_catalog.get("title"))


@pytest.fixture
def mi_relation(paper_catalog):
    return Relation.from_base_table("mi_idx", paper_catalog.get("movie_info_idx"))


class TestRelation:
    def test_from_base_table(self, title_relation):
        assert title_relation.num_rows == 7
        assert title_relation.aliases == ["t"]

    def test_take(self, title_relation):
        subset = title_relation.take(np.array([1, 3]))
        assert subset.num_rows == 2
        assert subset.indices["t"].tolist() == [1, 3]

    def test_row_keys_shape(self, title_relation):
        keys = title_relation.row_keys()
        assert keys.shape == (7, 1)

    def test_mismatched_lengths_rejected(self, paper_catalog):
        table = paper_catalog.get("title")
        with pytest.raises(ValueError):
            Relation({"a": table, "b": table}, {"a": np.array([0]), "b": np.array([0, 1])})


class TestOperators:
    def test_scan(self, paper_catalog):
        context = ExecContext()
        relation = ScanOperator("t", paper_catalog.get("title")).execute(context)
        assert relation.num_rows == 7
        assert context.metrics.tuples_materialized == 7

    def test_filter_keeps_only_true_rows(self, title_relation):
        context = ExecContext()
        predicate = col("t", "production_year") > lit(2000)
        output = FilterOperator(predicate).execute(title_relation, context)
        assert output.num_rows == 3
        assert context.metrics.predicate_rows_evaluated == 7

    def test_filter_on_empty_relation(self, title_relation):
        empty = title_relation.take(np.array([], dtype=np.int64))
        output = FilterOperator(col("t", "production_year") > lit(2000)).execute(
            empty, ExecContext()
        )
        assert output.num_rows == 0

    def test_filter_missing_alias_raises(self, mi_relation):
        with pytest.raises(ValueError):
            FilterOperator(col("t", "production_year") > lit(2000)).execute(
                mi_relation, ExecContext()
            )

    def test_hash_join(self, title_relation, mi_relation):
        context = ExecContext()
        condition = JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))
        output = HashJoinOperator([condition]).execute(title_relation, mi_relation, context)
        assert output.num_rows == 6  # every movie_info_idx row has a matching title
        assert set(output.aliases) == {"t", "mi_idx"}
        assert context.metrics.join_output_rows == 6

    def test_hash_join_with_empty_side(self, title_relation, mi_relation):
        empty = mi_relation.take(np.array([], dtype=np.int64))
        condition = JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))
        output = HashJoinOperator([condition]).execute(title_relation, empty, ExecContext())
        assert output.num_rows == 0

    def test_hash_join_requires_condition(self):
        with pytest.raises(ValueError):
            HashJoinOperator([])

    def test_union_deduplicates(self, title_relation):
        first = title_relation.take(np.array([0, 1, 2]))
        second = title_relation.take(np.array([2, 3]))
        context = ExecContext()
        output = UnionOperator().execute([first, second], context)
        assert output.num_rows == 4
        assert context.metrics.union_input_rows == 5
        assert context.metrics.union_output_rows == 4

    def test_union_requires_same_alias_sets(self, title_relation, mi_relation):
        with pytest.raises(ValueError, match="alias sets"):
            UnionOperator().execute([title_relation, mi_relation], ExecContext())

    def test_union_of_nothing_raises(self):
        with pytest.raises(ValueError):
            UnionOperator().execute([], ExecContext())


class TestBDisjPlanner:
    def test_one_subplan_per_root_clause(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        plan = BDisjPlanner(context).plan()
        assert plan.planner_name == "bdisj"
        assert len(plan.subplans) == 2
        assert plan.needs_union

    def test_clause_predicates_pushed_to_their_tables(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        plan = BDisjPlanner(context).plan()
        for subplan in plan.subplans:
            filters = collect_filters(subplan)
            # Each clause has one predicate per table, both pushed below the join.
            assert len(filters) == 2
            for filter_node in filters:
                assert isinstance(filter_node.child, TableScanNode)

    def test_non_or_root_gives_single_subplan(self, paper_catalog):
        query = Query(
            tables={"t": "title"},
            predicate=col("t", "production_year") > lit(2000),
        )
        context = PlannerContext.for_query(query, paper_catalog)
        plan = BDisjPlanner(context).plan()
        assert len(plan.subplans) == 1
        assert not plan.needs_union

    def test_no_predicate(self, paper_catalog, paper_query):
        query = Query(
            tables=dict(paper_query.tables),
            join_conditions=list(paper_query.join_conditions),
            predicate=None,
        )
        context = PlannerContext.for_query(query, paper_catalog)
        plan = BDisjPlanner(context).plan()
        assert len(plan.subplans) == 1


class TestBPushConjPlanner:
    def test_or_root_cannot_push_anything(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        plan = BPushConjPlanner(context).plan()
        assert len(plan.subplans) == 1
        subplan = plan.subplans[0]
        # The whole disjunction sits above the join as a single filter.
        filters = collect_filters(subplan)
        assert len(filters) == 1
        assert isinstance(filters[0].child, JoinNode)

    def test_and_root_pushes_single_table_clauses(self, paper_catalog):
        predicate = and_(
            col("t", "production_year") > lit(2000),
            or_(col("t", "production_year") > lit(1980), col("mi_idx", "info") > lit(8.0)),
        )
        query = Query(
            tables={"t": "title", "mi_idx": "movie_info_idx"},
            join_conditions=[JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))],
            predicate=predicate,
        )
        context = PlannerContext.for_query(query, paper_catalog)
        plan = BPushConjPlanner(context).plan()
        filters = collect_filters(plan.subplans[0])
        pushed = [f for f in filters if isinstance(f.child, TableScanNode)]
        unpushed = [f for f in filters if isinstance(f.child, JoinNode)]
        assert len(pushed) == 1
        assert len(unpushed) == 1

    def test_projection_root(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        plan = BPushConjPlanner(context).plan()
        assert isinstance(plan.subplans[0], ProjectNode)

"""Unit tests for three-valued logic kernels."""

import numpy as np
import pytest

from repro.expr import three_valued as tv


def array(*values):
    return np.array([int(v) for v in values], dtype=np.uint8)


class TestScalars:
    def test_truth_value_str(self):
        assert str(tv.TRUE) == "T"
        assert str(tv.FALSE) == "F"
        assert str(tv.UNKNOWN) == "U"

    def test_from_bool(self):
        assert tv.TruthValue.from_bool(True) is tv.TRUE
        assert tv.TruthValue.from_bool(False) is tv.FALSE

    @pytest.mark.parametrize(
        "value, expected",
        [(tv.TRUE, tv.FALSE), (tv.FALSE, tv.TRUE), (tv.UNKNOWN, tv.UNKNOWN)],
    )
    def test_scalar_not(self, value, expected):
        assert tv.scalar_not(value) is expected

    @pytest.mark.parametrize(
        "left, right, expected",
        [
            (tv.TRUE, tv.TRUE, tv.TRUE),
            (tv.TRUE, tv.FALSE, tv.FALSE),
            (tv.FALSE, tv.UNKNOWN, tv.FALSE),
            (tv.TRUE, tv.UNKNOWN, tv.UNKNOWN),
            (tv.UNKNOWN, tv.UNKNOWN, tv.UNKNOWN),
        ],
    )
    def test_scalar_and(self, left, right, expected):
        assert tv.scalar_and(left, right) is expected
        assert tv.scalar_and(right, left) is expected

    @pytest.mark.parametrize(
        "left, right, expected",
        [
            (tv.TRUE, tv.FALSE, tv.TRUE),
            (tv.FALSE, tv.FALSE, tv.FALSE),
            (tv.TRUE, tv.UNKNOWN, tv.TRUE),
            (tv.FALSE, tv.UNKNOWN, tv.UNKNOWN),
            (tv.UNKNOWN, tv.UNKNOWN, tv.UNKNOWN),
        ],
    )
    def test_scalar_or(self, left, right, expected):
        assert tv.scalar_or(left, right) is expected
        assert tv.scalar_or(right, left) is expected


class TestArrays:
    def test_from_bool_array(self):
        result = tv.from_bool_array(np.array([True, False]))
        assert list(result) == [int(tv.TRUE), int(tv.FALSE)]

    def test_from_bool_array_with_nulls(self):
        result = tv.from_bool_array(np.array([True, False]), np.array([False, True]))
        assert list(result) == [int(tv.TRUE), int(tv.UNKNOWN)]

    def test_predicates(self):
        values = array(tv.TRUE, tv.FALSE, tv.UNKNOWN)
        assert list(tv.is_true(values)) == [True, False, False]
        assert list(tv.is_false(values)) == [False, True, False]
        assert list(tv.is_unknown(values)) == [False, False, True]

    def test_logical_not(self):
        values = array(tv.TRUE, tv.FALSE, tv.UNKNOWN)
        assert list(tv.logical_not(values)) == [int(tv.FALSE), int(tv.TRUE), int(tv.UNKNOWN)]

    def test_logical_and_matches_scalar_table(self):
        domain = [tv.TRUE, tv.FALSE, tv.UNKNOWN]
        for left in domain:
            for right in domain:
                result = tv.logical_and(array(left), array(right))
                assert result[0] == int(tv.scalar_and(left, right))

    def test_logical_or_matches_scalar_table(self):
        domain = [tv.TRUE, tv.FALSE, tv.UNKNOWN]
        for left in domain:
            for right in domain:
                result = tv.logical_or(array(left), array(right))
                assert result[0] == int(tv.scalar_or(left, right))

    def test_and_all(self):
        result = tv.and_all([array(tv.TRUE), array(tv.UNKNOWN), array(tv.TRUE)])
        assert result[0] == int(tv.UNKNOWN)

    def test_or_all(self):
        result = tv.or_all([array(tv.FALSE), array(tv.UNKNOWN), array(tv.TRUE)])
        assert result[0] == int(tv.TRUE)

    def test_and_all_empty_raises(self):
        with pytest.raises(ValueError):
            tv.and_all([])

    def test_or_all_empty_raises(self):
        with pytest.raises(ValueError):
            tv.or_all([])

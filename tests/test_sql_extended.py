"""Tests for the extended SQL surface: DISTINCT, aggregates, GROUP BY, ORDER BY, LIMIT."""

from __future__ import annotations

import pytest

from repro import AggregateFunction, parse_query
from repro.engine.session import ALL_PLANNERS
from repro.sql.parser import ParseError


class TestParsing:
    def test_select_distinct(self):
        query = parse_query("SELECT DISTINCT t.year FROM title AS t")
        assert query.distinct
        assert [column.key() for column in query.select] == ["t.year"]

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM title AS t")
        assert len(query.aggregates) == 1
        assert query.aggregates[0].function is AggregateFunction.COUNT
        assert query.aggregates[0].argument is None
        assert query.select == []

    def test_aggregates_with_group_by(self):
        query = parse_query(
            "SELECT t.year, COUNT(*), MIN(t.title), AVG(t.score) FROM title AS t "
            "GROUP BY t.year"
        )
        assert [column.key() for column in query.group_by] == ["t.year"]
        assert [aggregate.label() for aggregate in query.aggregates] == [
            "COUNT(*)",
            "MIN(t.title)",
            "AVG(t.score)",
        ]
        # Physical select covers group key and aggregate arguments.
        assert [column.key() for column in query.select] == ["t.year", "t.title", "t.score"]

    def test_count_distinct_column(self):
        query = parse_query("SELECT COUNT(DISTINCT t.year) FROM title AS t")
        assert query.aggregates[0].distinct
        assert query.aggregates[0].label() == "COUNT(DISTINCT t.year)"

    def test_order_by_and_limit(self):
        query = parse_query(
            "SELECT t.title, t.year FROM title AS t ORDER BY t.year DESC, t.title LIMIT 10"
        )
        assert [(item.key, item.descending) for item in query.order_by] == [
            ("t.year", True),
            ("t.title", False),
        ]
        assert query.limit == 10

    def test_order_by_aggregate(self):
        query = parse_query(
            "SELECT t.year, COUNT(*) FROM title AS t GROUP BY t.year "
            "ORDER BY COUNT(*) DESC LIMIT 5"
        )
        assert query.order_by[0].key == "COUNT(*)"
        assert query.order_by[0].descending

    def test_full_query_with_where_and_shaping(self):
        query = parse_query(
            "SELECT t.year, COUNT(*) FROM title AS t "
            "JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
            "WHERE (t.year > 2000 AND mi.info > 7.0) OR (t.year > 1980 AND mi.info > 8.0) "
            "GROUP BY t.year ORDER BY t.year ASC LIMIT 3"
        )
        assert query.predicate is not None
        assert query.limit == 3
        assert query.has_output_shaping

    def test_select_column_not_in_group_by_rejected(self):
        with pytest.raises(ParseError, match="GROUP BY"):
            parse_query("SELECT t.title, COUNT(*) FROM title AS t GROUP BY t.year")

    def test_order_by_column_not_selected_rejected(self):
        with pytest.raises(ParseError, match="ORDER BY"):
            parse_query("SELECT t.title FROM title AS t ORDER BY t.year")

    def test_order_by_unselected_aggregate_rejected(self):
        with pytest.raises(ParseError, match="ORDER BY"):
            parse_query(
                "SELECT t.year, COUNT(*) FROM title AS t GROUP BY t.year ORDER BY SUM(t.id)"
            )

    def test_order_by_allowed_with_select_star(self):
        query = parse_query("SELECT * FROM title AS t ORDER BY t.year LIMIT 2")
        assert query.order_by[0].key == "t.year"

    def test_sum_requires_column(self):
        with pytest.raises(ParseError):
            parse_query("SELECT SUM(*) FROM title AS t")

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError, match="integer"):
            parse_query("SELECT * FROM title AS t LIMIT 2.5")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ValueError):
            parse_query("SELECT t.year FROM title AS t GROUP BY t.year")


class TestExecution:
    @pytest.mark.parametrize("planner", sorted(ALL_PLANNERS))
    def test_count_star_matches_plain_row_count(self, paper_session, paper_query_sql, planner):
        plain = paper_session.execute(paper_query_sql, planner=planner)
        counted = paper_session.execute(
            "SELECT COUNT(*) FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
            "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)",
            planner=planner,
        )
        assert counted.column_names == ["COUNT(*)"]
        assert counted.rows[0][0] == plain.row_count

    def test_group_by_year_counts(self, paper_session):
        result = paper_session.execute(
            "SELECT t.production_year, COUNT(*) FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
            "   OR (t.production_year > 1980 AND mi_idx.info > 8.0) "
            "GROUP BY t.production_year ORDER BY t.production_year"
        )
        assert result.column_names == ["t.production_year", "COUNT(*)"]
        assert result.rows == [(1994, 2), (2008, 1), (2009, 1)]

    def test_min_max_aggregates(self, paper_session):
        result = paper_session.execute(
            "SELECT MIN(t.production_year), MAX(mi_idx.info) FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
            "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)"
        )
        assert result.rows == [(1994, 9.3)]

    def test_order_by_limit_top_k(self, paper_session):
        result = paper_session.execute(
            "SELECT t.title, mi_idx.info FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "ORDER BY mi_idx.info DESC LIMIT 2"
        )
        assert [row[0] for row in result.rows] == ["The Shawshank Redemption", "The Godfather"]

    def test_distinct_removes_duplicates(self, paper_session):
        with_duplicates = paper_session.execute(
            "SELECT t.production_year FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id"
        )
        deduplicated = paper_session.execute(
            "SELECT DISTINCT t.production_year FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id"
        )
        assert deduplicated.row_count < with_duplicates.row_count
        assert deduplicated.row_count == len(
            {row[0] for row in with_duplicates.rows}
        )

    def test_shaping_consistent_across_planners(self, paper_session):
        sql = (
            "SELECT t.production_year, COUNT(*) FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
            "   OR (t.production_year > 1980 AND mi_idx.info > 8.0) "
            "GROUP BY t.production_year ORDER BY COUNT(*) DESC, t.production_year"
        )
        results = {
            planner: paper_session.execute(sql, planner=planner).rows
            for planner in ("tcombined", "bdisj", "bpushconj", "bypass")
        }
        reference = results["tcombined"]
        assert all(rows == reference for rows in results.values())

    def test_count_distinct_execution(self, paper_session):
        result = paper_session.execute(
            "SELECT COUNT(DISTINCT t.production_year) FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id "
            "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
            "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)"
        )
        assert result.rows == [(3,)]

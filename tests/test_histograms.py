"""Tests for equi-depth histograms and histogram-based selectivity estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, Column, Session, Table
from repro.expr.builders import and_, between, col, ilike, lit, or_
from repro.plan.query import Query
from repro.stats.histograms import EquiDepthHistogram, HistogramSelectivityEstimator
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query

from tests.conftest import PAPER_QUERY_MATCHES, PAPER_QUERY_SQL


def _uniform_column(rows: int = 2_000, seed: int = 0) -> Column:
    rng = np.random.default_rng(seed)
    return Column("x", rng.random(rows))


class TestEquiDepthHistogram:
    def test_bucket_fractions_sum_to_one(self):
        histogram = EquiDepthHistogram.from_column(_uniform_column())
        assert sum(bucket.fraction for bucket in histogram.buckets) == pytest.approx(1.0)
        assert histogram.null_fraction == 0.0

    def test_range_estimate_on_uniform_data(self):
        histogram = EquiDepthHistogram.from_column(_uniform_column())
        assert histogram.estimate_range(0.0, 0.5) == pytest.approx(0.5, abs=0.05)
        assert histogram.estimate_range(0.2, 0.3) == pytest.approx(0.1, abs=0.05)

    def test_comparison_estimates(self):
        histogram = EquiDepthHistogram.from_column(_uniform_column())
        assert histogram.estimate_comparison("<", 0.25) == pytest.approx(0.25, abs=0.05)
        assert histogram.estimate_comparison(">", 0.75) == pytest.approx(0.25, abs=0.05)
        assert 0.0 <= histogram.estimate_comparison("=", 0.5) <= 0.05

    def test_skewed_data_gets_fine_buckets_in_dense_region(self):
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.random(1_900) * 0.1, rng.random(100) * 0.9 + 0.1])
        histogram = EquiDepthHistogram(values, np.zeros(2_000, dtype=np.bool_))
        # 95% of rows are below 0.1; the histogram should know that.
        assert histogram.estimate_comparison("<", 0.1) == pytest.approx(0.95, abs=0.05)

    def test_null_fraction_excluded_from_buckets(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        nulls = np.array([False, False, True, True])
        histogram = EquiDepthHistogram(values, nulls, num_buckets=2)
        assert histogram.null_fraction == pytest.approx(0.5)
        assert sum(bucket.fraction for bucket in histogram.buckets) == pytest.approx(0.5)

    def test_empty_and_all_null_columns(self):
        empty = EquiDepthHistogram(np.empty(0), np.empty(0, dtype=np.bool_))
        assert empty.estimate_range(0.0, 1.0) == 0.0
        all_null = EquiDepthHistogram(np.zeros(4), np.ones(4, dtype=np.bool_))
        assert all_null.estimate_comparison("<", 10.0) == 0.0

    def test_not_equal_estimate(self):
        histogram = EquiDepthHistogram.from_column(_uniform_column())
        assert histogram.estimate_comparison("!=", 0.5) == pytest.approx(1.0, abs=0.05)

    def test_string_column_rejected(self):
        column = Column("s", ["a", "b"])
        with pytest.raises(ValueError, match="numeric"):
            EquiDepthHistogram.from_column(column)

    def test_invalid_operator_rejected(self):
        histogram = EquiDepthHistogram.from_column(_uniform_column(rows=50))
        with pytest.raises(ValueError):
            histogram.estimate_comparison("~", 0.5)

    def test_zero_buckets_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram(np.array([1.0]), np.array([False]), num_buckets=0)

    @settings(max_examples=25, deadline=None)
    @given(
        low=st.floats(min_value=0.0, max_value=1.0),
        high=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_range_estimates_are_valid_fractions(self, low, high):
        histogram = EquiDepthHistogram.from_column(_uniform_column(rows=500, seed=3))
        estimate = histogram.estimate_range(min(low, high), max(low, high))
        assert 0.0 <= estimate <= 1.0 + 1e-9


class TestHistogramSelectivityEstimator:
    @pytest.fixture(scope="class")
    def catalog_and_query(self):
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=2_000, seed=11))
        query = make_dnf_query(num_root_clauses=2, selectivity=0.2)
        return catalog, query

    def test_simple_comparison_close_to_truth(self, catalog_and_query):
        catalog, query = catalog_and_query
        estimator = HistogramSelectivityEstimator(catalog, query)
        predicate = col("T1", "A1") < lit(0.2)
        assert estimator.selectivity(predicate) == pytest.approx(0.2, abs=0.05)

    def test_between_close_to_truth(self, catalog_and_query):
        catalog, query = catalog_and_query
        estimator = HistogramSelectivityEstimator(catalog, query)
        predicate = between(col("T1", "A1"), 0.3, 0.6)
        assert estimator.selectivity(predicate) == pytest.approx(0.3, abs=0.06)

    def test_flipped_literal_comparison(self, catalog_and_query):
        catalog, query = catalog_and_query
        estimator = HistogramSelectivityEstimator(catalog, query)
        predicate = lit(0.8) < col("T1", "A1")
        assert estimator.selectivity(predicate) == pytest.approx(0.2, abs=0.05)

    def test_composite_expressions_use_independence(self, catalog_and_query):
        catalog, query = catalog_and_query
        estimator = HistogramSelectivityEstimator(catalog, query)
        conjunct = and_(col("T1", "A1") < lit(0.5), col("T1", "A2") < lit(0.5))
        disjunct = or_(col("T1", "A1") < lit(0.5), col("T1", "A2") < lit(0.5))
        assert estimator.selectivity(conjunct) == pytest.approx(0.25, abs=0.07)
        assert estimator.selectivity(disjunct) == pytest.approx(0.75, abs=0.07)

    def test_non_numeric_predicate_falls_back_to_measurement(self):
        catalog = Catalog(
            [
                Table.from_dict(
                    "t", {"id": [1, 2, 3, 4], "name": ["alpha", "beta", "gamma", "delta"]}
                )
            ]
        )
        query = Query(tables={"t": "t"}, predicate=ilike(col("t", "name"), "%a%"))
        estimator = HistogramSelectivityEstimator(catalog, query)
        measured = estimator.selectivity(ilike(col("t", "name"), "%a%"))
        assert measured == pytest.approx(1.0)

    def test_session_histogram_mode_same_answers(self):
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=800, seed=4))
        query = make_dnf_query(num_root_clauses=2, selectivity=0.3)
        measured = Session(catalog, stats_sample_size=800).execute(query)
        histogram = Session(
            catalog, stats_sample_size=800, selectivity_mode="histogram"
        ).execute(query)
        assert histogram.sorted_rows() == measured.sorted_rows()

    def test_session_histogram_mode_paper_query(self, paper_catalog):
        session = Session(paper_catalog, selectivity_mode="histogram")
        result = session.execute(PAPER_QUERY_SQL)
        assert {row[0] for row in result.rows} == PAPER_QUERY_MATCHES

    def test_unknown_selectivity_mode_rejected(self, paper_catalog):
        session = Session(paper_catalog, selectivity_mode="bogus")
        with pytest.raises(ValueError, match="selectivity_mode"):
            session.execute(PAPER_QUERY_SQL)

"""Tests for the bypass execution model (repro.bypass)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Session, Table
from repro.baseline.relation import Relation
from repro.bypass.executor import BypassExecutor
from repro.bypass.operators import (
    BypassFilterOperator,
    BypassJoinOperator,
    BypassProjectOperator,
    BypassScanOperator,
)
from repro.bypass.planner import BypassPlanner
from repro.bypass.streams import BypassStream, StreamSet
from repro.core.planner.base import PlannerContext
from repro.core.predtree import PredicateTree
from repro.core.tags import Tag
from repro.engine.metrics import ExecContext
from repro.expr.builders import and_, col, lit, or_
from repro.expr.three_valued import FALSE, TRUE
from repro.plan.query import Query
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query

from tests.conftest import PAPER_QUERY_MATCHES


# --------------------------------------------------------------------------- #
# Streams
# --------------------------------------------------------------------------- #
class TestStreams:
    def test_stream_from_base_table(self, paper_catalog):
        stream = BypassStream.from_base_table("t", paper_catalog.get("title"))
        assert stream.tag == Tag.empty()
        assert stream.num_rows == paper_catalog.get("title").num_rows
        assert stream.aliases == ["t"]

    def test_take_produces_subset_with_new_tag(self, paper_catalog):
        stream = BypassStream.from_base_table("t", paper_catalog.get("title"))
        tag = Tag({"(t.production_year > 2000)": TRUE})
        subset = stream.take(np.array([0, 2], dtype=np.int64), tag)
        assert subset.num_rows == 2
        assert subset.tag == tag
        # The original stream is unchanged.
        assert stream.num_rows == 7

    def test_stream_set_merges_same_tag(self, paper_catalog):
        table = paper_catalog.get("title")
        base = BypassStream.from_base_table("t", table)
        tag = Tag({"(t.production_year > 2000)": TRUE})
        first = base.take(np.array([0, 1], dtype=np.int64), tag)
        second = base.take(np.array([6], dtype=np.int64), tag)
        streams = StreamSet([first, second])
        assert streams.num_streams == 1
        assert streams.total_rows == 3

    def test_stream_set_keeps_distinct_tags_separate(self, paper_catalog):
        table = paper_catalog.get("title")
        base = BypassStream.from_base_table("t", table)
        true_tag = Tag({"(t.production_year > 2000)": TRUE})
        false_tag = Tag({"(t.production_year > 2000)": FALSE})
        streams = StreamSet(
            [
                base.take(np.array([0], dtype=np.int64), true_tag),
                base.take(np.array([2], dtype=np.int64), false_tag),
            ]
        )
        assert streams.num_streams == 2
        assert set(map(repr, streams.tags())) == {repr(true_tag), repr(false_tag)}

    def test_stream_set_drops_empty_streams(self, paper_catalog):
        table = paper_catalog.get("title")
        base = BypassStream.from_base_table("t", table)
        empty = base.take(np.empty(0, dtype=np.int64), Tag.empty())
        streams = StreamSet([empty])
        assert streams.num_streams == 0
        assert not streams

    def test_merge_rejects_different_tags(self, paper_catalog):
        from repro.bypass.streams import _merge_streams

        table = paper_catalog.get("title")
        base = BypassStream.from_base_table("t", table)
        first = base.take(np.array([0], dtype=np.int64), Tag({"a": TRUE}))
        second = base.take(np.array([1], dtype=np.int64), Tag({"a": FALSE}))
        with pytest.raises(ValueError):
            _merge_streams(first, second)


# --------------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------------- #
def _paper_tree(paper_query: Query) -> PredicateTree:
    return PredicateTree(paper_query.predicate)


class TestBypassFilter:
    def test_filter_splits_true_false(self, paper_catalog, paper_query):
        tree = _paper_tree(paper_query)
        context = ExecContext()
        scan = BypassScanOperator("t", paper_catalog.get("title")).execute(context)
        predicate = col("t", "production_year") > lit(2000)
        output = BypassFilterOperator(predicate, tree).execute(scan, context)
        # Both streams survive: the false stream may still satisfy the other clause.
        assert output.num_streams == 2
        assert output.total_rows == 7

    def test_second_filter_drops_refuted_stream(self, paper_catalog, paper_query):
        tree = _paper_tree(paper_query)
        context = ExecContext()
        streams = BypassScanOperator("t", paper_catalog.get("title")).execute(context)
        streams = BypassFilterOperator(col("t", "production_year") > lit(2000), tree).execute(
            streams, context
        )
        streams = BypassFilterOperator(col("t", "production_year") > lit(1980), tree).execute(
            streams, context
        )
        # Movies from 1972 fail both year predicates and are dropped entirely.
        assert streams.total_rows == 6

    def test_filter_bypasses_stream_that_satisfies_root(self, paper_catalog):
        # Single-table query: year > 2000 OR year > 1980.
        predicate = or_(
            col("t", "production_year") > lit(2000),
            col("t", "production_year") > lit(1980),
        )
        tree = PredicateTree(predicate)
        context = ExecContext()
        streams = BypassScanOperator("t", paper_catalog.get("title")).execute(context)
        streams = BypassFilterOperator(col("t", "production_year") > lit(2000), tree).execute(
            streams, context
        )
        evaluations_before = context.metrics.predicate_evaluations
        streams = BypassFilterOperator(col("t", "production_year") > lit(1980), tree).execute(
            streams, context
        )
        # Only the stream that failed the first predicate is re-evaluated.
        assert context.metrics.predicate_evaluations == evaluations_before + 1

    def test_filter_skips_already_assigned_predicate(self, paper_catalog):
        predicate = and_(
            col("t", "production_year") > lit(2000),
            col("t", "production_year") < lit(2010),
        )
        tree = PredicateTree(predicate)
        context = ExecContext()
        streams = BypassScanOperator("t", paper_catalog.get("title")).execute(context)
        first = BypassFilterOperator(col("t", "production_year") > lit(2000), tree)
        streams = first.execute(streams, context)
        evaluations_before = context.metrics.predicate_evaluations
        # Re-applying the same predicate does not evaluate anything again.
        streams = first.execute(streams, context)
        assert context.metrics.predicate_evaluations == evaluations_before

    def test_filter_missing_alias_raises(self, paper_catalog, paper_query):
        tree = _paper_tree(paper_query)
        context = ExecContext()
        streams = BypassScanOperator("t", paper_catalog.get("title")).execute(context)
        bad_filter = BypassFilterOperator(col("mi_idx", "info") > lit(8.0), tree)
        with pytest.raises(ValueError, match="aliases"):
            bad_filter.execute(streams, context)


class TestBypassJoin:
    def test_join_pairs_build_separate_hash_tables(self, paper_catalog, paper_query):
        tree = _paper_tree(paper_query)
        context = ExecContext()
        left = BypassScanOperator("t", paper_catalog.get("title")).execute(context)
        left = BypassFilterOperator(col("t", "production_year") > lit(2000), tree).execute(
            left, context
        )
        left = BypassFilterOperator(col("t", "production_year") > lit(1980), tree).execute(
            left, context
        )
        right = BypassScanOperator("mi_idx", paper_catalog.get("movie_info_idx")).execute(context)
        right = BypassFilterOperator(col("mi_idx", "info") > lit(8.0), tree).execute(
            right, context
        )
        right = BypassFilterOperator(col("mi_idx", "info") > lit(7.0), tree).execute(
            right, context
        )
        join = BypassJoinOperator(paper_query.join_conditions, tree)
        output = join.execute(left, right, context)
        # Three viable pairings (as in the paper's Figure 1), each with its own
        # hash table; only pairings that produce tuples create output streams.
        assert context.metrics.hash_tables_built == 3
        assert output.total_rows == 4

    def test_join_skips_refuted_pairings(self, paper_catalog, paper_query):
        tree = _paper_tree(paper_query)
        context = ExecContext()
        join = BypassJoinOperator(paper_query.join_conditions, tree)

        title = paper_catalog.get("title")
        info = paper_catalog.get("movie_info_idx")
        left_tag = Tag(
            {
                "(t.production_year > 2000)": FALSE,
                "(t.production_year > 1980)": TRUE,
            }
        )
        right_tag = Tag(
            {
                "(mi_idx.info > 8.0)": FALSE,
                "(mi_idx.info > 7.0)": TRUE,
            }
        )
        left = StreamSet(
            [BypassStream(left_tag, Relation.from_base_table("t", title))]
        )
        right = StreamSet(
            [BypassStream(right_tag, Relation.from_base_table("mi_idx", info))]
        )
        output = join.execute(left, right, context)
        assert output.num_streams == 0
        assert context.metrics.hash_tables_built == 0

    def test_join_requires_conditions(self, paper_query):
        with pytest.raises(ValueError):
            BypassJoinOperator([], None)


class TestBypassProject:
    def test_project_accepts_only_satisfying_streams(self, paper_catalog, paper_query):
        tree = _paper_tree(paper_query)
        context = ExecContext()
        title = paper_catalog.get("title")
        satisfied = Tag({tree.root_key: TRUE})
        refuted = Tag({tree.root_key: FALSE})
        streams = StreamSet(
            [
                BypassStream(satisfied, Relation.from_base_table("t", title)),
                BypassStream(refuted, Relation.from_base_table("t", title)),
            ]
        )
        project = BypassProjectOperator(tree, [col("t", "title")])
        output = project.execute(streams, context)
        assert output.row_count == title.num_rows

    def test_project_evaluates_residual_for_undetermined_streams(self, paper_catalog):
        predicate = col("t", "production_year") > lit(2000)
        tree = PredicateTree(predicate)
        context = ExecContext()
        title = paper_catalog.get("title")
        streams = StreamSet(
            [BypassStream(Tag.empty(), Relation.from_base_table("t", title))]
        )
        project = BypassProjectOperator(tree, [col("t", "title")])
        output = project.execute(streams, context)
        assert output.row_count == 3
        assert context.metrics.residual_rows_evaluated == title.num_rows

    def test_project_empty_stream_set(self, paper_query):
        tree = _paper_tree(paper_query)
        project = BypassProjectOperator(tree, [])
        output = project.execute(StreamSet(), ExecContext())
        assert output.row_count == 0

    def test_project_without_predicate_accepts_everything(self, paper_catalog):
        context = ExecContext()
        title = paper_catalog.get("title")
        streams = StreamSet(
            [BypassStream(Tag.empty(), Relation.from_base_table("t", title))]
        )
        project = BypassProjectOperator(None, [])
        output = project.execute(streams, context)
        assert output.row_count == title.num_rows


# --------------------------------------------------------------------------- #
# Planner + executor + session integration
# --------------------------------------------------------------------------- #
class TestBypassPlannerAndExecutor:
    def test_planner_produces_pushdown_shaped_plan(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        plan = BypassPlanner(context).plan()
        rendered = plan.to_string()
        assert "Scan(title AS t)" in rendered
        assert "Filter" in rendered
        assert plan.describe().startswith("bypass")

    def test_executor_matches_paper_result(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        planned = BypassPlanner(context).plan()
        executor = BypassExecutor(paper_catalog, context.predicate_tree)
        output = executor.execute(planned.plan, ExecContext())
        assert output.row_count == len(PAPER_QUERY_MATCHES)

    def test_executor_rejects_plan_without_project_root(self, paper_catalog, paper_query):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        planned = BypassPlanner(context).plan()
        executor = BypassExecutor(paper_catalog, context.predicate_tree)
        with pytest.raises(ValueError, match="ProjectNode"):
            executor.execute(planned.plan.child, ExecContext())

    def test_session_bypass_planner(self, paper_session, paper_query_sql):
        result = paper_session.execute(paper_query_sql, planner="bypass")
        titles = {row[0] for row in result.rows}
        assert titles == PAPER_QUERY_MATCHES
        assert result.planner_name == "bypass"

    def test_session_explain_bypass(self, paper_session, paper_query_sql):
        rendered = paper_session.explain(paper_query_sql, planner="bypass")
        assert "Scan" in rendered and "Join" in rendered

    def test_bypass_matches_tagged_on_synthetic_dnf(self):
        catalog = generate_synthetic_catalog(SyntheticConfig(table_size=400, seed=5))
        session = Session(catalog, stats_sample_size=400)
        query = make_dnf_query(num_root_clauses=2, selectivity=0.3)
        tagged = session.execute(query, planner="tcombined")
        bypass = session.execute(query, planner="bypass")
        assert bypass.sorted_rows() == tagged.sorted_rows()

    def test_bypass_never_needs_union(self, synthetic_session):
        query = make_dnf_query(num_root_clauses=2, selectivity=0.4)
        result = synthetic_session.execute(query, planner="bypass")
        assert result.metrics.union_input_rows == 0
        assert result.metrics.union_output_rows == 0

    def test_bypass_builds_more_hash_tables_than_tagged(self, synthetic_session):
        query = make_dnf_query(num_root_clauses=3, selectivity=0.4)
        tagged = synthetic_session.execute(query, planner="tpushdown")
        bypass = synthetic_session.execute(query, planner="bypass")
        assert bypass.sorted_rows() == tagged.sorted_rows()
        assert bypass.metrics.hash_tables_built >= tagged.metrics.hash_tables_built

    def test_bypass_on_query_without_where(self, paper_session):
        sql = (
            "SELECT t.title FROM title AS t "
            "JOIN movie_info_idx AS mi_idx ON t.id = mi_idx.movie_id"
        )
        result = paper_session.execute(sql, planner="bypass")
        assert result.row_count == 6

    def test_bypass_single_table_query(self, paper_session):
        sql = "SELECT t.title FROM title AS t WHERE t.production_year > 2000"
        result = paper_session.execute(sql, planner="bypass")
        assert {row[0] for row in result.rows} == {"The Dark Knight", "Evolution", "Avatar"}

    def test_bypass_handles_nulls_like_tagged(self):
        catalog = Catalog(
            [
                Table.from_dict(
                    "t",
                    {"id": [1, 2, 3, 4], "year": [2005, None, 1990, 1970]},
                ),
                Table.from_dict(
                    "s",
                    {"tid": [1, 2, 3, 4], "score": [9.0, 8.5, None, 6.0]},
                ),
            ]
        )
        session = Session(catalog)
        sql = (
            "SELECT t.id FROM t AS t JOIN s AS s ON t.id = s.tid "
            "WHERE (t.year > 2000 AND s.score > 7.0) OR (t.year > 1980 AND s.score > 8.0)"
        )
        tagged = session.execute(sql, planner="tcombined")
        bypass = session.execute(sql, planner="bypass")
        assert bypass.sorted_rows() == tagged.sorted_rows()
        assert {row[0] for row in bypass.rows} == {1}

"""Tests of the query-service layer: caches, fingerprints, batch execution."""

from __future__ import annotations

import time

import pytest

from repro import Catalog, QueryService, Session, Table
from repro.service import PlanCache, StatsCache, query_fingerprint
from repro.sql import clear_parse_cache, parse_query_cached
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog, make_dnf_query

SQL = (
    "SELECT t.title, t.production_year, mi.info "
    "FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
    "WHERE (t.production_year > 2000 AND mi.info > 7.0) "
    "   OR (t.production_year > 1980 AND mi.info > 8.0)"
)

SQL_REFORMATTED = (
    "SELECT   t.title,  t.production_year,\n\tmi.info "
    "FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
    "WHERE (t.production_year > 2000 AND mi.info > 7.0)\n"
    "   OR  (t.production_year > 1980 AND mi.info > 8.0)"
)

#: The same query with commutative rearrangements: OR clauses swapped, AND
#: operands swapped, and the join condition flipped.
SQL_REARRANGED = (
    "SELECT t.title, t.production_year, mi.info "
    "FROM title AS t JOIN movie_info_idx AS mi ON mi.movie_id = t.id "
    "WHERE (mi.info > 8.0 AND t.production_year > 1980) "
    "   OR (t.production_year > 2000 AND mi.info > 7.0)"
)


def movie_catalog() -> Catalog:
    title = Table.from_dict(
        "title",
        {
            "id": [1, 2, 3, 4, 5, 6, 7],
            "title": ["TDK", "Evolution", "Shawshank", "Pulp", "Godfather", "Beetlejuice", "Avatar"],
            "production_year": [2008, 2001, 1994, 1994, 1972, 1988, 2009],
        },
    )
    movie_info_idx = Table.from_dict(
        "movie_info_idx",
        {"movie_id": [1, 3, 4, 5, 6, 7], "info": [9.0, 9.3, 8.9, 9.2, 7.5, 7.9]},
    )
    return Catalog([title, movie_info_idx])


@pytest.fixture()
def service():
    with QueryService(Session(movie_catalog()), max_workers=4) as query_service:
        yield query_service


@pytest.fixture(scope="module")
def synthetic_service():
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=400, seed=13))
    with QueryService(Session(catalog, stats_sample_size=400), max_workers=4) as query_service:
        yield query_service


# --------------------------------------------------------------------------- #
# Plan cache behaviour through the service
# --------------------------------------------------------------------------- #
def test_repeat_query_hits_plan_cache(service):
    first = service.execute(SQL)
    second = service.execute(SQL)
    assert not first.cache_hit
    assert second.cache_hit
    assert service.plan_cache.stats.hits == 1
    assert service.plan_cache.stats.misses == 1
    assert second.sorted_rows() == first.sorted_rows()
    assert second.plan_description == first.plan_description


def test_reformatted_and_rearranged_queries_share_one_plan(service):
    service.execute(SQL)
    for variant in (SQL_REFORMATTED, SQL_REARRANGED):
        result = service.execute(variant)
        assert result.cache_hit, variant
    assert service.plan_cache.stats.insertions == 1


def test_distinct_planners_get_distinct_entries(service):
    service.execute(SQL, planner="tpushdown")
    result = service.execute(SQL, planner="bdisj")
    assert not result.cache_hit
    assert len(service.plan_cache) == 2


def test_tmin_is_served_uncached_and_agrees(service):
    direct = Session(movie_catalog()).execute(SQL, planner="tmin")
    served = service.execute(SQL, planner="tmin")
    assert served.planner_name == "tmin"
    assert not served.cache_hit
    assert served.sorted_rows() == direct.sorted_rows()


def test_warm_prepares_without_executing(service):
    added = service.warm([SQL, SQL_REFORMATTED], planner="tcombined")
    assert added == 1
    assert service.execute(SQL).cache_hit


# --------------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------------- #
def test_fingerprint_stable_across_equivalent_spellings():
    base = query_fingerprint(SQL, "tcombined", catalog_version=3)
    assert query_fingerprint(SQL_REFORMATTED, "tcombined", catalog_version=3) == base
    assert query_fingerprint(SQL_REARRANGED, "tcombined", catalog_version=3) == base


def test_fingerprint_distinguishes_semantic_inputs():
    base = query_fingerprint(SQL, "tcombined", catalog_version=3)
    assert query_fingerprint(SQL, "tpushdown", catalog_version=3) != base
    assert query_fingerprint(SQL, "tcombined", catalog_version=4) != base
    assert query_fingerprint(SQL, "tcombined", catalog_version=3, naive_tags=True) != base
    assert query_fingerprint(SQL, "tcombined", catalog_version=3, sample_size=99) != base
    assert (
        query_fingerprint(SQL + " LIMIT 3", "tcombined", catalog_version=3) != base
    )


def test_fingerprint_accepts_bound_queries():
    bound = parse_query_cached(SQL)
    assert query_fingerprint(bound, "tcombined", catalog_version=0) == query_fingerprint(
        SQL, "tcombined", catalog_version=0
    )


def test_parse_cache_memoizes_on_normalized_text():
    clear_parse_cache()
    no_strings = "SELECT t.id FROM title AS t WHERE t.production_year > 2000"
    assert parse_query_cached(no_strings) is parse_query_cached(
        "SELECT   t.id  FROM title AS t\nWHERE t.production_year > 2000"
    )


# --------------------------------------------------------------------------- #
# Invalidation on catalog mutation
# --------------------------------------------------------------------------- #
def test_catalog_version_bump_invalidates_plans_and_stats(service):
    catalog = service.session.catalog
    before = service.execute(SQL)
    assert before.row_count == 4

    # Replace movie_info_idx so only one movie is rated above the thresholds.
    catalog.replace(
        Table.from_dict("movie_info_idx", {"movie_id": [1], "info": [9.0]})
    )
    after = service.execute(SQL)
    assert not after.cache_hit
    assert after.row_count == 1
    assert service.execute(SQL).cache_hit  # the replacement plan is cached again


def test_stats_cache_invalidation_is_per_table():
    catalog = movie_catalog()
    cache = StatsCache(catalog)
    table = catalog.get("title")
    cache.table_stats(table)
    cache.sample_positions(table, 5, 0)
    assert cache.stats.insertions == 2

    # Replacing an *unrelated* table must not disturb title's cached entries.
    catalog.replace(Table.from_dict("movie_info_idx", {"movie_id": [1], "info": [5.0]}))
    cache.table_stats(catalog.get("title"))
    cache.sample_positions(catalog.get("title"), 5, 0)
    assert cache.stats.evictions == 0
    assert cache.stats.hits == 2

    # Replacing title itself retires exactly its two entries.
    catalog.replace(
        Table.from_dict("title", {"id": [1], "title": ["TDK"], "production_year": [2008]})
    )
    cache.table_stats(catalog.get("title"))
    assert cache.stats.evictions == 2


def test_stats_cache_per_table_explicit_invalidate():
    catalog = movie_catalog()
    cache = StatsCache(catalog)
    cache.table_stats(catalog.get("title"))
    cache.table_stats(catalog.get("movie_info_idx"))
    cache.invalidate(table="title")
    assert cache.stats.invalidations == 1
    cache.table_stats(catalog.get("movie_info_idx"))  # still cached
    assert cache.stats.hits == 1


def test_stats_cache_shared_across_distinct_queries(service):
    service.execute(SQL)
    misses_after_first = service.stats_cache.stats.misses
    service.execute(
        "SELECT t.title FROM title AS t JOIN movie_info_idx AS mi "
        "ON t.id = mi.movie_id WHERE t.production_year > 1990 OR mi.info > 9.0"
    )
    assert service.stats_cache.stats.hits > 0
    assert service.stats_cache.stats.misses == misses_after_first


# --------------------------------------------------------------------------- #
# Batch execution
# --------------------------------------------------------------------------- #
def test_concurrent_batch_matches_serial_session(synthetic_service):
    queries = [
        make_dnf_query(num_root_clauses=clauses, selectivity=selectivity)
        for clauses, selectivity in ((2, 0.2), (2, 0.7), (3, 0.5))
    ] * 3
    report = synthetic_service.execute_batch(queries, planner="tcombined")
    assert len(report.succeeded) == len(queries)

    serial = Session(
        synthetic_service.session.catalog, stats_sample_size=400
    )
    for item, query in zip(report, queries):
        expected = serial.execute(query, planner="tcombined")
        assert item.result.column_names == expected.column_names
        assert item.result.rows == expected.rows


def test_single_flight_coalesces_identical_concurrent_queries(synthetic_service):
    synthetic_service.plan_cache.invalidate()
    insertions_before = synthetic_service.plan_cache.stats.insertions
    query = make_dnf_query(num_root_clauses=2, selectivity=0.4)
    report = synthetic_service.execute_batch([query] * 8, planner="tcombined")
    assert len(report.succeeded) == 8
    assert synthetic_service.plan_cache.stats.insertions == insertions_before + 1


def test_batch_reports_errors_without_poisoning_the_batch(service):
    report = service.execute_batch([SQL, "SELECT FROM nonsense", SQL])
    assert report[0].ok and report[2].ok
    assert not report[1].ok
    assert report[1].error is not None
    assert not report[1].timed_out
    assert len(report.failed) == 1


def test_batch_timeout_marks_item(service, monkeypatch):
    original = service.session.execute_prepared

    def slow_execute(prepared, **kwargs):
        time.sleep(0.5)
        return original(prepared, **kwargs)

    monkeypatch.setattr(service.session, "execute_prepared", slow_execute)
    report = service.execute_batch([SQL], timeout=0.05)
    assert report[0].timed_out
    assert not report[0].ok
    assert len(report.timed_out) == 1


def test_batch_aggregates(service):
    report = service.execute_batch([SQL, SQL])
    assert len(report) == 2
    assert report.queries_per_second > 0
    totals = report.total_metrics()
    assert totals.output_rows == sum(item.result.metrics.output_rows for item in report)


def test_queries_per_second_guards_against_zero_wall_clock(service):
    from repro.service.service import BatchItem, BatchReport

    result = service.execute(SQL)
    item = BatchItem(index=0, query=SQL, planner="tcombined", result=result)
    # A batch of cached sub-resolution queries can clock wall_seconds == 0.0
    # on coarse timers; the rate must degrade to 0.0, not divide by zero.
    assert BatchReport(items=[item], wall_seconds=0.0).queries_per_second == 0.0
    assert BatchReport(items=[item], wall_seconds=-1.0).queries_per_second == 0.0
    assert BatchReport(items=[item], wall_seconds=0.5).queries_per_second == 2.0


def test_cache_metrics_include_feedback_observation_count(synthetic_session):
    with QueryService(synthetic_session, feedback=True) as feedback_service:
        query = make_dnf_query(num_root_clauses=2, selectivity=0.4)
        feedback_service.execute(query, planner="tcombined")
        metrics = feedback_service.cache_metrics()
    feedback = metrics["feedback"]
    assert feedback["observations"] >= 1
    assert feedback["entries"] >= 1
    assert "replans" in feedback


# --------------------------------------------------------------------------- #
# PlanCache unit behaviour
# --------------------------------------------------------------------------- #
def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # freshen "a"; "b" is now LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_plan_cache_invalidate_and_stats():
    cache = PlanCache(capacity=4)
    assert cache.get("missing") is None
    cache.put("a", 1)
    cache.get("a")
    cache.invalidate()
    assert cache.get("a") is None
    stats = cache.stats.as_dict()
    assert stats["hits"] == 1
    assert stats["misses"] == 2
    assert stats["invalidations"] == 1
    assert 0.0 < stats["hit_rate"] < 1.0


def test_plan_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_service_eviction_under_tiny_capacity():
    with QueryService(Session(movie_catalog()), plan_cache_size=1) as tiny:
        tiny.execute(SQL)
        tiny.execute(SQL, planner="bdisj")  # evicts the tcombined plan
        assert tiny.plan_cache.stats.evictions == 1
        assert not tiny.execute(SQL).cache_hit

"""Differential tests: every planner agrees with the naive oracle.

These are the highest-value correctness tests in the repository: they compare
the tagged execution model (all planners), the traditional model (BDisj,
BPushConj) and the bypass model against a row-at-a-time reference evaluator
on randomly generated catalogs and disjunctive queries, including NULLs,
NOT nodes and repeated subexpressions.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Session
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.differential import (
    DEFAULT_PLANNERS,
    DifferentialReport,
    run_differential,
    run_fuzz_campaign,
)
from repro.testing.oracle import evaluate_oracle
from repro.testing.querygen import RandomQueryConfig, generate_random_query

_SMALL_CATALOG = RandomCatalogConfig(
    seed=42, num_dimensions=2, fact_rows=80, dimension_rows=120, null_fraction=0.08
)


@pytest.fixture(scope="module")
def fuzz_catalog():
    return generate_random_catalog(_SMALL_CATALOG)


@pytest.fixture(scope="module")
def fuzz_session(fuzz_catalog):
    return Session(fuzz_catalog, stats_sample_size=500)


class TestRunDifferential:
    def test_paper_query_agrees(self, paper_catalog, paper_query):
        report = run_differential(paper_catalog, paper_query)
        assert report.agreed, report.describe()
        assert report.row_count == 4
        assert set(report.planner_rows) == set(DEFAULT_PLANNERS)

    def test_report_describe_mentions_status(self, paper_catalog, paper_query):
        report = run_differential(paper_catalog, paper_query, planners=("tcombined",))
        assert "OK" in report.describe()

    def test_mismatch_is_reported(self):
        report = DifferentialReport(query_name="q", row_count=3)
        report.mismatches.append("bdisj returned 2 rows, oracle returned 3")
        assert not report.agreed
        assert "MISMATCH" in report.describe()

    @pytest.mark.parametrize("seed", range(12))
    def test_random_queries_agree_across_all_planners(self, fuzz_catalog, fuzz_session, seed):
        query = generate_random_query(
            fuzz_catalog, RandomQueryConfig(seed=seed, max_depth=3, max_fanout=3)
        )
        report = run_differential(
            fuzz_catalog, query, planners=DEFAULT_PLANNERS, session=fuzz_session
        )
        assert report.agreed, f"{query.predicate.key()}: {report.describe()}"

    @pytest.mark.parametrize("seed", range(6))
    def test_random_queries_with_heavy_reuse_agree(self, fuzz_catalog, fuzz_session, seed):
        query = generate_random_query(
            fuzz_catalog,
            RandomQueryConfig(
                seed=1000 + seed, reuse_probability=0.8, max_depth=4, max_fanout=3
            ),
        )
        report = run_differential(
            fuzz_catalog, query, planners=("tcombined", "bdisj", "bpushconj", "bypass"),
            session=fuzz_session,
        )
        assert report.agreed, f"{query.predicate.key()}: {report.describe()}"


class TestFuzzCampaign:
    def test_small_campaign_all_agree(self):
        reports = run_fuzz_campaign(
            num_queries=4,
            seed=3,
            catalog_config=RandomCatalogConfig(
                seed=3, num_dimensions=2, fact_rows=60, dimension_rows=90
            ),
            planners=("tcombined", "bdisj", "bypass"),
        )
        assert len(reports) == 4
        assert all(report.agreed for report in reports), [
            report.describe() for report in reports
        ]

    def test_campaign_is_reproducible(self):
        config = RandomCatalogConfig(seed=5, num_dimensions=1, fact_rows=50, dimension_rows=60)
        first = run_fuzz_campaign(
            num_queries=2, seed=5, catalog_config=config, planners=("tcombined",)
        )
        second = run_fuzz_campaign(
            num_queries=2, seed=5, catalog_config=config, planners=("tcombined",)
        )
        assert [report.row_count for report in first] == [
            report.row_count for report in second
        ]


class TestHypothesisDifferential:
    """Property-based sweep over generator seeds and configuration knobs."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        max_depth=st.integers(min_value=1, max_value=4),
        reuse=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_tagged_matches_oracle(self, fuzz_catalog, fuzz_session, seed, max_depth, reuse):
        query = generate_random_query(
            fuzz_catalog,
            RandomQueryConfig(seed=seed, max_depth=max_depth, reuse_probability=reuse),
        )
        expected = evaluate_oracle(fuzz_catalog, query)
        result = fuzz_session.execute(query, planner="tcombined")
        assert result.sorted_rows() == expected

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bypass_matches_tagged(self, fuzz_catalog, fuzz_session, seed):
        query = generate_random_query(fuzz_catalog, RandomQueryConfig(seed=seed))
        tagged = fuzz_session.execute(query, planner="tcombined")
        bypass = fuzz_session.execute(query, planner="bypass")
        assert bypass.sorted_rows() == tagged.sorted_rows()

"""Workload history: stats store, event journal, regression detection, CLI.

Covers the `repro.obs.history` subsystem in units and through its seams:

* the checksummed journal's crash semantics — torn tails truncate on
  reopen (like the WAL), corrupt records in the middle are *skipped*
  (unlike the WAL, whose replay must stop at a gap);
* per-fingerprint statistics accumulation and the bucketed percentiles;
* the regression detector's baseline/recent window logic;
* the rotating slow-query file sink;
* `QueryService` / bare `Session` feeding history exactly once per query
  (including the tmin delegation, which must not double count);
* offline replay parity and the `repro history` / `repro top` /
  `repro metrics --format` CLI surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro import QueryService, Session
from repro.cli import main
from repro.obs.history import (
    QueryStatsStore,
    WorkloadHistory,
    plan_hash_of,
    set_history,
)
from repro.obs.journal import (
    JOURNAL_MAGIC,
    EventJournal,
    encode_event,
    read_journal,
    scan_journal,
)
from repro.obs.regress import RegressionDetector
from repro.obs.slowlog import RotatingFileSink, SlowQueryRecord
from repro.storage.disk import save_catalog
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

SQL_JOIN = (
    "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid "
    "WHERE T1.A1 < 0.2 OR (T1.A2 > 0.8 AND T0.A1 < 0.5)"
)
SQL_SCAN = "SELECT * FROM T0 WHERE T0.A1 < 0.3 OR T0.A2 > 0.9"


@pytest.fixture()
def catalog():
    return generate_synthetic_catalog(SyntheticConfig(table_size=400, seed=3))


@pytest.fixture(autouse=True)
def _no_ambient_history():
    """Tests that install an ambient history must not leak it."""
    yield
    set_history(None)


# --------------------------------------------------------------------------- #
# Journal
# --------------------------------------------------------------------------- #
class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.journal"
        with EventJournal(path) as journal:
            journal.append("query", fingerprint="abc", rows=3)
            journal.append("replan", fingerprint="abc")
        events = read_journal(path)
        assert [event["kind"] for event in events] == ["query", "replan"]
        assert events[0]["rows"] == 3
        assert [event["seq"] for event in events] == [0, 1]
        assert all("ts" in event for event in events)

    def test_seq_resumes_across_reopen(self, tmp_path):
        path = tmp_path / "events.journal"
        with EventJournal(path) as journal:
            journal.append("query", n=1)
        with EventJournal(path) as journal:
            assert journal.next_seq == 1
            journal.append("query", n=2)
        assert [event["seq"] for event in read_journal(path)] == [0, 1]

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        """A half-written final record vanishes when a writer reopens."""
        path = tmp_path / "events.journal"
        with EventJournal(path) as journal:
            journal.append("query", n=1)
            journal.append("query", n=2)
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_event({"kind": "query", "seq": 2})[:11])
        assert path.stat().st_size > intact_size
        with EventJournal(path) as journal:
            assert path.stat().st_size == intact_size
            assert journal.next_seq == 2
            journal.append("query", n=3)
        assert [event["n"] for event in read_journal(path)] == [1, 2, 3]

    def test_trailing_garbage_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "events.journal"
        with EventJournal(path) as journal:
            journal.append("query", n=1)
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x00garbage\xff\xfe")
        with EventJournal(path):
            pass
        assert path.stat().st_size == intact_size
        assert len(read_journal(path)) == 1

    def test_corrupt_middle_record_is_skipped(self, tmp_path):
        """Bit rot in the middle skips one record; later records survive.

        This is the deliberate divergence from the WAL, whose scan must
        stop at the first bad record (tests/test_wal.py) — replaying past a
        gap could corrupt data, but an observational journal should show
        everything still intact.
        """
        path = tmp_path / "events.journal"
        with EventJournal(path) as journal:
            journal.append("query", n=1)
            first_end = path.stat().st_size
            journal.append("query", n=2)
            journal.append("query", n=3)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the middle record (past its frame header).
        data[first_end + 16] ^= 0xFF
        path.write_bytes(bytes(data))

        scan = scan_journal(path)
        assert [event["n"] for event in scan.events] == [1, 3]
        assert scan.skipped == 1
        assert [event["seq"] for event in scan.events] == [0, 2]  # the gap shows

    def test_corrupt_then_append_keeps_later_events(self, tmp_path):
        """Reopening after middle corruption keeps appending past it."""
        path = tmp_path / "events.journal"
        with EventJournal(path) as journal:
            journal.append("query", n=1)
            first_end = path.stat().st_size
            journal.append("query", n=2)
        data = bytearray(path.read_bytes())
        data[first_end + 16] ^= 0xFF
        path.write_bytes(bytes(data))
        with EventJournal(path) as journal:
            journal.append("query", n=3)
        assert [event["n"] for event in read_journal(path)] == [1, 3]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.journal") == []

    def test_magic_differs_from_wal(self):
        assert JOURNAL_MAGIC == b"REVJ"

    def test_trace_sampling(self, tmp_path):
        always = EventJournal(tmp_path / "a.journal", trace_sample_rate=1.0)
        never = EventJournal(tmp_path / "b.journal", trace_sample_rate=0.0)
        try:
            assert always.sample_trace() is True
            assert never.sample_trace() is False
        finally:
            always.close()
            never.close()

    def test_bad_sample_rate_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventJournal(tmp_path / "x.journal", trace_sample_rate=1.5)


# --------------------------------------------------------------------------- #
# Stats store
# --------------------------------------------------------------------------- #
class TestQueryStatsStore:
    def test_accumulation(self):
        store = QueryStatsStore()
        store.observe_query("fp", "tcombined", 0.010, rows=5, pages_read=3,
                            pages_pruned=1, cache_hit=False, plan_hash="p1")
        store.observe_query("fp", "tcombined", 0.030, rows=7, pages_read=4,
                            pages_pruned=0, cache_hit=True, plan_hash="p1")
        entry = store.get("fp")
        assert entry.calls == 2
        assert entry.rows == 12
        assert entry.pages_read == 7
        assert entry.pages_pruned == 1
        assert entry.cache_hits == 1
        assert entry.min_seconds == pytest.approx(0.010)
        assert entry.max_seconds == pytest.approx(0.030)
        assert entry.total_seconds == pytest.approx(0.040)
        assert entry.mean_seconds == pytest.approx(0.020)
        assert entry.plan_hash == "p1"

    def test_percentiles_are_ordered_and_bounded(self):
        store = QueryStatsStore()
        for i in range(100):
            store.observe_query("fp", "t", 0.001 * (i + 1), rows=0, pages_read=0,
                                pages_pruned=0, cache_hit=False)
        entry = store.get("fp")
        p50, p95, p99 = entry.percentile(50), entry.percentile(95), entry.percentile(99)
        assert 0.0 < p50 <= p95 <= p99 <= entry.max_seconds
        assert p50 == pytest.approx(0.050, rel=0.5)

    def test_top_orderings(self):
        store = QueryStatsStore()
        store.observe_query("hot", "t", 0.5, rows=1, pages_read=1,
                            pages_pruned=0, cache_hit=False)
        for _ in range(3):
            store.observe_query("frequent", "t", 0.001, rows=1, pages_read=9,
                                pages_pruned=0, cache_hit=False)
        assert [e.fingerprint for e in store.top(2, by="total_seconds")] == [
            "hot", "frequent"]
        assert [e.fingerprint for e in store.top(2, by="calls")] == [
            "frequent", "hot"]
        assert store.top(1, by="pages_read")[0].fingerprint == "frequent"
        with pytest.raises(ValueError):
            store.top(1, by="nope")

    def test_errors_and_replans(self):
        store = QueryStatsStore()
        store.record_error("fp", "t")
        store.observe_query("fp", "t", 0.01, rows=0, pages_read=0,
                            pages_pruned=0, cache_hit=False)
        store.record_replan("fp")
        store.record_replan("unknown")  # no entry: silently ignored
        entry = store.get("fp")
        assert entry.errors == 1
        assert entry.replans == 1
        assert len(store) == 1
        assert set(entry.as_dict()) >= {
            "fingerprint", "calls", "errors", "p50_seconds", "p95_seconds",
            "p99_seconds", "plan_hash", "replans",
        }


# --------------------------------------------------------------------------- #
# Regression detector
# --------------------------------------------------------------------------- #
class TestRegressionDetector:
    def test_flags_pages_read_degradation_once(self):
        detector = RegressionDetector(threshold=2.0, baseline_calls=4, window=3)
        for _ in range(4):
            assert detector.observe("fp", 0.01, pages_read=10, plan_hash="a") == []
        events = []
        for _ in range(6):
            events += detector.observe("fp", 0.01, pages_read=40, plan_hash="b")
        assert len(events) == 1
        event = events[0]
        assert event.metric == "pages_read"
        assert event.ratio == pytest.approx(4.0)
        assert event.plan_hash == "b"
        assert event.baseline == pytest.approx(10.0)
        assert event.recent == pytest.approx(40.0)

    def test_new_plan_hash_rearms(self):
        detector = RegressionDetector(threshold=2.0, baseline_calls=2, window=2)
        for _ in range(2):
            detector.observe("fp", 0.01, pages_read=10, plan_hash="a")
        first = []
        for _ in range(2):
            first += detector.observe("fp", 0.01, pages_read=30, plan_hash="b")
        assert len(first) == 1
        second = []
        for _ in range(2):
            second += detector.observe("fp", 0.01, pages_read=50, plan_hash="c")
        assert len(second) == 1
        assert second[0].plan_hash == "c"

    def test_latency_regression_flagged(self):
        detector = RegressionDetector(threshold=2.0, baseline_calls=3, window=3)
        for _ in range(3):
            detector.observe("fp", 0.010, pages_read=0)
        events = []
        for _ in range(3):
            events += detector.observe("fp", 0.100, pages_read=0)
        assert [event.metric for event in events] == ["execution_seconds"]

    def test_steady_workload_never_flags(self):
        detector = RegressionDetector(threshold=2.0, baseline_calls=3, window=3)
        for _ in range(50):
            assert detector.observe("fp", 0.01, pages_read=10) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RegressionDetector(threshold=1.0)
        with pytest.raises(ValueError):
            RegressionDetector(baseline_calls=0)


# --------------------------------------------------------------------------- #
# Rotating slow-query file sink
# --------------------------------------------------------------------------- #
def _slow_record(i: int) -> SlowQueryRecord:
    return SlowQueryRecord(
        fingerprint=f"fp{i}", planner="tcombined", elapsed_seconds=1.0,
        planning_seconds=0.1, execution_seconds=0.9, rows=10, pages_read=5,
        pages_pruned=0, cache_hit=False, kernel_tier="numpy", shards=None,
    )


class TestRotatingFileSink:
    def test_writes_json_lines(self, tmp_path):
        sink = RotatingFileSink(tmp_path / "slow.log")
        sink(_slow_record(1))
        sink(_slow_record(2))
        lines = (tmp_path / "slow.log").read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["fingerprint"] == "fp1"

    def test_rotation_keeps_bounded_set(self, tmp_path):
        path = tmp_path / "slow.log"
        record_size = len(_slow_record(0).as_json()) + 1
        sink = RotatingFileSink(path, max_bytes=record_size * 2, keep=2)
        for i in range(10):
            sink(_slow_record(i))
        files = sink.existing_files()
        assert files == [path, sink.rotated_path(1), sink.rotated_path(2)]
        assert not sink.rotated_path(3).exists()
        # Newest records are in the live file, older ones shuffled up.
        live = [json.loads(line)["fingerprint"] for line in path.read_text().splitlines()]
        assert live[-1] == "fp9"

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingFileSink(tmp_path / "x", max_bytes=0)
        with pytest.raises(ValueError):
            RotatingFileSink(tmp_path / "x", keep=-1)


# --------------------------------------------------------------------------- #
# WorkloadHistory composition
# --------------------------------------------------------------------------- #
class TestWorkloadHistory:
    def test_query_events_journal_and_detect(self, tmp_path):
        journal = tmp_path / "h.journal"
        with WorkloadHistory(journal_path=journal, baseline_calls=2,
                             regression_window=2) as history:
            for _ in range(2):
                history.record_query("fp", "tcombined", 0.01, 0.009, rows=1,
                                     pages_read=10, pages_pruned=0,
                                     cache_hit=False, plan_hash="a")
            events = []
            for _ in range(2):
                events += history.record_query("fp", "tcombined", 0.01, 0.009,
                                               rows=1, pages_read=40,
                                               pages_pruned=0, cache_hit=True,
                                               plan_hash="b")
        assert len(events) == 1
        kinds = [event["kind"] for event in read_journal(journal)]
        assert kinds.count("query") == 4
        assert "regression" in kinds
        assert history.regressions == events

    def test_replay_parity(self, tmp_path):
        journal = tmp_path / "h.journal"
        with WorkloadHistory(journal_path=journal, baseline_calls=2,
                             regression_window=2) as live:
            for i in range(6):
                live.record_query("fp", "t", 0.01, 0.01, rows=i,
                                  pages_read=10 if i < 3 else 40,
                                  pages_pruned=1, cache_hit=bool(i),
                                  plan_hash="a" if i < 3 else "b")
            live.record_replan("fp")
        replayed = WorkloadHistory.replay(journal, baseline_calls=2,
                                          regression_window=2)
        assert (replayed.stats.get("fp").as_dict()
                == live.stats.get("fp").as_dict())
        assert ([event.as_dict() for event in replayed.regressions]
                == [event.as_dict() for event in live.regressions])

    def test_trace_attachment_sampled(self, tmp_path):
        journal = tmp_path / "h.journal"
        with WorkloadHistory(journal_path=journal, trace_sample_rate=1.0) as history:
            history.record_query("fp", "t", 0.01, 0.01, rows=0, pages_read=0,
                                 pages_pruned=0, cache_hit=False,
                                 trace={"name": "query", "children": []})
            history.record_query("fp", "t", 0.01, 0.01, rows=0, pages_read=0,
                                 pages_pruned=0, cache_hit=False, trace=None)
        events = [e for e in read_journal(journal) if e["kind"] == "query"]
        assert "trace" in events[0] and events[0]["trace"]["name"] == "query"
        assert "trace" not in events[1]

    def test_memory_only_history_has_no_journal(self):
        history = WorkloadHistory()
        history.record_query("fp", "t", 0.01, 0.01, rows=1, pages_read=0,
                             pages_pruned=0, cache_hit=False)
        history.record_event("compaction", tables=3)
        assert history.journal is None
        assert history.stats.get("fp").calls == 1
        history.close()

    def test_plan_hash_of(self):
        assert plan_hash_of(None) is None
        assert plan_hash_of("") is None
        a, b = plan_hash_of("Scan(T0)"), plan_hash_of("Scan(T1)")
        assert a != b and len(a) == 16
        assert plan_hash_of("Scan(T0)") == a


# --------------------------------------------------------------------------- #
# Service & session integration
# --------------------------------------------------------------------------- #
class TestServiceIntegration:
    def test_service_feeds_history(self, catalog, tmp_path):
        history = WorkloadHistory(journal_path=tmp_path / "h.journal")
        with QueryService(Session(catalog), history=history) as service:
            for _ in range(3):
                service.execute(SQL_JOIN)
            service.execute(SQL_SCAN)
        history.close()
        entries = history.stats.top(10, by="calls")
        assert [entry.calls for entry in entries] == [3, 1]
        assert entries[0].cache_hits == 2
        assert entries[0].plan_hash is not None
        kinds = [e["kind"] for e in read_journal(tmp_path / "h.journal")]
        assert kinds.count("query") == 4

    def test_slow_queries_routed_to_journal(self, catalog, tmp_path):
        history = WorkloadHistory(journal_path=tmp_path / "h.journal")
        with QueryService(Session(catalog), history=history,
                          slow_query_seconds=0.0) as service:
            service.execute(SQL_SCAN)
        history.close()
        kinds = [e["kind"] for e in read_journal(tmp_path / "h.journal")]
        assert "slow_query" in kinds and "query" in kinds

    def test_service_slow_query_log_path(self, catalog, tmp_path):
        log_path = tmp_path / "slow.log"
        with QueryService(Session(catalog), slow_query_seconds=0.0,
                          slow_query_log_path=log_path) as service:
            service.execute(SQL_SCAN)
        lines = log_path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["planner"] == "tcombined"

    def test_replan_recorded(self, catalog, tmp_path):
        history = WorkloadHistory(journal_path=tmp_path / "h.journal")
        with QueryService(Session(catalog), feedback=True,
                          qerror_threshold=1.000001, history=history) as service:
            for _ in range(4):
                service.execute(SQL_JOIN)
        history.close()
        entry = history.stats.top(1)[0]
        assert entry.replans >= 1
        kinds = [e["kind"] for e in read_journal(tmp_path / "h.journal")]
        assert "replan" in kinds

    def test_error_recorded(self, catalog):
        history = WorkloadHistory()
        with QueryService(Session(catalog), history=history) as service:
            service.execute(SQL_SCAN)
            with pytest.raises(Exception):
                service.execute("SELECT * FROM T0 WHERE T0.no_such_column > 1")
        errored = [e for e in history.stats.entries() if e.errors]
        assert len(errored) == 1

    def test_ambient_history_feeds_service(self, catalog):
        history = WorkloadHistory()
        set_history(history)
        try:
            with QueryService(Session(catalog)) as service:
                service.execute(SQL_SCAN)
        finally:
            set_history(None)
        assert sum(e.calls for e in history.stats.entries()) == 1

    def test_bare_session_publishes_to_ambient(self, catalog):
        history = WorkloadHistory()
        set_history(history)
        try:
            session = Session(catalog)
            session.execute(SQL_SCAN)
            session.execute(SQL_SCAN, planner="bdisj")
        finally:
            set_history(None)
        assert len(history.stats) == 2  # distinct planners, distinct keys
        assert all(e.calls == 1 for e in history.stats.entries())

    def test_tmin_through_service_counts_once(self, catalog):
        """The service's tmin path delegates to Session.execute; the
        suppression seam must keep it a single history record."""
        history = WorkloadHistory()
        set_history(history)
        try:
            with QueryService(Session(catalog)) as service:
                service.execute(SQL_SCAN, planner="tmin")
        finally:
            set_history(None)
        entries = history.stats.entries()
        assert sum(e.calls for e in entries) == 1
        assert entries[0].planner == "tmin"

    def test_session_without_ambient_records_nothing(self, catalog):
        session = Session(catalog)
        result = session.execute(SQL_SCAN)
        assert result.row_count >= 0  # nothing to assert beyond "no crash"


# --------------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------------- #
@pytest.fixture()
def dataset(tmp_path, catalog):
    root = tmp_path / "data"
    save_catalog(catalog, root)
    return str(root)


class TestCli:
    def test_batch_history_then_history_top(self, dataset, tmp_path, capsys):
        journal = str(tmp_path / "data" / "history.journal")
        assert main(["batch", "--data", dataset, "--sql", SQL_SCAN,
                     "--repeat", "3", "--history-journal", journal]) == 0
        capsys.readouterr()
        assert main(["history", "--data", dataset]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "tcombined" in out

    def test_history_json_format(self, dataset, tmp_path, capsys):
        journal = str(tmp_path / "data" / "history.journal")
        main(["batch", "--data", dataset, "--sql", SQL_SCAN,
              "--history-journal", journal])
        capsys.readouterr()
        assert main(["history", "--data", dataset, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["calls"] == 1
        assert main(["history", "regressions", "--data", dataset,
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_history_missing_journal(self, dataset, capsys):
        assert main(["history", "--data", dataset]) == 2
        assert "no history journal" in capsys.readouterr().err

    def test_top_single_frame(self, dataset, tmp_path, capsys):
        journal = str(tmp_path / "data" / "history.journal")
        main(["batch", "--data", dataset, "--sql", SQL_SCAN,
              "--history-journal", journal])
        capsys.readouterr()
        assert main(["top", "--data", dataset, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "1 fingerprints" in out

    def test_metrics_format_json(self, dataset, capsys):
        assert main(["metrics", "--data", dataset, "--sql", SQL_SCAN,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "repro_queries_total" in payload

    def test_metrics_format_prometheus_default(self, dataset, capsys):
        assert main(["metrics", "--data", dataset]) == 0
        assert "# TYPE repro_queries_total counter" in capsys.readouterr().out

    def test_compact_journals_event(self, dataset, tmp_path, capsys):
        journal = str(tmp_path / "data" / "history.journal")
        assert main(["insert", "--data", dataset, "--table", "T0",
                     "--values", '[{"id": 90001, "A1": 0.5, "A2": 0.5}]']) == 0
        assert main(["compact", "--data", dataset,
                     "--history-journal", journal]) == 0
        kinds = [e["kind"] for e in read_journal(journal)]
        assert "compaction" in kinds

    def test_recover_journals_event_only_when_work_done(self, dataset, tmp_path):
        journal = str(tmp_path / "data" / "history.journal")
        assert main(["recover", "--data", dataset,
                     "--history-journal", journal]) == 0
        # Clean dataset: nothing replayed, nothing truncated — no event.
        assert read_journal(journal) == []

"""Unit tests for tag generalization (Algorithm 1)."""

import pytest

from repro.core.generalize import (
    generalize_tag,
    refutes_root,
    root_assignment,
    satisfies_root,
)
from repro.core.predtree import PredicateTree
from repro.core.tags import Tag
from repro.expr.builders import and_, col, lit, not_, or_
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN


@pytest.fixture
def query1():
    """Query 1's predicate tree plus its four base predicates."""
    p1 = col("t", "year") > lit(2000)
    p2 = col("t", "year") > lit(1980)
    p3 = col("mi", "score") > lit(8.0)
    p4 = col("mi", "score") > lit(7.0)
    clause1 = and_(p1, p4)
    clause2 = and_(p2, p3)
    tree = PredicateTree(or_(clause1, clause2))
    return tree, p1, p2, p3, p4, clause1, clause2


class TestBasicPropagation:
    def test_empty_tag_stays_empty(self, query1):
        tree = query1[0]
        assert generalize_tag(tree, Tag.empty()).is_empty()

    def test_false_leaf_generalizes_to_false_and_parent(self, query1):
        tree, p1, _p2, _p3, _p4, clause1, _clause2 = query1
        result = generalize_tag(tree, Tag({p1.key(): FALSE}))
        assert result.get(clause1.key()) is FALSE
        assert len(result) == 1

    def test_true_leaf_under_and_does_not_propagate(self, query1):
        tree, p1, _p2, _p3, _p4, _clause1, _clause2 = query1
        result = generalize_tag(tree, Tag({p1.key(): TRUE}))
        assert result == Tag({p1.key(): TRUE})

    def test_full_clause_true_propagates_to_root(self, query1):
        tree, p1, _p2, _p3, p4, _clause1, _clause2 = query1
        result = generalize_tag(tree, Tag({p1.key(): TRUE, p4.key(): TRUE}))
        assert result.get(tree.root_key) is TRUE
        assert len(result) == 1

    def test_paper_figure2_example(self, query1):
        """The Figure 2 walkthrough: {P1=F, P2=T, P3=T} generalizes to root=T."""
        tree, p1, p2, p3, _p4, _clause1, _clause2 = query1
        tag = Tag({p1.key(): FALSE, p2.key(): TRUE, p3.key(): TRUE})
        result = generalize_tag(tree, tag)
        assert result.get(tree.root_key) is TRUE
        assert len(result) == 1

    def test_all_clauses_false_refutes_root(self, query1):
        tree, p1, p2, _p3, _p4, _clause1, _clause2 = query1
        # year <= 1980 implies both year predicates are false.
        result = generalize_tag(tree, Tag({p1.key(): FALSE, p2.key(): FALSE}))
        assert result.get(tree.root_key) is FALSE

    def test_partial_knowledge_keeps_clause_assignments(self, query1):
        """{P1=F, P2=T}: clause 1 is dead but clause 2 is still open."""
        tree, p1, p2, _p3, _p4, clause1, _clause2 = query1
        result = generalize_tag(tree, Tag({p1.key(): FALSE, p2.key(): TRUE}))
        assert result.get(clause1.key()) is FALSE
        assert result.get(p2.key()) is TRUE
        assert result.get(tree.root_key) is None


class TestRootPredicates:
    def test_satisfies_and_refutes_helpers(self, query1):
        tree = query1[0]
        assert satisfies_root(tree, Tag({tree.root_key: TRUE}))
        assert refutes_root(tree, Tag({tree.root_key: FALSE}))
        assert not refutes_root(tree, Tag({tree.root_key: TRUE}))
        assert root_assignment(tree, Tag.empty()) is None

    def test_unknown_root_refutes_only_under_three_valued(self, query1):
        tree = query1[0]
        tag = Tag({tree.root_key: UNKNOWN})
        assert refutes_root(tree, tag, include_unknown=True)
        assert not refutes_root(tree, tag, include_unknown=False)


class TestNotNodes:
    def test_not_propagation_negates(self):
        base = col("x", "a") > lit(0)
        other = col("x", "b") > lit(0)
        tree = PredicateTree(and_(not_(base), other))
        result = generalize_tag(tree, Tag({base.key(): TRUE}))
        # NOT(base)=F, which makes the AND root false.
        assert result.get(tree.root_key) is FALSE

    def test_not_propagation_of_false(self):
        base = col("x", "a") > lit(0)
        other = col("x", "b") > lit(0)
        tree = PredicateTree(and_(not_(base), other))
        result = generalize_tag(tree, Tag({base.key(): FALSE}))
        assert result.get(not_(base).key()) is TRUE
        assert result.get(tree.root_key) is None


class TestThreeValued:
    def test_unknown_does_not_trigger_simple_propagation(self, query1):
        tree, p1, _p2, _p3, _p4, clause1, _clause2 = query1
        result = generalize_tag(tree, Tag({p1.key(): UNKNOWN}))
        assert result == Tag({p1.key(): UNKNOWN})

    def test_all_children_unknown_or_false_propagates_up_or(self):
        a = col("x", "a") > lit(0)
        b = col("x", "b") > lit(0)
        tree = PredicateTree(or_(a, b))
        result = generalize_tag(tree, Tag({a.key(): UNKNOWN, b.key(): FALSE}))
        assert result.get(tree.root_key) is UNKNOWN

    def test_all_children_true_or_unknown_propagates_up_and(self):
        a = col("x", "a") > lit(0)
        b = col("x", "b") > lit(0)
        tree = PredicateTree(and_(a, b))
        result = generalize_tag(tree, Tag({a.key(): UNKNOWN, b.key(): TRUE}))
        assert result.get(tree.root_key) is UNKNOWN

    def test_false_beats_unknown_under_and(self):
        a = col("x", "a") > lit(0)
        b = col("x", "b") > lit(0)
        tree = PredicateTree(and_(a, b))
        result = generalize_tag(tree, Tag({a.key(): UNKNOWN, b.key(): FALSE}))
        assert result.get(tree.root_key) is FALSE

    def test_true_beats_unknown_under_or(self):
        a = col("x", "a") > lit(0)
        b = col("x", "b") > lit(0)
        tree = PredicateTree(or_(a, b))
        result = generalize_tag(tree, Tag({a.key(): UNKNOWN, b.key(): TRUE}))
        assert result.get(tree.root_key) is TRUE


class TestDuplicateSubexpressions:
    def test_duplicate_kept_until_every_instance_covered(self):
        """A predicate appearing in two clauses keeps its assignment while only
        one occurrence has an assigned ancestor (Section 3.2, Duplicates)."""
        shared = col("x", "s") > lit(0)
        a = col("x", "a") > lit(0)
        b = col("x", "b") > lit(0)
        clause1 = and_(shared, a)
        clause2 = and_(shared, b)
        tree = PredicateTree(or_(clause1, clause2))

        # a=F kills clause 1; shared=T is still needed for clause 2.
        result = generalize_tag(tree, Tag({shared.key(): TRUE, a.key(): FALSE}))
        assert result.get(clause1.key()) is FALSE
        assert result.get(shared.key()) is TRUE

    def test_duplicate_dropped_once_both_instances_covered(self):
        shared = col("x", "s") > lit(0)
        a = col("x", "a") > lit(0)
        b = col("x", "b") > lit(0)
        tree = PredicateTree(or_(and_(shared, a), and_(shared, b)))
        result = generalize_tag(
            tree, Tag({shared.key(): TRUE, a.key(): TRUE, b.key(): FALSE})
        )
        # shared & a true => clause 1 true => root true; everything else folds away.
        assert result.get(tree.root_key) is TRUE
        assert len(result) == 1


class TestForeignAssignments:
    def test_assignment_outside_tree_is_preserved(self, query1):
        tree = query1[0]
        foreign = Tag({"(z.col > 5)": TRUE})
        assert generalize_tag(tree, foreign).get("(z.col > 5)") is TRUE

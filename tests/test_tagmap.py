"""Unit tests for tag-map construction (Section 3.3 and the naive strategy)."""

import pytest

from repro.core.predtree import PredicateTree
from repro.core.tagmap import TagMapBuilder
from repro.core.tags import Tag
from repro.expr.builders import and_, col, lit, or_
from repro.expr.three_valued import FALSE, TRUE
from repro.plan.logical import FilterNode, JoinNode, ProjectNode, TableScanNode
from repro.plan.query import JoinCondition


@pytest.fixture
def query1_parts():
    p1 = col("t", "production_year") > lit(2000)
    p2 = col("t", "production_year") > lit(1980)
    p3 = col("mi_idx", "info") > lit(8.0)
    p4 = col("mi_idx", "info") > lit(7.0)
    tree = PredicateTree(or_(and_(p1, p4), and_(p2, p3)))
    return tree, p1, p2, p3, p4


def pushdown_plan(p1, p2, p3, p4):
    """The Figure 1 plan: both predicates per table pushed, then one join."""
    left = FilterNode(p2, FilterNode(p1, TableScanNode("t", "title")))
    right = FilterNode(p4, FilterNode(p3, TableScanNode("mi_idx", "movie_info_idx")))
    join = JoinNode(left, right, [JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))])
    return ProjectNode(join)


class TestFilterTagMaps:
    def test_first_filter_splits_empty_tag(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)

        first_filter = plan.child.left.child  # Filter(p1) over Scan(t)
        tag_map = annotations.filter_maps[first_filter.node_id]
        entry = tag_map.entries[Tag.empty()]
        assert entry.pos_tag == Tag({p1.key(): TRUE})
        # The negative side generalizes to clause1 = FALSE.
        clause1 = and_(p1, p4)
        assert entry.neg_tag == Tag({clause1.key(): FALSE})

    def test_second_filter_skips_satisfied_slice(self, query1_parts):
        """Precept 2: tuples already past year>2000 are not re-filtered by year>1980."""
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)

        second_filter = plan.child.left  # Filter(p2)
        tag_map = annotations.filter_maps[second_filter.node_id]
        assert Tag({p1.key(): TRUE}) not in tag_map.entries

    def test_second_filter_drops_dead_negative_output(self, query1_parts):
        """Precept 1: movies from before 1980 cannot satisfy the query."""
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)

        second_filter = plan.child.left
        tag_map = annotations.filter_maps[second_filter.node_id]
        clause1 = and_(p1, p4)
        entry = tag_map.entries[Tag({clause1.key(): FALSE})]
        assert entry.pos_tag is not None
        assert entry.neg_tag is None

    def test_filter_on_predicate_already_assigned_is_skipped(self, query1_parts):
        tree, p1, _p2, _p3, _p4 = query1_parts
        plan = ProjectNode(FilterNode(p1, FilterNode(p1, TableScanNode("t", "title"))))
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        outer_filter = plan.child
        # The second application of the same predicate has no entries at all.
        assert annotations.filter_maps[outer_filter.node_id].entries == {}

    def test_three_valued_adds_unknown_outputs(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=True).build(plan)
        first_filter = plan.child.left.child
        entry = annotations.filter_maps[first_filter.node_id].entries[Tag.empty()]
        assert entry.unk_tag is not None


class TestJoinTagMaps:
    def test_join_omits_dead_pairing(self, query1_parts):
        """The pairing (year in 1981-2000, score in 7.1-8.0) is never joined."""
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)

        join = plan.child
        join_map = annotations.join_maps[join.node_id]
        # Exactly the three pairings of the paper's Section 2.3 example.
        assert len(join_map.entries) == 3

    def test_join_output_tags_are_generalized(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        join_map = annotations.join_maps[plan.child.node_id]
        out_tags = set(join_map.entries.values())
        # The fully-satisfied pairing carries the root = TRUE assignment.
        assert Tag({tree.root_key: TRUE}) in out_tags

    def test_left_right_tag_sets(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        join_map = annotations.join_maps[plan.child.node_id]
        assert len(join_map.left_tags()) == 2
        assert len(join_map.right_tags()) == 2

    def test_output_tag_lookup(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        join_map = annotations.join_maps[plan.child.node_id]
        missing = join_map.output_tag(Tag({"(nope)": TRUE}), Tag.empty())
        assert missing is None


class TestProjection:
    def test_projection_allows_only_root_true(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        assert annotations.projection is not None
        assert annotations.projection.allowed == {Tag({tree.root_key: TRUE})}
        assert annotations.projection.residual == set()

    def test_projection_residual_for_unapplied_predicates(self, query1_parts):
        """A plan missing filters leaves tags without a verdict: they go to residual."""
        tree, _p1, _p2, _p3, _p4 = query1_parts
        bare = ProjectNode(
            JoinNode(
                TableScanNode("t", "title"),
                TableScanNode("mi_idx", "movie_info_idx"),
                [JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))],
            )
        )
        annotations = TagMapBuilder(tree, three_valued=False).build(bare)
        assert annotations.projection.allowed == set()
        assert annotations.projection.residual == {Tag.empty()}

    def test_no_predicate_tree_allows_everything(self):
        plan = ProjectNode(TableScanNode("t", "title"))
        annotations = TagMapBuilder(None).build(plan)
        assert annotations.projection.allowed == {Tag.empty()}


class TestNaiveStrategy:
    def test_naive_filter_keeps_both_outputs_unreduced(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, naive=True, three_valued=False).build(plan)
        first_filter = plan.child.left.child
        entry = annotations.filter_maps[first_filter.node_id].entries[Tag.empty()]
        assert entry.pos_tag == Tag({p1.key(): TRUE})
        assert entry.neg_tag == Tag({p1.key(): FALSE})

    def test_naive_tag_count_exceeds_generalized(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        naive = TagMapBuilder(tree, naive=True, three_valued=False).build(plan)
        generalized = TagMapBuilder(tree, naive=False, three_valued=False).build(plan)
        assert naive.num_tags() > generalized.num_tags()

    def test_naive_join_takes_full_cartesian_product(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        naive = TagMapBuilder(tree, naive=True, three_valued=False).build(plan)
        join_map = naive.join_maps[plan.child.node_id]
        left_count = len({left for left, _ in join_map.entries})
        right_count = len({right for _, right in join_map.entries})
        assert len(join_map.entries) == left_count * right_count

    def test_naive_projection_still_filters_to_satisfying_tags(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        naive = TagMapBuilder(tree, naive=True, three_valued=False).build(plan)
        assert naive.projection.allowed  # some tags satisfy the root
        for tag in naive.projection.allowed:
            # Every allowed tag must imply the root.
            from repro.core.generalize import generalize_tag, satisfies_root

            assert satisfies_root(tree, generalize_tag(tree, tag))


class TestOutputTagBookkeeping:
    def test_output_tags_recorded_per_node(self, query1_parts):
        tree, p1, p2, p3, p4 = query1_parts
        plan = pushdown_plan(p1, p2, p3, p4)
        annotations = TagMapBuilder(tree, three_valued=False).build(plan)
        scan_node = plan.child.left.child.child
        assert annotations.output_tags[scan_node.node_id] == [Tag.empty()]
        assert len(annotations.output_tags[plan.child.node_id]) >= 1

    def test_exponential_blowup_worst_case_still_bounded_by_naive(self):
        """The (X1 v Y1) ^ ... ^ (Xn v Yn) worst case: generalized tags are
        exponential if the plan orders all X filters before all Y filters, but
        never worse than the naive strategy."""
        n = 4
        xs = [col("t", f"x{i}") > lit(0) for i in range(n)]
        ys = [col("t", f"y{i}") > lit(0) for i in range(n)]
        predicate = and_(*[or_(xs[i], ys[i]) for i in range(n)])
        tree = PredicateTree(predicate)

        node = TableScanNode("t", "tbl")
        for predicate_expr in xs + ys:
            node = FilterNode(predicate_expr, node)
        plan = ProjectNode(node)

        generalized = TagMapBuilder(tree, three_valued=False).build(plan)
        naive = TagMapBuilder(tree, naive=True, three_valued=False).build(plan)
        assert generalized.num_tags() <= naive.num_tags()

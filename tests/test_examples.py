"""Smoke tests: every script in ``examples/`` runs from a fresh checkout.

Each example exposes a ``main()`` with size parameters, so these tests run
miniature versions: enough to execute every code path and validate the
printed output shape, small enough for the tier-1 suite.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_fully_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    covered = {
        name[len("test_"):]
        for name in globals()
        if name.startswith("test_") and name != "test_examples_directory_is_fully_covered"
    }
    assert scripts == covered, f"examples without a smoke test: {sorted(scripts - covered)}"


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "--- tcombined ---" in out
    assert "rows: 4" in out


def test_nulls_and_three_valued_logic(capsys):
    load_example("nulls_and_three_valued_logic").main()
    out = capsys.readouterr().out
    assert out.strip()


def test_analytics_report(capsys):
    load_example("analytics_report").main(scale=0.01)
    out = capsys.readouterr().out
    assert "Watchlist candidates" in out


def test_bypass_vs_tagged(capsys):
    load_example("bypass_vs_tagged").main(table_size=400)
    out = capsys.readouterr().out
    assert "bdisj" in out and "bypass" in out and "tcombined" in out


def test_movie_night(capsys):
    load_example("movie_night").main(scale=0.01, groups=(1,))
    out = capsys.readouterr().out
    assert "query group 1" in out


def test_synthetic_sweep(capsys):
    load_example("synthetic_sweep").main(table_size=400)
    out = capsys.readouterr().out
    assert "Figure 4a" in out and "Figure 4b" in out


def test_persist_and_fuzz(capsys):
    load_example("persist_and_fuzz").main(table_size=300, num_queries=2)
    out = capsys.readouterr().out
    assert "persistence round-trip" in out
    assert "agreed" in out


def test_query_service(capsys):
    load_example("query_service").main(table_size=500, repeats=3)
    out = capsys.readouterr().out
    assert "hit" in out
    assert "queries/s" in out

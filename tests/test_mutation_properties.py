"""Property-based randomized DML: random plans vs an in-memory oracle.

Each test seed generates a concrete **plan** — a list of inserts, predicate
deletes, compactions, injected crashes and deliberate commit conflicts — and
replays it against a saved dataset, mirroring every step in a plain
dict-of-rows oracle.  After every step the dataset's live rows must equal the
oracle exactly; at the end, query results are verified against the oracle
across parallelism {1, 4} and with secondary indexes off and on.

The suite is seeded (failures name the seed) and shrinkable: a failing plan
is greedily delta-debugged down to a minimal failing subsequence before the
assertion is re-raised, so the failure output shows the smallest reproducer
rather than the full random plan.  (The standard library only — ``hypothesis``
is deliberately not a dependency.)
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import Catalog, Session, Table
from repro.mutation import ConflictError, retry_on_conflict
from repro.mutation.diskops import (
    append_rows_to_saved_catalog,
    compact_saved_catalog,
    delete_rows_from_saved_catalog,
)
from repro.mutation.recovery import recover_saved_catalog
from repro.storage.disk import add_index_to_saved_catalog, load_catalog, save_catalog
from repro.testing import faults

BUCKETS = 7  # distinct ``v`` values; deletes target one bucket at a time

#: fault points a randomized crash step may arm, per DML kind (delete never
#: writes segment directories, so ``segment.partial_write`` cannot fire there).
CRASH_POINTS = {
    "insert": [
        "wal.partial_record",
        "wal.after_record",
        "wal.before_fsync",
        "segment.partial_write",
        "manifest.before_rename",
    ],
    "delete": [
        "wal.partial_record",
        "wal.after_record",
        "wal.before_fsync",
        "manifest.before_rename",
    ],
}


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    faults.disarm()


# --------------------------------------------------------------------------- #
# Plan generation (fully concrete: execution has no randomness of its own)
# --------------------------------------------------------------------------- #
def _make_rows(rng: random.Random, next_id: int, count: int) -> list[dict]:
    return [
        {
            "id": next_id + i,
            "v": float(rng.randrange(BUCKETS)),
            "s": f"n{(next_id + i) % 4}",
        }
        for i in range(count)
    ]


def generate_plan(seed: int, length: int = 12) -> list[tuple]:
    rng = random.Random(seed)
    next_id = 1000
    plan: list[tuple] = []
    for _ in range(length):
        kind = rng.choices(
            ["insert", "delete", "compact", "crash", "conflict"],
            weights=[35, 25, 10, 20, 10],
        )[0]
        if kind == "insert":
            rows = _make_rows(rng, next_id, rng.randint(1, 5))
            next_id += len(rows)
            plan.append(("insert", rows))
        elif kind == "delete":
            plan.append(("delete", float(rng.randrange(BUCKETS))))
        elif kind == "compact":
            plan.append(("compact",))
        elif kind == "crash":
            dml = rng.choice(["insert", "delete"])
            point = rng.choice(CRASH_POINTS[dml])
            if dml == "insert":
                rows = _make_rows(rng, next_id, rng.randint(1, 3))
                next_id += len(rows)
                plan.append(("crash", "insert", rows, point))
            else:
                plan.append(("crash", "delete", float(rng.randrange(BUCKETS)), point))
        else:
            rows_a = _make_rows(rng, next_id, rng.randint(1, 3))
            next_id += len(rows_a)
            rows_b = _make_rows(rng, next_id, rng.randint(1, 3))
            next_id += len(rows_b)
            plan.append(("conflict", rows_a, rows_b))
    return plan


# --------------------------------------------------------------------------- #
# Execution against dataset + oracle
# --------------------------------------------------------------------------- #
def _initial_rows() -> list[dict]:
    return [
        {"id": i, "v": float(i % BUCKETS), "s": f"n{i % 4}"} for i in range(20)
    ]


def _live_rows(root):
    table = load_catalog(root).get("t")
    mask = table.delete_mask
    positions = np.arange(table.num_rows) if mask is None else np.flatnonzero(~mask)
    return sorted(tuple(sorted(row.items())) for row in table.rows(positions))


def _oracle_rows(oracle: dict) -> list[tuple]:
    return sorted(tuple(sorted(row.items())) for row in oracle.values())


def _execute_plan(plan: list[tuple], root) -> dict:
    """Replay ``plan``; raises AssertionError at the first divergence."""
    save_catalog(Catalog([Table.from_dict("t", _rows_as_columns(_initial_rows()))]), root)
    oracle = {row["id"]: row for row in _initial_rows()}

    for step, op in enumerate(plan):
        if op[0] == "insert":
            append_rows_to_saved_catalog(root, "t", op[1])
            oracle.update({row["id"]: row for row in op[1]})
        elif op[0] == "delete":
            delete_rows_from_saved_catalog(root, "t", f"t.v = {op[1]}")
            oracle = {i: row for i, row in oracle.items() if row["v"] != op[1]}
        elif op[0] == "compact":
            compact_saved_catalog(root, online=True)
        elif op[0] == "crash":
            _, dml, arg, point = op
            with faults.armed(point):
                try:
                    if dml == "insert":
                        append_rows_to_saved_catalog(root, "t", arg)
                    else:
                        delete_rows_from_saved_catalog(root, "t", f"t.v = {arg}")
                    raise AssertionError(f"step {step}: fault {point} never fired")
                except faults.InjectedCrash:
                    pass
            recover_saved_catalog(root)
            if faults.FAULT_POINTS[point] == "post":  # the batch survived
                if dml == "insert":
                    oracle.update({row["id"]: row for row in arg})
                else:
                    oracle = {i: row for i, row in oracle.items() if row["v"] != arg}
        elif op[0] == "conflict":
            _, rows_a, rows_b = op
            catalog = load_catalog(root, durable=True)
            winner = catalog.begin_mutation().insert("t", rows_a)
            loser = catalog.begin_mutation().insert("t", rows_b)
            winner.commit()
            with pytest.raises(ConflictError):
                loser.commit()
            retry_on_conflict(catalog, lambda batch: batch.insert("t", rows_b))
            oracle.update({row["id"]: row for row in rows_a + rows_b})
        else:  # pragma: no cover - plan generator bug
            raise AssertionError(f"unknown op {op!r}")

        actual, expected = _live_rows(root), _oracle_rows(oracle)
        assert actual == expected, (
            f"step {step} ({op[0]}): dataset diverged from oracle "
            f"({len(actual)} vs {len(expected)} rows)"
        )
    return oracle


def _rows_as_columns(rows: list[dict]) -> dict:
    return {name: [row[name] for row in rows] for name in ("id", "v", "s")}


# --------------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------------- #
def shrink_plan(plan: list[tuple], fails) -> list[tuple]:
    """Greedy delta debugging: drop ever-smaller chunks while still failing.

    ``fails(candidate)`` re-runs the candidate plan from scratch and reports
    whether it still reproduces the failure.
    """
    chunk = max(1, len(plan) // 2)
    while chunk >= 1:
        index = 0
        while index < len(plan):
            candidate = plan[:index] + plan[index + chunk:]
            if candidate and fails(candidate):
                plan = candidate
            else:
                index += chunk
        chunk //= 2
    return plan


def _replay_fails(scratch):
    """A ``fails`` predicate executing candidate plans in fresh directories."""
    counter = iter(range(10_000))

    def fails(candidate: list[tuple]) -> bool:
        root = scratch / f"shrink-{next(counter)}"
        try:
            _execute_plan(candidate, root)
        except AssertionError:
            return True
        return False

    return fails


# --------------------------------------------------------------------------- #
# The property tests
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(6))
def test_random_plan_matches_oracle(seed, tmp_path):
    plan = generate_plan(seed)
    try:
        oracle = _execute_plan(plan, tmp_path / "data")
    except AssertionError as error:
        minimal = shrink_plan(plan, _replay_fails(tmp_path))
        raise AssertionError(
            f"seed {seed} failed: {error}\nminimal failing plan "
            f"({len(minimal)} of {len(plan)} steps):\n"
            + "\n".join(f"  {op!r}" for op in minimal)
        ) from error

    # Query-level verification: parallelism {1, 4} x indexes off/on must all
    # agree with the oracle.
    root = tmp_path / "data"
    expected_by_bucket = {
        bucket: sorted(
            (row["id"],) for row in oracle.values() if row["v"] == float(bucket)
        )
        for bucket in range(BUCKETS)
    }
    for indexed in (False, True):
        if indexed:
            add_index_to_saved_catalog(root, "t", "v")
            add_index_to_saved_catalog(root, "t", "id")
        catalog = load_catalog(root)
        for parallelism in (1, 4):
            session = Session(catalog, parallelism=parallelism, access_paths=indexed)
            for bucket in range(BUCKETS):
                result = session.execute(
                    f"SELECT t.id FROM t AS t WHERE t.v = {float(bucket)}"
                )
                assert sorted(result.rows) == expected_by_bucket[bucket], (
                    f"seed {seed}: bucket {bucket} diverged "
                    f"(parallelism={parallelism}, indexed={indexed})"
                )
            total = session.execute("SELECT t.id FROM t AS t WHERE t.id >= 0")
            assert total.row_count == len(oracle)


def test_shrinker_minimizes_a_synthetic_failure():
    """The shrinker reduces a long plan to just the op that triggers failure."""
    plan = generate_plan(3, length=10)
    poison = ("crash", "insert", [{"id": 9999, "v": 0.0, "s": "n0"}], "wal.after_record")
    full = plan[:4] + [poison] + plan[4:]
    minimal = shrink_plan(full, lambda candidate: poison in candidate)
    assert minimal == [poison]


def test_shrinker_finds_a_real_divergence(tmp_path):
    """End to end: a plan made to diverge shrinks to a tiny reproducer.

    The divergence is injected by a bogus op the executor rejects — the
    shrinker must isolate it from the healthy surrounding steps by actually
    replaying candidate plans against fresh datasets.
    """
    plan = generate_plan(5, length=6)
    bogus = ("bogus-op",)
    full = plan[:3] + [bogus] + plan[3:]
    fails = _replay_fails(tmp_path)
    assert fails(full)
    minimal = shrink_plan(full, fails)
    assert minimal == [bogus]

"""Catalog-version semantics under mutation, and service cache maintenance."""

from __future__ import annotations

import pytest

from repro import Catalog, QueryService, Session, Table
from repro.access.manager import ensure_access_manager
from repro.service.plan_cache import PlanCache
from repro.service.stats_cache import StatsCache


def two_table_catalog() -> Catalog:
    return Catalog(
        [
            Table.from_dict("t", {"id": list(range(8)), "v": [float(i) for i in range(8)]}),
            Table.from_dict("u", {"id": list(range(4)), "w": [1, 2, 3, 4]}),
        ]
    )


class TestVersionSemantics:
    def test_one_bump_per_committed_batch(self):
        catalog = two_table_catalog()
        before = catalog.version
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0}])
        batch.insert("u", [{"id": 100, "w": 9}])
        batch.delete("t", positions=[0])
        batch.commit()
        assert catalog.version == before + 1
        # Both mutated tables adopt the same new version.
        assert catalog.table_version("t") == catalog.table_version("u") == catalog.version

    def test_unrelated_table_keeps_its_version(self):
        catalog = two_table_catalog()
        u_version = catalog.table_version("u")
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0}])
        batch.commit()
        assert catalog.table_version("u") == u_version
        assert catalog.table_version("t") == catalog.version

    def test_index_ddl_and_mutation_interplay(self):
        catalog = two_table_catalog()
        manager = ensure_access_manager(catalog)
        manager.create_index("t", "v")
        ddl_version = manager.version
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 50.0}])
        batch.commit()
        # A mutation does not bump the DDL counter — only create/drop do —
        # and the definition survives with an extended materialization.
        assert manager.version == ddl_version
        assert manager.has_index("t", "v")
        assert manager.index_for("t", "v").size == 9
        manager.drop_index("t", "v")
        assert manager.version == ddl_version + 1

    def test_table_drop_after_mutation(self):
        catalog = two_table_catalog()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0}])
        batch.commit()
        mutated_version = catalog.version
        catalog.drop("t")
        assert catalog.version == mutated_version + 1
        with pytest.raises(KeyError):
            catalog.table_version("t")
        # Staging against a dropped table fails loudly.
        with pytest.raises(KeyError):
            catalog.begin_mutation().insert("t", [{"id": 1}])

    def test_apply_mutation_rejects_unknown_tables(self):
        catalog = two_table_catalog()
        with pytest.raises(KeyError):
            catalog.apply_mutation({"nope": catalog.get("t")})


class TestSnapshotReads:
    def test_stale_prepared_plan_reads_original_snapshot(self):
        catalog = two_table_catalog()
        session = Session(catalog)
        sql = "SELECT t.id FROM t AS t WHERE t.v >= 0.0"
        prepared = session.prepare(sql)
        before = session.execute_prepared(prepared).sorted_rows()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 5.0}])
        batch.delete("t", positions=[1])
        batch.commit()
        assert session.execute_prepared(prepared).sorted_rows() == before
        assert session.execute(sql).sorted_rows() != before

    def test_snapshot_survives_multiple_commits(self):
        catalog = two_table_catalog()
        session = Session(catalog)
        prepared = session.prepare("SELECT t.id FROM t AS t WHERE t.id < 100")
        before = session.execute_prepared(prepared).row_count
        for step in range(3):
            batch = catalog.begin_mutation()
            batch.insert("t", [{"id": 100 + step, "v": 1.0}])
            batch.commit()
        assert session.execute_prepared(prepared).row_count == before


class TestServiceMaintenance:
    def test_only_mutated_tables_plans_invalidated(self):
        catalog = two_table_catalog()
        service = QueryService(Session(catalog))
        sql_t = "SELECT t.id FROM t AS t WHERE t.v > 1.0"
        sql_u = "SELECT u.id FROM u AS u WHERE u.w > 1"
        service.execute(sql_t)
        service.execute(sql_u)
        assert len(service.plan_cache) == 2
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 9.0}])
        batch.commit()
        assert len(service.plan_cache) == 1  # t's plan retired, u's kept
        assert service.execute(sql_u).cache_hit
        fresh = service.execute(sql_t)
        assert not fresh.cache_hit
        assert fresh.row_count == 7
        service.close()

    def test_stats_cache_extended_not_recollected(self):
        catalog = two_table_catalog()
        service = QueryService(Session(catalog))
        service.execute("SELECT t.id FROM t AS t WHERE t.v > 1.0")
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 9.0}])
        batch.commit()
        # The post-commit stats entry exists already (extended by delta, not
        # recollected): probing it is a hit, not a miss.  Samples are the one
        # thing deliberately redrawn — the row population changed.
        misses_before = service.stats_cache.stats.misses
        hits_before = service.stats_cache.stats.hits
        stats = service.stats_cache.table_stats(catalog.get("t"))
        assert service.stats_cache.stats.misses == misses_before
        assert service.stats_cache.stats.hits == hits_before + 1
        assert stats.num_rows == 9
        assert stats.columns["v"].max_value == 9.0
        service.close()

    def test_feedback_observations_dropped_for_mutated_tables(self):
        catalog = two_table_catalog()
        service = QueryService(Session(catalog), feedback=True)
        service.execute("SELECT t.id FROM t AS t WHERE t.v > 1.0")
        service.execute("SELECT u.id FROM u AS u WHERE u.w > 1")
        assert len(service.feedback_store) == 2
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 9.0}])
        batch.commit()
        assert len(service.feedback_store) == 1
        service.close()

    def test_prepared_plan_pins_only_its_tables(self):
        catalog = two_table_catalog()
        session = Session(catalog)
        prepared = session.prepare("SELECT u.id FROM u AS u WHERE u.w > 1")
        assert set(prepared.snapshot.table_names) == {"u"}

    def test_abandoned_service_is_garbage_collectable(self):
        import gc
        import weakref as weakref_module

        catalog = two_table_catalog()
        service = QueryService(Session(catalog))
        service.execute("SELECT u.id FROM u AS u WHERE u.w > 1")
        ref = weakref_module.ref(service)
        del service
        gc.collect()
        assert ref() is None  # the catalog subscription must not pin it
        # ... and the stale weak callback is a harmless no-op on commit.
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0}])
        batch.commit()

    def test_closed_service_stops_reacting(self):
        catalog = two_table_catalog()
        service = QueryService(Session(catalog))
        service.execute("SELECT u.id FROM u AS u WHERE u.w > 1")
        service.close()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0}])
        batch.commit()  # must not raise into the closed service


class TestPlanCacheInvalidateEntry:
    def test_invalidate_absent_fingerprint_is_noop(self):
        cache = PlanCache(capacity=4)
        assert cache.invalidate_entry("never-inserted") is False
        assert cache.stats.invalidations == 0

    def test_invalidate_after_concurrent_eviction_is_noop(self):
        cache = PlanCache(capacity=1)
        cache.put("a", object())
        cache.put("b", object())  # evicts "a"
        assert cache.invalidate_entry("a") is False
        assert cache.invalidate_entry("b") is True
        assert cache.invalidate_entry("b") is False  # already gone

    def test_invalidate_matching_drops_only_matches(self):
        cache = PlanCache(capacity=8)
        cache.put("x", {"table": "t"})
        cache.put("y", {"table": "u"})
        dropped = cache.invalidate_matching(lambda value: value["table"] == "t")
        assert dropped == 1
        assert "y" in cache and "x" not in cache

    def test_invalidate_matching_survives_raising_predicate(self):
        cache = PlanCache(capacity=8)
        cache.put("x", object())
        assert cache.invalidate_matching(lambda value: value.missing) == 0
        assert "x" in cache


class TestStatsCacheDelta:
    def test_apply_delta_without_cached_entry_is_lazy(self):
        catalog = two_table_catalog()
        cache = StatsCache(catalog)
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0}])
        commit = batch.commit()
        assert cache.apply_delta(commit.deltas["t"]) is False
        # Lazy recollection still works and reflects the commit.
        assert cache.table_stats(catalog.get("t")).num_rows == 9

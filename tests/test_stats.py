"""Unit tests for statistics: table stats, selectivity and cardinality estimation."""

import pytest

from repro.expr.builders import and_, col, ilike, lit, not_, or_
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.selectivity import DEFAULT_SELECTIVITY, SelectivityEstimator
from repro.stats.table_stats import collect_catalog_stats, collect_table_stats
from repro.storage.table import Table


@pytest.fixture
def query(paper_query):
    return paper_query


@pytest.fixture
def estimator(paper_catalog, query):
    return SelectivityEstimator(paper_catalog, query, sample_size=100, seed=1)


class TestTableStats:
    def test_row_and_distinct_counts(self, paper_catalog):
        stats = collect_table_stats(paper_catalog.get("title"))
        assert stats.num_rows == 7
        assert stats.column("id").distinct_count == 7
        assert stats.column("production_year").distinct_count == 6  # 1994 appears twice

    def test_min_max(self, paper_catalog):
        stats = collect_table_stats(paper_catalog.get("movie_info_idx"))
        assert stats.column("info").min_value == pytest.approx(7.5)
        assert stats.column("info").max_value == pytest.approx(9.3)

    def test_null_fraction(self):
        table = Table.from_dict("t", {"x": [1, None, None, 4]})
        stats = collect_table_stats(table)
        assert stats.column("x").null_fraction == pytest.approx(0.5)

    def test_distinct_count_fallback(self, paper_catalog):
        stats = collect_table_stats(paper_catalog.get("title"))
        assert stats.distinct_count("not_collected") == 7

    def test_missing_column_raises(self, paper_catalog):
        stats = collect_table_stats(paper_catalog.get("title"))
        with pytest.raises(KeyError):
            stats.column("nope")

    def test_collect_catalog_stats(self, paper_catalog):
        stats = collect_catalog_stats(paper_catalog)
        assert set(stats) == {"title", "movie_info_idx"}


class TestSelectivity:
    def test_measured_base_predicate(self, estimator):
        selectivity = estimator.selectivity(col("t", "production_year") > lit(2000))
        assert selectivity == pytest.approx(3 / 7)

    def test_and_uses_independence(self, estimator):
        a = col("t", "production_year") > lit(2000)
        b = col("t", "production_year") > lit(1980)
        expected = estimator.selectivity(a) * estimator.selectivity(b)
        assert estimator.selectivity(and_(a, b)) == pytest.approx(expected)

    def test_or_uses_inclusion_exclusion(self, estimator):
        a = col("t", "production_year") > lit(2000)
        b = col("mi_idx", "info") > lit(8.0)
        expected = 1 - (1 - estimator.selectivity(a)) * (1 - estimator.selectivity(b))
        assert estimator.selectivity(or_(a, b)) == pytest.approx(expected)

    def test_not(self, estimator):
        a = col("t", "production_year") > lit(2000)
        assert estimator.selectivity(not_(a)) == pytest.approx(1 - estimator.selectivity(a))

    def test_caching(self, estimator):
        a = col("t", "production_year") > lit(2000)
        assert estimator.selectivity(a) == estimator.selectivity(a)

    def test_override(self, estimator):
        a = col("t", "production_year") > lit(2000)
        estimator.set_selectivity(a, 0.123)
        assert estimator.selectivity(a) == pytest.approx(0.123)

    def test_multi_table_predicate_uses_default(self, estimator):
        predicate = col("t", "id").eq(col("mi_idx", "movie_id"))
        assert estimator.selectivity(predicate) == pytest.approx(DEFAULT_SELECTIVITY)

    def test_cost_factor_of_like_is_higher(self, estimator):
        cheap = col("t", "production_year") > lit(2000)
        expensive = ilike(col("t", "title"), "%god%")
        assert estimator.cost_factor(expensive) > estimator.cost_factor(cheap)

    def test_cost_factor_of_complex_expression_sums_children(self, estimator):
        a = col("t", "production_year") > lit(2000)
        b = ilike(col("t", "title"), "%god%")
        assert estimator.cost_factor(and_(a, b)) == pytest.approx(
            estimator.cost_factor(a) + estimator.cost_factor(b)
        )

    def test_selectivity_clamped_to_unit_interval(self, estimator):
        a = col("t", "production_year") > lit(0)
        assert 0.0 <= estimator.selectivity(a) <= 1.0


class TestCardinality:
    @pytest.fixture
    def cardinality(self, paper_catalog, query, estimator):
        table_stats = {
            name: collect_table_stats(paper_catalog.get(name))
            for name in ("title", "movie_info_idx")
        }
        return CardinalityEstimator(query, table_stats, estimator)

    def test_base_rows(self, cardinality):
        assert cardinality.base_rows("t") == 7
        assert cardinality.base_rows("mi_idx") == 6

    def test_filtered_rows(self, cardinality):
        predicate = col("t", "production_year") > lit(2000)
        assert cardinality.filtered_rows("t", [predicate]) == pytest.approx(3.0)

    def test_join_rows_uses_max_ndv(self, cardinality, query):
        condition = query.join_conditions[0]
        estimate = cardinality.join_rows(7, 6, condition)
        assert estimate == pytest.approx(7 * 6 / 7)

    def test_join_rows_multi_with_no_conditions(self, cardinality):
        assert cardinality.join_rows_multi(10, 10, []) == pytest.approx(100)

    def test_distinct_values(self, cardinality):
        assert cardinality.distinct_values("t", "id") == 7

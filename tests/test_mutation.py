"""Unit tests for the mutation subsystem: batches, deltas, incremental maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, ColumnType, Session, Table
from repro.access.indexes import BitmapIndex, SortedIndex
from repro.access.manager import ensure_access_manager
from repro.access.zonemap import build_zone_map, extend_zone_map
from repro.expr.builders import col, is_null, lit
from repro.mutation import MutationError
from repro.stats.table_stats import collect_table_stats


def small_catalog() -> Catalog:
    return Catalog(
        [
            Table.from_dict(
                "t",
                {
                    "id": list(range(10)),
                    "v": [float(i) for i in range(10)],
                    "s": [f"s{i % 3}" for i in range(10)],
                },
            ),
            Table.from_dict("u", {"id": list(range(4)), "w": [1, 2, 3, 4]}),
        ]
    )


class TestStaging:
    def test_insert_unknown_column_raises(self):
        batch = small_catalog().begin_mutation()
        with pytest.raises(MutationError, match="unknown columns"):
            batch.insert("t", [{"nope": 1}])

    def test_missing_columns_become_null(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100}])
        batch.commit()
        assert catalog.get("t").row(10) == {"id": 100, "v": None, "s": None}

    def test_delete_needs_exactly_one_selector(self):
        batch = small_catalog().begin_mutation()
        with pytest.raises(MutationError, match="exactly one"):
            batch.delete("t")
        with pytest.raises(MutationError, match="exactly one"):
            batch.delete("t", positions=[1], where="t.id = 1")

    def test_delete_position_out_of_range(self):
        batch = small_catalog().begin_mutation()
        with pytest.raises(MutationError, match="out of range"):
            batch.delete("t", positions=[10])

    def test_delete_where_counts_matches(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        assert batch.delete("t", where="t.v > 6.5") == 3
        batch.commit()
        assert catalog.get("t").num_live == 7

    def test_delete_where_expression_object(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        assert batch.delete("t", where=col("t", "id").eq(lit(3))) == 1
        batch.commit()
        assert not any(row["id"] == 3 for row in catalog.get("t").rows(
            np.flatnonzero(~catalog.get("t").delete_mask)
        ))

    def test_delete_already_deleted_raises(self):
        catalog = small_catalog()
        first = catalog.begin_mutation()
        first.delete("t", positions=[2])
        first.commit()
        second = catalog.begin_mutation()
        with pytest.raises(MutationError, match="already-deleted"):
            second.delete("t", positions=[2])

    def test_batch_cannot_be_reused_after_commit(self):
        batch = small_catalog().begin_mutation()
        batch.commit()
        with pytest.raises(MutationError, match="already committed"):
            batch.insert("t", [{"id": 1}])

    def test_abort_discards_everything(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100}])
        batch.abort()
        assert catalog.get("t").num_rows == 10
        assert catalog.version == 2  # unchanged


class TestCommit:
    def test_empty_commit_does_not_bump_version(self):
        catalog = small_catalog()
        before = catalog.version
        commit = catalog.begin_mutation().commit()
        assert catalog.version == before
        assert commit.tables == []

    def test_copy_on_write_preserves_old_table(self):
        catalog = small_catalog()
        old = catalog.get("t")
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 1.0, "s": "x"}])
        batch.delete("t", positions=[0])
        batch.commit()
        assert old.num_rows == 10 and not old.has_deletes()
        new = catalog.get("t")
        assert new is not old
        assert new.num_rows == 11 and new.num_deleted == 1

    def test_delete_only_commit_shares_columns(self):
        catalog = small_catalog()
        old_columns = catalog.get("t").columns()
        batch = catalog.begin_mutation()
        batch.delete("t", positions=[1])
        batch.commit()
        assert catalog.get("t").columns() == old_columns

    def test_appended_rows_visible_in_order(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 50, "v": 0.5, "s": "a"}, {"id": 51, "v": 1.5, "s": "b"}])
        batch.commit()
        result = Session(catalog).execute("SELECT t.id FROM t AS t WHERE t.id >= 0")
        assert [row[0] for row in result.rows][-2:] == [50, 51]

    def test_delta_summary_numbers(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 99.0}, {"id": 101}])
        batch.delete("t", positions=[0, 4])
        commit = batch.commit()
        delta = commit.deltas["t"]
        assert delta.appended_rows == 2
        assert delta.deleted_count == 2
        assert delta.old_num_rows == 10 and delta.new_num_rows == 12
        v = delta.columns["v"]
        assert v.appended_nulls == 1 and v.appended_distinct == 1
        assert v.appended_min == 99.0 and v.appended_max == 99.0


class TestStatistics:
    def test_collect_stats_over_live_rows_only(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        batch.delete("t", where="t.v >= 8.0")
        batch.commit()
        stats = collect_table_stats(catalog.get("t"))
        assert stats.num_rows == 8
        assert stats.columns["v"].max_value == 7.0
        assert stats.columns["v"].distinct_count == 8

    def test_apply_delta_matches_exact_fields(self):
        catalog = small_catalog()
        before = collect_table_stats(catalog.get("t"))
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 50.0, "s": None}, {"id": 101, "v": -1.0, "s": "zz"}])
        batch.delete("t", positions=[3])
        commit = batch.commit()
        merged = before.apply_delta(commit.deltas["t"])
        fresh = collect_table_stats(catalog.get("t"))
        assert merged.num_rows == fresh.num_rows == 11
        for name in ("id", "v", "s"):
            assert merged.columns[name].null_count == fresh.columns[name].null_count
        # Min/max widen-only merge picks up the appended extremes exactly here.
        assert merged.columns["v"].min_value == -1.0
        assert merged.columns["v"].max_value == 50.0

    def test_extended_column_seeds_merged_bounds(self):
        catalog = small_catalog()
        column = catalog.get("t").column("v")
        column.min_max()  # warm the memo the merge extends
        column.distinct_count()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 123.0}])
        batch.commit()
        new_column = catalog.get("t").column("v")
        distinct, bounds, known = new_column.cached_statistics()
        assert known and bounds == (0.0, 123.0)
        assert distinct == 11

    def test_unwarmed_column_stays_lazy(self):
        catalog = small_catalog()
        batch = catalog.begin_mutation()
        batch.insert("t", [{"id": 100, "v": 123.0}])
        batch.commit()
        _distinct, _bounds, known = catalog.get("t").column("v").cached_statistics()
        assert not known


class TestAccessMaintenance:
    def _mutate(self, catalog: Catalog, rows: int = 40) -> None:
        batch = catalog.begin_mutation()
        batch.insert(
            "e",
            [{"id": 1000 + i, "k": (1000 + i) % 17, "x": float(i)} for i in range(rows)],
        )
        batch.delete("e", positions=[0, 5, 7])
        batch.commit()

    def _catalog(self) -> Catalog:
        return Catalog(
            [
                Table(
                    "e",
                    [
                        Column("id", np.arange(600), page_size=64),
                        Column("k", np.arange(600) % 17, page_size=64),
                        Column("x", np.arange(600).astype(float), page_size=64),
                    ],
                )
            ]
        )

    def test_commit_extends_instead_of_rebuilding(self):
        catalog = self._catalog()
        manager = ensure_access_manager(catalog)
        manager.create_index("e", "k", kind="bitmap")
        manager.create_index("e", "x", kind="sorted")
        manager.zone_map("e", "x")
        built_before = manager.stats.zone_maps_built
        indexes_before = manager.stats.indexes_built
        self._mutate(catalog)
        assert manager.stats.zone_maps_extended == 1
        assert manager.stats.indexes_extended == 2
        assert manager.stats.zone_maps_built == built_before
        assert manager.stats.indexes_built == indexes_before
        # The carried structures must answer like freshly built ones.
        table = catalog.get("e")
        assert manager.index_for("e", "x").size == table.num_rows
        rebuilt = SortedIndex.build(table.column("x"))
        extended = manager.index_for("e", "x")
        assert np.array_equal(rebuilt.sorted_positions, extended.sorted_positions)

    def test_candidates_fold_delete_bitmap(self):
        catalog = self._catalog()
        manager = ensure_access_manager(catalog)
        manager.create_index("e", "k", kind="bitmap")
        predicate = col("e", "k").eq(lit(3))
        before = manager.candidates("e", predicate)
        deleted = int(before.positions()[0])
        batch = catalog.begin_mutation()
        batch.delete("e", positions=[deleted])
        batch.commit()
        after = manager.candidates("e", predicate)
        assert not after.get(deleted)
        assert after.count() == before.count() - 1

    def test_deleted_rows_never_surface_without_access_paths(self):
        catalog = self._catalog()
        batch = catalog.begin_mutation()
        batch.delete("e", where="e.k = 3")
        batch.commit()
        result = Session(catalog, access_paths=False).execute(
            "SELECT e.id FROM e AS e WHERE e.k = 3 OR e.id < 5"
        )
        assert all(row[0] % 17 != 3 or row[0] < 5 for row in result.rows)
        kept = Session(catalog, access_paths=False).execute(
            "SELECT e.id FROM e AS e WHERE e.k = 4"
        )
        assert kept.row_count == len([i for i in range(600) if i % 17 == 4])


class TestExtensionEquivalence:
    @pytest.mark.parametrize("kind", ["bitmap", "sorted"])
    def test_extended_index_answers_like_rebuilt(self, kind):
        rng = np.random.default_rng(3)
        old_values = [float(v) for v in rng.integers(0, 40, 800)]
        old_values[10] = None
        old_values[20] = float("nan")
        appended = [float(v) for v in rng.integers(20, 120, 150)] + [None, float("nan")]
        old_column = Column("c", old_values, page_size=100)
        full_column = Column("c", old_values + appended, page_size=100)
        cls = BitmapIndex if kind == "bitmap" else SortedIndex
        extended = cls.build(old_column).extended(full_column, len(old_values))
        rebuilt = cls.build(full_column)
        probes = [
            col("t", "c").eq(lit(25.0)),
            col("t", "c") < lit(30.0),
            col("t", "c") >= lit(100.0),
            col("t", "c").ne(lit(25.0)),
            is_null(col("t", "c")),
        ]
        for predicate in probes:
            assert extended.lookup(predicate) == rebuilt.lookup(predicate)

    def test_bitmap_extension_from_all_null_column(self):
        # The pre-append dictionary is empty (every cell NULL): extension
        # must introduce the first real dictionary entries without touching
        # the (all-NULL) old codes.
        old_column = Column("c", [None] * 50, ctype=ColumnType.FLOAT)
        full_column = Column("c", [None] * 50 + [1.5, None, 2.5], ctype=ColumnType.FLOAT)
        extended = BitmapIndex.build(old_column).extended(full_column, 50)
        rebuilt = BitmapIndex.build(full_column)
        for predicate in (
            col("t", "c").eq(lit(1.5)),
            is_null(col("t", "c")),
            col("t", "c").ne(lit(1.5)),
        ):
            assert extended.lookup(predicate) == rebuilt.lookup(predicate)

    def test_extended_zone_map_equals_rebuilt(self):
        rng = np.random.default_rng(4)
        old_values = list(rng.uniform(0, 1, 500))
        appended = list(rng.uniform(0.5, 2.0, 130))
        old_column = Column("c", old_values, page_size=64)
        full_column = Column("c", old_values + appended, page_size=64)
        extended = extend_zone_map(build_zone_map(old_column), full_column, 500)
        rebuilt = build_zone_map(full_column)
        assert extended.mins == rebuilt.mins
        assert extended.maxs == rebuilt.maxs
        assert np.array_equal(extended.row_counts, rebuilt.row_counts)

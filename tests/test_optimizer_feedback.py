"""Tests of the optimizer layer: estimate provider, feedback store, re-planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, QueryService, Session, Table
from repro.core.planner.base import PlannerContext
from repro.expr.builders import and_, col, lit, not_, or_
from repro.optimizer import (
    EstimateProvider,
    FeedbackStore,
    build_estimate_provider,
    estimate_plan_rows,
    explain_analyze_report,
    q_error,
)
from repro.engine.metrics import ExecutionMetrics
from repro.stats.selectivity import DEFAULT_SELECTIVITY


def skewed_catalog(rows: int = 4000, seed: int = 7) -> Catalog:
    """Two tables joined by FK whose cross-table clauses defeat estimation.

    Cross-table base predicates fall back to ``DEFAULT_SELECTIVITY`` — the
    data makes one clause pass (almost) always and the other (almost) never,
    so the a-priori estimate is wrong in both directions.
    """
    rng = np.random.default_rng(seed)
    a = Table.from_dict(
        "A",
        {
            "id": np.arange(rows),
            "u": rng.uniform(0.0, 0.02, rows),
            "w": rng.uniform(0.98, 1.0, rows),
        },
    )
    b = Table.from_dict(
        "B",
        {
            "fid": rng.integers(0, rows, rows),
            "v": rng.uniform(0.5, 1.0, rows),
            "x": rng.uniform(0.0, 0.5, rows),
        },
    )
    return Catalog([a, b])


SKEWED_SQL = (
    "SELECT a.id FROM A AS a JOIN B AS b ON a.id = b.fid "
    "WHERE (a.u < b.v OR a.u < b.x) AND (a.w < b.x OR a.w < b.v)"
)


# --------------------------------------------------------------------------- #
# EstimateProvider
# --------------------------------------------------------------------------- #
class TestEstimateProvider:
    @pytest.fixture()
    def provider(self, paper_query, paper_catalog) -> EstimateProvider:
        return build_estimate_provider(paper_query, paper_catalog)

    def test_matches_underlying_estimator_without_overrides(
        self, provider, paper_query, paper_catalog
    ):
        from repro.stats.selectivity import SelectivityEstimator

        reference = SelectivityEstimator(paper_catalog, paper_query)
        for expr in (
            col("t", "production_year") > lit(2000),
            and_(col("t", "production_year") > lit(2000), col("mi_idx", "info") > lit(7.0)),
            paper_query.predicate,
        ):
            assert provider.selectivity(expr) == pytest.approx(reference.selectivity(expr))

    def test_override_applies_at_every_nesting_level(self, provider):
        a = col("t", "production_year") > lit(2000)
        b = col("mi_idx", "info") > lit(7.0)
        clause = and_(a, b)
        baseline = provider.selectivity(or_(clause, not_(a)))
        provider.set_selectivity(clause, 0.9)
        assert provider.selectivity(clause) == pytest.approx(0.9)
        # The override propagates into the OR combination containing it.
        changed = provider.selectivity(or_(clause, not_(a)))
        assert changed != pytest.approx(baseline)

    def test_constructor_overrides_and_clamping(self, paper_query, paper_catalog):
        a = col("t", "production_year") > lit(2000)
        provider = build_estimate_provider(
            paper_query, paper_catalog, selectivity_overrides={a.key(): 3.5}
        )
        assert provider.selectivity(a) == 1.0
        assert provider.overrides == {a.key(): 1.0}

    def test_cardinality_formulas(self, provider, paper_query):
        assert provider.base_rows("t") == 7.0
        assert provider.base_rows("mi_idx") == 6.0
        condition = paper_query.join_conditions[0]
        expected = 7.0 * 6.0 / max(
            provider.distinct_values("t", "id"),
            provider.distinct_values("mi_idx", "movie_id"),
        )
        assert provider.join_rows(7.0, 6.0, condition) == pytest.approx(expected)

    def test_estimate_query_rows_uses_predicate(self, provider, paper_query):
        rows = provider.estimate_query_rows()
        no_filter = 7.0 * 6.0 / max(
            provider.distinct_values("t", "id"),
            provider.distinct_values("mi_idx", "movie_id"),
        )
        assert rows == pytest.approx(
            no_filter * provider.selectivity(paper_query.predicate)
        )

    def test_cross_table_predicate_gets_default(self, provider):
        cross = col("t", "id") > col("mi_idx", "movie_id")
        assert provider.selectivity(cross) == pytest.approx(DEFAULT_SELECTIVITY)


class TestEstimatePlanRows:
    def test_walk_covers_every_node(self, paper_query, paper_catalog):
        context = PlannerContext.for_query(paper_query, paper_catalog)
        session = Session(paper_catalog)
        prepared = session.prepare(paper_query, planner="bpushconj")
        rows = estimate_plan_rows(prepared.plan.subplans[0], context.estimates)
        node_ids = {node.node_id for node in prepared.plan.subplans[0].walk()}
        assert set(rows) == node_ids
        assert all(value >= 0.0 for value in rows.values())

    def test_tagged_prepare_stores_cost_model_rows(self, paper_query, paper_catalog):
        session = Session(paper_catalog)
        prepared = session.prepare(paper_query, planner="tcombined")
        node_ids = {node.node_id for node in prepared.plan.walk()}
        assert set(prepared.estimated_rows) == node_ids
        assert prepared.estimated_output_rows == pytest.approx(
            prepared.estimated_rows[prepared.plan.node_id]
        )


# --------------------------------------------------------------------------- #
# Planner layer consumes only the provider
# --------------------------------------------------------------------------- #
def test_core_planner_has_no_direct_estimator_construction():
    """Acceptance: planners get numbers only through the EstimateProvider."""
    import pathlib

    import repro.core.planner as planner_pkg

    package_dir = pathlib.Path(planner_pkg.__file__).parent
    for path in package_dir.glob("*.py"):
        text = path.read_text(encoding="utf-8")
        assert "SelectivityEstimator(" not in text, path
        assert "CardinalityEstimator(" not in text, path


# --------------------------------------------------------------------------- #
# q-error and the feedback store
# --------------------------------------------------------------------------- #
class TestQError:
    def test_symmetric_and_floored(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == pytest.approx(10.0)
        assert q_error(10, 100) == pytest.approx(10.0)
        assert q_error(0, 0) == 1.0
        assert q_error(0, 50) == pytest.approx(50.0)


def _metrics_with(counts: dict[str, tuple[int, int]]) -> ExecutionMetrics:
    metrics = ExecutionMetrics()
    for key, (evaluated, matched) in counts.items():
        metrics.record_predicate(key, evaluated, matched)
    return metrics


class TestFeedbackStore:
    def test_accumulates_ratios(self):
        store = FeedbackStore()
        store.record("f", _metrics_with({"p": (100, 10)}), 1000, 10)
        store.record("f", _metrics_with({"p": (300, 90)}), 1000, 10)
        assert store.observed_selectivities("f") == {"p": pytest.approx(0.25)}
        assert store.last_q_error("f") == pytest.approx(100.0)

    def test_should_replan_requires_drift_and_shifted_override(self):
        store = FeedbackStore()
        store.record("f", _metrics_with({"p": (100, 2)}), 1000, 10)
        # q-error 100 and no overrides applied yet -> replan.
        assert store.should_replan("f", threshold=2.0)
        store.mark_applied("f", store.observed_selectivities("f"))
        # Same observations again: q-error still high, but the plan already
        # uses the observed numbers -> converged, no more replans.
        store.record("f", _metrics_with({"p": (100, 2)}), 1000, 10)
        assert not store.should_replan("f", threshold=2.0)

    def test_no_replan_below_threshold(self):
        store = FeedbackStore()
        store.record("f", _metrics_with({"p": (100, 2)}), 12, 10)
        assert not store.should_replan("f", threshold=2.0)

    def test_unknown_fingerprint(self):
        store = FeedbackStore()
        assert store.observed_selectivities("nope") == {}
        assert store.last_q_error("nope") is None
        assert not store.should_replan("nope", threshold=2.0)

    def test_entry_cap_evicts_oldest(self):
        store = FeedbackStore(max_entries=2)
        for name in ("a", "b", "c"):
            store.record(name, _metrics_with({"p": (10, 1)}), 1, 1)
        assert len(store) == 2
        assert store.observed_selectivities("a") == {}


# --------------------------------------------------------------------------- #
# Per-table caches and plan-cache entry invalidation
# --------------------------------------------------------------------------- #
class TestPerTableVersions:
    def test_catalog_tracks_per_table_versions(self):
        catalog = Catalog([Table.from_dict("t", {"id": [1]})])
        version_t = catalog.table_version("t")
        catalog.add(Table.from_dict("s", {"id": [2]}))
        assert catalog.table_version("t") == version_t  # unrelated add
        catalog.replace(Table.from_dict("t", {"id": [3]}))
        assert catalog.table_version("t") > version_t
        catalog.drop("s")
        with pytest.raises(KeyError):
            catalog.table_version("s")

    def test_plan_cache_entry_invalidation(self):
        from repro.service import PlanCache

        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate_entry("a")
        assert not cache.invalidate_entry("a")
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.stats.invalidations == 1


# --------------------------------------------------------------------------- #
# The service feedback loop, end to end
# --------------------------------------------------------------------------- #
class TestServiceFeedbackLoop:
    @pytest.fixture(scope="class")
    def catalog(self) -> Catalog:
        return skewed_catalog()

    def test_drifted_plan_is_replanned_once_and_results_unchanged(self, catalog):
        with QueryService(Session(catalog), feedback=True) as service:
            first = service.execute(SKEWED_SQL, planner="bpushconj")
            second = service.execute(SKEWED_SQL, planner="bpushconj")
            third = service.execute(SKEWED_SQL, planner="bpushconj")
        # The misestimated plan was retired after the first run...
        assert not second.cache_hit
        assert second.plan_description != first.plan_description
        # ...the corrected plan sticks, and rows never change.
        assert third.cache_hit
        assert third.plan_description == second.plan_description
        assert service.feedback_store.stats.replans == 1
        assert first.sorted_rows() == second.sorted_rows() == third.sorted_rows()

    def test_feedback_off_never_replans(self, catalog):
        with QueryService(Session(catalog)) as service:
            service.execute(SKEWED_SQL, planner="bpushconj")
            repeat = service.execute(SKEWED_SQL, planner="bpushconj")
            assert repeat.cache_hit
            assert "feedback" not in service.cache_metrics()

    def test_feedback_metrics_exposed(self, catalog):
        with QueryService(Session(catalog), feedback=True) as service:
            service.execute(SKEWED_SQL, planner="bpushconj")
            metrics = service.cache_metrics()
            assert metrics["feedback"]["observations"] == 1

    def test_tagged_planner_replans_too(self, catalog):
        with QueryService(Session(catalog), feedback=True) as service:
            first = service.execute(SKEWED_SQL, planner="tpushdown")
            second = service.execute(SKEWED_SQL, planner="tpushdown")
            assert first.sorted_rows() == second.sorted_rows()
            assert service.feedback_store.stats.observations == 2


# --------------------------------------------------------------------------- #
# Explain-analyze
# --------------------------------------------------------------------------- #
class TestExplainAnalyze:
    def test_report_lines_up_estimates_and_actuals(self, paper_catalog, paper_query):
        session = Session(paper_catalog)
        prepared = session.prepare(paper_query, planner="tcombined")
        result = session.execute_prepared(prepared, collect_feedback=True)
        report = explain_analyze_report(prepared, result)
        assert "est.rows" in report and "act.out" in report
        assert "Project" in report and "Join" in report
        assert f"actual_output_rows={result.metrics.output_rows}" in report

    def test_without_collection_actuals_are_dashes(self, paper_catalog, paper_query):
        session = Session(paper_catalog)
        prepared = session.prepare(paper_query, planner="tcombined")
        result = session.execute_prepared(prepared)
        report = explain_analyze_report(prepared, result)
        assert " -" in report

    def test_traditional_plan_report_covers_subplans(self, paper_catalog, paper_query):
        session = Session(paper_catalog)
        prepared = session.prepare(paper_query, planner="bdisj")
        result = session.execute_prepared(prepared, collect_feedback=True)
        report = explain_analyze_report(prepared, result)
        assert report.count("Project") == len(prepared.plan.subplans)

    def test_cli_explain_analyze(self, tmp_path, capsys):
        from repro.cli import main
        from repro.storage.disk import save_catalog

        save_catalog(skewed_catalog(rows=300), tmp_path / "data")
        code = main(
            [
                "query",
                "--data",
                str(tmp_path / "data"),
                "--explain-analyze",
                "--sql",
                "SELECT a.id FROM A AS a JOIN B AS b ON a.id = b.fid "
                "WHERE a.u < b.v OR a.w < b.x",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "est.rows" in out and "act.out" in out

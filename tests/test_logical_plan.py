"""Unit tests for logical plan nodes, rewrites and the query descriptor."""

import pytest

from repro.expr.builders import col, lit
from repro.plan.logical import (
    FilterNode,
    JoinNode,
    ProjectNode,
    TableScanNode,
    clone_plan,
    collect_filters,
    collect_joins,
    plan_to_string,
    remove_filter,
)
from repro.plan.query import JoinCondition, Query


@pytest.fixture
def sample_plan():
    p1 = col("t", "year") > lit(2000)
    p2 = col("mi", "score") > lit(8.0)
    left = FilterNode(p1, TableScanNode("t", "title"))
    right = FilterNode(p2, TableScanNode("mi", "movie_info_idx"))
    join = JoinNode(left, right, [JoinCondition(col("t", "id"), col("mi", "movie_id"))])
    return ProjectNode(join), p1, p2


class TestPlanNodes:
    def test_aliases_propagate(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        assert plan.aliases == frozenset({"t", "mi"})
        assert plan.child.left.aliases == frozenset({"t"})

    def test_walk_order(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        labels = [type(node).__name__ for node in plan.walk()]
        assert labels[0] == "ProjectNode"
        assert labels.count("FilterNode") == 2
        assert labels.count("TableScanNode") == 2

    def test_node_ids_are_unique(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        ids = [node.node_id for node in plan.walk()]
        assert len(ids) == len(set(ids))

    def test_labels(self, sample_plan):
        plan, p1, _p2 = sample_plan
        assert "Project" in plan.label()
        assert p1.key() in plan.child.left.label()
        assert "Join" in plan.child.label()

    def test_join_requires_conditions(self):
        with pytest.raises(ValueError):
            JoinNode(TableScanNode("a", "a"), TableScanNode("b", "b"), [])

    def test_plan_to_string_indents(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        rendered = plan_to_string(plan)
        assert rendered.splitlines()[0].startswith("Project")
        assert any(line.startswith("    ") for line in rendered.splitlines())


class TestRewrites:
    def test_clone_produces_fresh_nodes(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        cloned = clone_plan(plan)
        assert plan_to_string(cloned) == plan_to_string(plan)
        original_ids = {node.node_id for node in plan.walk()}
        cloned_ids = {node.node_id for node in cloned.walk()}
        assert original_ids.isdisjoint(cloned_ids)

    def test_collect_filters_and_joins(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        assert len(collect_filters(plan)) == 2
        assert len(collect_joins(plan)) == 1

    def test_remove_filter(self, sample_plan):
        plan, p1, _p2 = sample_plan
        removed = remove_filter(plan, p1.key())
        assert len(collect_filters(removed)) == 1
        # Original plan untouched.
        assert len(collect_filters(plan)) == 2

    def test_remove_missing_filter_raises(self, sample_plan):
        plan, _p1, _p2 = sample_plan
        with pytest.raises(ValueError):
            remove_filter(plan, "(nonexistent)")


class TestQueryDescriptor:
    def test_requires_tables(self):
        with pytest.raises(ValueError):
            Query(tables={})

    def test_join_condition_alias_validation(self):
        with pytest.raises(ValueError, match="unknown aliases"):
            Query(
                tables={"a": "ta"},
                join_conditions=[JoinCondition(col("a", "x"), col("b", "y"))],
            )

    def test_predicate_alias_validation(self):
        with pytest.raises(ValueError, match="unknown aliases"):
            Query(tables={"a": "ta"}, predicate=col("z", "x") > lit(1))

    def test_select_alias_validation(self):
        with pytest.raises(ValueError):
            Query(tables={"a": "ta"}, select=[col("b", "x")])

    def test_predicate_is_flattened(self):
        from repro.expr.ast import AndExpr

        nested = AndExpr([col("a", "x") > lit(1), AndExpr([col("a", "y") > lit(2), col("a", "z") > lit(3)])])
        query = Query(tables={"a": "ta"}, predicate=nested)
        assert len(query.predicate.children()) == 3

    def test_base_predicates_deduplicated(self):
        shared = col("a", "x") > lit(1)
        from repro.expr.builders import and_, or_

        query = Query(
            tables={"a": "ta"},
            predicate=or_(and_(shared, col("a", "y") > lit(2)), and_(shared, col("a", "z") > lit(3))),
        )
        keys = [predicate.key() for predicate in query.base_predicates()]
        assert len(keys) == len(set(keys)) == 3

    def test_conditions_between(self, paper_query):
        conditions = paper_query.conditions_between(frozenset({"t"}), frozenset({"mi_idx"}))
        assert len(conditions) == 1
        assert paper_query.conditions_between(frozenset({"t"}), frozenset({"t"})) == []

    def test_join_condition_helpers(self):
        condition = JoinCondition(col("a", "x"), col("b", "y"))
        assert condition.aliases() == frozenset({"a", "b"})
        assert condition.side_for("a").key() == "a.x"
        assert condition.other_alias("a") == "b"
        with pytest.raises(KeyError):
            condition.side_for("z")
        with pytest.raises(KeyError):
            condition.other_alias("z")

    def test_join_condition_key_is_orientation_insensitive(self):
        forward = JoinCondition(col("a", "x"), col("b", "y"))
        backward = JoinCondition(col("b", "y"), col("a", "x"))
        assert forward.key() == backward.key()

    def test_str_representation(self, paper_query):
        rendered = str(paper_query)
        assert "title AS t" in rendered
        assert "WHERE" in rendered

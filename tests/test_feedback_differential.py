"""Feedback determinism differential suite (satellite of the optimizer PR).

Runs the same skewed workload with the feedback loop on and off, across
parallelism {1, 4} x partitions {1, 3}, and asserts:

* **byte-identical results** — every execution returns exactly the same rows
  (queries carry a total ORDER BY so row order is plan-independent), whether
  or not feedback re-planned the query mid-stream;
* **identical re-planned plans** — the plan the feedback loop converges to
  is the same at every parallelism/partition setting, because observed
  selectivities are ratios of accumulated counts and both counts scale
  together when morsels re-execute a build side.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, QueryService, Session, Table

#: Executions per setting: cold, post-replan, warm (converged).
RUNS = 3

#: The morsel-execution grid the determinism claim is made over.
SETTINGS = [(1, 1), (1, 3), (4, 1), (4, 3)]

PLANNERS = ("tpushconj", "tcombined", "bdisj", "bypass")


def feedback_catalog(rows: int = 2500, seed: int = 11) -> Catalog:
    """FK-joined tables whose cross-table clauses defeat a-priori estimation."""
    rng = np.random.default_rng(seed)
    a = Table.from_dict(
        "A",
        {
            "id": np.arange(rows),
            "u": rng.uniform(0.0, 0.02, rows),
            "w": rng.uniform(0.98, 1.0, rows),
        },
    )
    b = Table.from_dict(
        "B",
        {
            "bid": np.arange(rows),
            "fid": rng.integers(0, rows, rows),
            "v": rng.uniform(0.5, 1.0, rows),
            "x": rng.uniform(0.0, 0.5, rows),
        },
    )
    return Catalog([a, b])


#: CNF with skewed disjunctive clauses; the ORDER BY is total (b.bid is
#: unique), so equal row lists mean byte-identical results across plans.
SKEWED_SQL = (
    "SELECT a.id, b.bid FROM A AS a JOIN B AS b ON a.id = b.fid "
    "WHERE (a.u < b.v OR a.u < b.x) AND (a.w < b.x OR a.w < b.v) "
    "ORDER BY a.id, b.bid"
)

#: A second shape with a pushable single-table predicate, so the suite also
#: covers feedback collection below a partitioned join.
PUSHDOWN_SQL = (
    "SELECT a.id, b.bid FROM A AS a JOIN B AS b ON a.id = b.fid "
    "WHERE b.v > 0.6 AND (a.w < b.x OR a.u < b.v) "
    "ORDER BY a.id, b.bid"
)

QUERIES = (SKEWED_SQL, PUSHDOWN_SQL)


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return feedback_catalog()


def _run_series(catalog, planner, feedback, parallelism, partitions):
    """Execute every query RUNS times; returns (rows per run, final plans)."""
    session = Session(catalog, parallelism=parallelism, partitions=partitions)
    with QueryService(session, feedback=feedback) as service:
        results = {
            sql: [service.execute(sql, planner=planner) for _ in range(RUNS)]
            for sql in QUERIES
        }
        rows = {
            sql: [(item.column_names, item.rows) for item in items]
            for sql, items in results.items()
        }
        plans = {sql: items[-1].plan_description for sql, items in results.items()}
        replans = service.feedback_store.stats.replans
    return rows, plans, replans


@pytest.mark.parametrize("planner", PLANNERS)
def test_feedback_on_off_byte_identical_across_grid(catalog, planner):
    replanned_plans_by_setting = {}
    total_replans = 0
    for parallelism, partitions in SETTINGS:
        off_rows, _off_plans, off_replans = _run_series(
            catalog, planner, False, parallelism, partitions
        )
        on_rows, on_plans, on_replans = _run_series(
            catalog, planner, True, parallelism, partitions
        )
        assert off_replans == 0
        total_replans += on_replans
        for sql in QUERIES:
            for run_index in range(RUNS):
                assert on_rows[sql][run_index] == off_rows[sql][run_index], (
                    planner,
                    (parallelism, partitions),
                    sql,
                    run_index,
                )
        replanned_plans_by_setting[(parallelism, partitions)] = on_plans

    # The plan feedback converges to must not depend on the execution grid.
    reference = replanned_plans_by_setting[SETTINGS[0]]
    for setting, plans in replanned_plans_by_setting.items():
        assert plans == reference, (planner, setting)

    # The suite must actually exercise re-planning, not merely cache hits.
    assert total_replans > 0, planner


def test_feedback_replans_exactly_once_then_converges(catalog):
    session = Session(catalog)
    with QueryService(session, feedback=True) as service:
        for _ in range(5):
            service.execute(SKEWED_SQL, planner="tpushconj")
        assert service.feedback_store.stats.replans == 1
        assert service.execute(SKEWED_SQL, planner="tpushconj").cache_hit

"""Differential suite: indexes on/off must be byte-identical everywhere.

Satellite of the access-path subsystem: every planner, at parallelism
{1, 4} x partitions {1, 3}, with and without access paths (and with
secondary indexes created on the pruning columns), must return exactly the
rows the pruning-free oracle returns.  Scan pruning may only change which
pages are touched, never the result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Column, Session, Table
from repro.access.manager import ensure_access_manager
from repro.testing.differential import DEFAULT_PLANNERS
from repro.testing.oracle import evaluate_oracle
from repro.sql import parse_query

PAGE = 16

#: Disjunctive workload mixing prunable single-column clauses (equality,
#: range, IN, IS NULL, LIKE prefix) with cross-table clauses that prune
#: nothing, plus NULLs on both sides.
QUERIES = [
    (
        "point_or_range",
        "SELECT o.id, c.name FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE (o.status = 'gold' AND o.amount < 50) OR o.ts BETWEEN 120 AND 140",
    ),
    (
        "cross_table_mix",
        "SELECT o.id FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE (o.ts < 60 AND c.region IN ('n', 's')) "
        "   OR (o.status = 'gold' AND c.score > o.amount)",
    ),
    (
        "nulls_and_like",
        "SELECT o.id, o.status FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE (o.status LIKE 'go%' AND o.amount IS NOT NULL) "
        "   OR (c.region = 'w' AND o.amount > 95)",
    ),
    (
        "empty_result",
        "SELECT o.id FROM orders AS o JOIN customers AS c ON o.cust = c.cid "
        "WHERE o.ts < 0 OR (o.status = 'nope' AND c.region = 'n')",
    ),
]


def _catalog(with_indexes: bool) -> Catalog:
    rng = np.random.default_rng(11)
    n, m = 600, 80
    amounts = rng.uniform(0, 100, n).round(1).tolist()
    for position in range(0, n, 17):
        amounts[position] = None  # NULLs in a pruning column
    orders = Table(
        "orders",
        [
            Column("id", list(range(n)), page_size=PAGE),
            Column("cust", rng.integers(0, m, n).tolist(), page_size=PAGE),
            Column("ts", list(range(n)), page_size=PAGE),  # clustered
            Column(
                "status",
                [["gold", "silver", "bronze"][i % 3] for i in range(n)],
                page_size=PAGE,
            ),
            Column("amount", amounts, page_size=PAGE),
        ],
    )
    customers = Table(
        "customers",
        [
            Column("cid", list(range(m)), page_size=PAGE),
            Column("name", [f"cust_{i}" for i in range(m)], page_size=PAGE),
            Column("region", [["n", "s", "e", "w"][i % 4] for i in range(m)], page_size=PAGE),
            Column("score", rng.uniform(0, 10, m).tolist(), page_size=PAGE),
        ],
    )
    catalog = Catalog([orders, customers])
    if with_indexes:
        manager = ensure_access_manager(catalog)
        manager.create_index("orders", "status", kind="bitmap")
        manager.create_index("orders", "ts", kind="sorted")
        manager.create_index("customers", "region", kind="bitmap")
    return catalog


@pytest.fixture(scope="module")
def catalogs():
    return {True: _catalog(with_indexes=True), False: _catalog(with_indexes=False)}


@pytest.fixture(scope="module")
def oracle_rows(catalogs):
    return {
        name: evaluate_oracle(catalogs[False], parse_query(sql))
        for name, sql in QUERIES
    }


@pytest.mark.parametrize("planner", DEFAULT_PLANNERS)
@pytest.mark.parametrize("parallelism,partitions", [(1, 1), (1, 3), (4, 1), (4, 3)])
def test_pruned_results_match_oracle_and_unpruned(
    catalogs, oracle_rows, planner, parallelism, partitions
):
    indexed = Session(
        catalogs[True], access_paths=True, parallelism=parallelism, partitions=partitions
    )
    plain = Session(
        catalogs[False], access_paths=False, parallelism=parallelism, partitions=partitions
    )
    for name, sql in QUERIES:
        pruned = indexed.execute(sql, planner=planner)
        unpruned = plain.execute(sql, planner=planner)
        assert pruned.sorted_rows() == oracle_rows[name], (planner, name)
        # Byte-identical: same rows in the same order, not just the same set.
        assert pruned.rows == unpruned.rows, (planner, name)


def test_zone_maps_alone_match_unpruned(catalogs, oracle_rows):
    """Access paths on but no indexes: zone-map-only pruning is also sound."""
    session = Session(catalogs[False], access_paths=True)
    plain = Session(catalogs[False], access_paths=False)
    for name, sql in QUERIES:
        assert session.execute(sql).rows == plain.execute(sql).rows, name

"""Unit tests for predicate trees."""

import pytest

from repro.core.predtree import PredicateTree
from repro.expr.builders import and_, col, lit, not_, or_


def p(name, threshold=0):
    """A distinct base predicate on table ``x``."""
    return col("x", name) > lit(threshold)


@pytest.fixture
def query1_tree():
    """The predicate tree of the paper's Query 1 (Figure 2)."""
    p1 = col("t", "year") > lit(2000)
    p2 = col("t", "year") > lit(1980)
    p3 = col("mi", "score") > lit(8.0)
    p4 = col("mi", "score") > lit(7.0)
    return PredicateTree(or_(and_(p1, p4), and_(p2, p3))), (p1, p2, p3, p4)


class TestStructure:
    def test_root_is_or(self, query1_tree):
        tree, _ = query1_tree
        assert tree.root.is_or
        assert not tree.root.is_and
        assert not tree.root.is_leaf

    def test_leaves_are_base_predicates(self, query1_tree):
        tree, (p1, p2, p3, p4) = query1_tree
        leaf_keys = {node.key for node in tree.leaves()}
        assert leaf_keys == {p1.key(), p2.key(), p3.key(), p4.key()}

    def test_base_predicates_in_first_occurrence_order(self, query1_tree):
        tree, (p1, p2, p3, p4) = query1_tree
        keys = [predicate.key() for predicate in tree.base_predicates()]
        assert set(keys) == {p1.key(), p2.key(), p3.key(), p4.key()}
        assert len(keys) == 4

    def test_num_nodes(self, query1_tree):
        tree, _ = query1_tree
        # root OR + 2 AND nodes + 4 leaves
        assert tree.num_nodes() == 7

    def test_contains_and_expr_for(self, query1_tree):
        tree, (p1, _p2, _p3, _p4) = query1_tree
        assert p1.key() in tree
        assert tree.expr_for(p1.key()) == p1
        with pytest.raises(KeyError):
            tree.expr_for("(zzz)")

    def test_flattening_applied(self):
        tree = PredicateTree(and_(p("a"), and_(p("b"), p("c"))))
        assert len(tree.root.children) == 3

    def test_not_node(self):
        tree = PredicateTree(not_(p("a")))
        assert tree.root.is_not
        assert tree.root.children[0].is_leaf

    def test_parents(self, query1_tree):
        tree, (p1, _p2, _p3, _p4) = query1_tree
        parents = tree.parents(p1.key())
        assert len(parents) == 1
        assert parents[0].is_and

    def test_root_has_no_parents(self, query1_tree):
        tree, _ = query1_tree
        assert tree.parents(tree.root_key) == []

    def test_ancestors_reach_root(self, query1_tree):
        tree, (p1, _, _, _) = query1_tree
        instance = tree.instances(p1.key())[0]
        path = instance.ancestor_path()
        assert path[-1] is tree.root


class TestDuplicateOccurrences:
    def test_duplicate_predicate_has_multiple_instances(self):
        shared = p("shared")
        tree = PredicateTree(or_(and_(shared, p("a")), and_(shared, p("b"))))
        assert len(tree.instances(shared.key())) == 2
        assert len(tree.parents(shared.key())) == 2

    def test_ancestor_paths_per_instance(self):
        shared = p("shared")
        tree = PredicateTree(or_(and_(shared, p("a")), and_(shared, p("b"))))
        paths = tree.ancestor_paths(shared.key())
        assert len(paths) == 2
        assert all(path[-1] is tree.root for path in paths)

    def test_every_instance_has_assigned_ancestor(self):
        shared = p("shared")
        clause1 = and_(shared, p("a"))
        clause2 = and_(shared, p("b"))
        tree = PredicateTree(or_(clause1, clause2))
        # Only one clause assigned: the other occurrence is uncovered.
        assert not tree.every_instance_has_assigned_ancestor(
            shared.key(), {clause1.key()}
        )
        assert tree.every_instance_has_assigned_ancestor(
            shared.key(), {clause1.key(), clause2.key()}
        )
        assert tree.every_instance_has_assigned_ancestor(shared.key(), {tree.root_key})

    def test_unknown_key_has_no_assigned_ancestor(self):
        tree = PredicateTree(and_(p("a"), p("b")))
        assert not tree.every_instance_has_assigned_ancestor("(nonexistent)", {tree.root_key})


class TestSingleLeafTree:
    def test_single_predicate_tree(self):
        predicate = p("only")
        tree = PredicateTree(predicate)
        assert tree.root.is_leaf
        assert tree.root_key == predicate.key()
        assert tree.base_predicates() == [predicate]

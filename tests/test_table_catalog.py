"""Unit tests for tables and catalogs."""

import numpy as np
import pytest

from repro.storage.bitmap import Bitmap
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.iostats import IOStats
from repro.storage.table import Table


@pytest.fixture
def movies() -> Table:
    return Table.from_dict(
        "movies",
        {
            "id": [1, 2, 3],
            "title": ["Alpha", "Beta", None],
            "year": [2001, 1999, 2010],
        },
    )


class TestTableConstruction:
    def test_from_dict(self, movies):
        assert movies.num_rows == 3
        assert movies.column_names == ["id", "title", "year"]

    def test_from_rows(self):
        table = Table.from_rows("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.num_rows == 2
        assert table.column("b").values_list() == ["x", "y"]

    def test_from_rows_empty_raises(self):
        with pytest.raises(ValueError):
            Table.from_rows("t", [])

    def test_mismatched_column_lengths_raise(self):
        with pytest.raises(ValueError, match="differing lengths"):
            Table("t", [Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_column_names_raise(self):
        with pytest.raises(ValueError, match="duplicate column"):
            Table("t", [Column("a", [1]), Column("a", [2])])

    def test_no_columns_raises(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_len_and_contains(self, movies):
        assert len(movies) == 3
        assert "title" in movies
        assert "nope" not in movies


class TestTableAccess:
    def test_column_lookup_error_message(self, movies):
        with pytest.raises(KeyError, match="available"):
            movies.column("missing")

    def test_row_materialization_with_nulls(self, movies):
        assert movies.row(2) == {"id": 3, "title": None, "year": 2010}

    def test_rows_subset(self, movies):
        rows = movies.rows([0, 2])
        assert [row["id"] for row in rows] == [1, 3]

    def test_rows_all(self, movies):
        assert len(movies.rows()) == 3

    def test_read_column_with_bitmap(self, movies):
        values, _ = movies.read_column("year", Bitmap.from_positions(3, [0, 2]), iostats=IOStats())
        assert list(values) == [2001, 2010]

    def test_read_column_at(self, movies):
        values, _ = movies.read_column_at("id", np.array([2, 0]), iostats=IOStats())
        assert list(values) == [3, 1]

    def test_repr(self, movies):
        assert "movies" in repr(movies)


class TestCatalog:
    def test_add_and_get(self, movies):
        catalog = Catalog([movies])
        assert catalog.get("movies") is movies

    def test_duplicate_add_raises(self, movies):
        catalog = Catalog([movies])
        with pytest.raises(ValueError):
            catalog.add(movies)

    def test_replace_overwrites(self, movies):
        catalog = Catalog([movies])
        replacement = Table.from_dict("movies", {"id": [9]})
        catalog.replace(replacement)
        assert catalog.get("movies").num_rows == 1

    def test_missing_table_error_lists_known(self, movies):
        catalog = Catalog([movies])
        with pytest.raises(KeyError, match="movies"):
            catalog.get("unknown")

    def test_iteration_and_len(self, movies):
        other = Table.from_dict("other", {"x": [1, 2]})
        catalog = Catalog([movies, other])
        assert len(catalog) == 2
        assert {table.name for table in catalog} == {"movies", "other"}

    def test_contains(self, movies):
        catalog = Catalog([movies])
        assert "movies" in catalog

    def test_total_rows(self, movies):
        other = Table.from_dict("other", {"x": [1, 2]})
        assert Catalog([movies, other]).total_rows() == 5

    def test_table_names(self, movies):
        assert Catalog([movies]).table_names == ["movies"]
